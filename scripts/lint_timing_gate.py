"""CI gate: a warm-cache re-lint of an unchanged tree must be >=5x faster.

Runs the full analyzer (per-file + semantic) twice over the same targets
with a fresh cache directory: the first pass is cold (parses every file,
computes every semantic result), the second must be served entirely from
the ``.lint_cache`` layer.  Fails when the warm pass re-parsed anything,
recomputed any semantic result, or came in under the speedup floor.

Usage::

    PYTHONPATH=src python scripts/lint_timing_gate.py [paths...]

``REPRO_LINT_MIN_SPEEDUP`` overrides the floor (default 5.0) — CI keeps
the default; noisy local machines can relax it.
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile

from repro.analysis import analyze_paths


def main(argv=None) -> int:
    paths = (argv if argv is not None else sys.argv[1:]) or ["src", "tests"]
    floor = float(os.environ.get("REPRO_LINT_MIN_SPEEDUP", "5.0"))
    cache_dir = tempfile.mkdtemp(prefix="lint_cache_gate_")
    try:
        cold = analyze_paths(paths, cache_dir=cache_dir)
        warm = analyze_paths(paths, cache_dir=cache_dir)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    speedup = cold.stats.seconds / max(warm.stats.seconds, 1e-9)
    print(
        f"cold: {cold.stats.seconds:.2f}s over {cold.stats.files} files "
        f"({len(cold.stats.parsed)} parsed)"
    )
    print(
        f"warm: {warm.stats.seconds:.2f}s "
        f"({warm.stats.file_cache_hits} file hits, "
        f"{warm.stats.semantic_cache_hits} semantic hits)"
    )
    print(f"speedup: {speedup:.1f}x (floor {floor:.1f}x)")

    failures = []
    if warm.stats.parsed:
        failures.append(f"warm pass re-parsed {len(warm.stats.parsed)} files")
    if warm.stats.semantic_cone_reanalyzed or (
        warm.stats.semantic_package_reanalyzed
    ):
        failures.append("warm pass recomputed semantic results")
    if speedup < floor:
        failures.append(f"speedup {speedup:.1f}x under the {floor:.1f}x floor")
    if cold_findings := [d.format() for d in cold.findings]:
        failures.append(f"tree is not lint-clean: {cold_findings[:5]}")
    if [d.format() for d in warm.findings] != [
        d.format() for d in cold.findings
    ]:
        failures.append("warm findings differ from cold findings")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Load-generate a running scan service and report throughput/latency.

Points the closed-loop :class:`repro.service.LoadGenerator` at a live
``repro serve`` endpoint: each worker thread submits a synthetic routed
block over HTTP, polls to completion, fetches the report, and times the
whole round trip.  The summary (jobs/s, p50/p90/p99 latency) prints as
JSON and can be written to a file for dashboards:

    python -m repro serve --workers 4 --detector logistic-density &
    python scripts/service_loadgen.py http://127.0.0.1:8787 \
        --jobs 32 --concurrency 8 --out loadgen.json

The same LoadGenerator drives ``benchmarks/test_service_throughput.py``,
which records the committed ``BENCH_service.json``.
"""

import argparse
import json
import sys

import numpy as np

from repro.data import RoutedBlockConfig, synthesize_routed_block
from repro.geometry import Rect
from repro.service import LoadGenerator, encode_job_request


def parse_args(argv):
    parser = argparse.ArgumentParser(
        description="Closed-loop load generator for the scan service."
    )
    parser.add_argument("url", help="service base URL, e.g. http://127.0.0.1:8787")
    parser.add_argument("--jobs", type=int, default=16, help="total jobs to run")
    parser.add_argument(
        "--concurrency", type=int, default=4, help="in-flight clients"
    )
    parser.add_argument(
        "--cell-nm", type=int, default=2048, help="synthetic block edge (nm)"
    )
    parser.add_argument("--window", type=int, default=768, help="window size (nm)")
    parser.add_argument("--core", type=int, default=256, help="core size (nm)")
    parser.add_argument(
        "--step", type=int, default=None, help="scan step (nm, default core)"
    )
    parser.add_argument(
        "--engine",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="client-settable engine knob (repeatable), e.g. chunk_clips=64",
    )
    parser.add_argument("--seed", type=int, default=17, help="layout RNG seed")
    parser.add_argument(
        "--timeout", type=float, default=300.0, help="per-job deadline (s)"
    )
    parser.add_argument(
        "--out", default=None, help="also write the JSON summary here"
    )
    return parser.parse_args(argv)


def parse_engine_overrides(pairs):
    engine = {}
    for pair in pairs:
        key, _, raw = pair.partition("=")
        if not _:
            raise SystemExit(f"--engine expects KEY=VALUE, got {pair!r}")
        try:
            engine[key] = json.loads(raw)
        except json.JSONDecodeError:
            engine[key] = raw
    return engine


def main(argv=None):
    args = parse_args(argv if argv is not None else sys.argv[1:])
    rng = np.random.default_rng(args.seed)
    cell = Rect(0, 0, args.cell_nm, args.cell_nm)
    layer, _seeded = synthesize_routed_block(
        rng, cell, RoutedBlockConfig(n_marginal=2, marginal_len_nm=400)
    )
    request = encode_job_request(
        layer,
        cell,
        window_nm=args.window,
        core_nm=args.core,
        step_nm=args.step,
        engine=parse_engine_overrides(args.engine),
    )
    generator = LoadGenerator(
        args.url,
        request,
        jobs=args.jobs,
        concurrency=args.concurrency,
        job_timeout_s=args.timeout,
    )
    report = generator.run()
    summary = report.to_dict()
    text = json.dumps(summary, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    return 0 if report.failed == 0 else 1


if __name__ == "__main__":
    sys.exit(main())

"""Exploration script: oracle verdicts on a battery of canonical patterns.

Not part of the library — used during development to pick OpticalSystem /
HotspotOracle defaults such that the hotspot boundary falls on *marginal*
geometry (the behaviour the benchmarks need).  Prints each pattern's
verdict; run with different CLI args to explore the parameter space:

    python scripts/tune_oracle.py [sigma_scale dose_delta defocus ref_pitch neck epe]

The "want" column records the intuition that guided the initial tuning;
the shipped oracle intentionally differs on some rows (e.g. tip-to-tip
gaps >= 48 nm are *not* hotspots under this process because facing tips
share light — see tests/litho/test_hotspot.py for the authoritative
expectations).
"""

import itertools
import sys

from repro.geometry import Layer, Rect, extract_clip
from repro.litho import HotspotOracle, OpticalSystem

W, CORE = 768, 256
CX = CY = 600


def clip_of(rects, tag):
    layer = Layer("metal1")
    layer.add_rects(rects)
    return extract_clip(layer, (CX, CY), W, CORE, tag=tag)


def battery():
    pats = []
    # dense grating 64/128 through center
    pats.append(("dense64/128", [Rect(88 + i * 128, 100, 88 + i * 128 + 64, 1100) for i in range(8)], False))
    # semi dense 64/192
    pats.append(("semi64/192", [Rect(56 + i * 192, 100, 56 + i * 192 + 64, 1100) for i in range(6)], False))
    # isolated vertical line through core
    pats.append(("isolated64", [Rect(568, 100, 632, 1100)], False))
    # parallel pair at min space 64
    pats.append(("pair_s64", [Rect(504, 100, 568, 1100), Rect(632, 100, 696, 1100)], False))
    # tip-to-tip gaps
    for gap in (64, 80, 96, 128):
        x_end = CX - gap // 2
        pats.append((
            f"t2t_{gap}",
            [Rect(100, 568, x_end, 632), Rect(x_end + gap, 568, 1100, 632)],
            gap <= 80,
        ))
    # tip to perpendicular line (T), gap varying
    for gap in (64, 96):
        pats.append((
            f"tee_{gap}",
            [Rect(568, 100, 632, CY - gap), Rect(100, CY, 1100, CY + 64)],
            gap <= 64,
        ))
    # L corner with nearby parallel line
    pats.append(("corner_near", [
        Rect(400, 536, 700, 600), Rect(636, 600, 700, 900),  # L
        Rect(400, 664, 572, 728),  # inner neighbor near the corner
    ], True))
    # short isolated stub in core
    pats.append(("stub", [Rect(568, 500, 632, 700)], None))
    # dense with one line end in the core
    rects = [Rect(88 + i * 128, 100, 88 + i * 128 + 64, 1100) for i in range(8)]
    rects[4] = Rect(88 + 4 * 128, 100, 88 + 4 * 128 + 64, 620)  # ends in core
    pats.append(("grating_lineend", rects, None))
    return pats


def main():
    sigma_scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.20
    dose_delta = float(sys.argv[2]) if len(sys.argv) > 2 else 0.04
    defocus = float(sys.argv[3]) if len(sys.argv) > 3 else 32.0
    ref_pitch = int(sys.argv[4]) if len(sys.argv) > 4 else 192
    neck = float(sys.argv[5]) if len(sys.argv) > 5 else 0.55
    epe = float(sys.argv[6]) if len(sys.argv) > 6 else 30.0
    optics = OpticalSystem(sigma_scale=sigma_scale)
    oracle = HotspotOracle(
        optics=optics,
        dose_delta=dose_delta,
        defocus_delta_nm=defocus,
        reference_pitch_nm=ref_pitch,
        neck_ratio=neck,
        epe_limit_nm=epe,
    )
    print(
        f"sigma={optics.base_sigma_nm:.1f}nm thr={oracle.resist.threshold:.3f} "
        f"dose±{dose_delta} defoc={defocus} ref_pitch={ref_pitch} neck={neck} epe={epe}"
    )
    for tag, rects, want in battery():
        a = oracle.analyze(clip_of(rects, tag))
        wanted = "?" if want is None else ("HS" if want else "ok")
        got = "HS" if a.is_hotspot else "ok"
        mark = " " if want is None or (a.is_hotspot == want) else "<<< MISMATCH"
        print(f"  {tag:<18} want={wanted:3} got={got:3} {a.defect_kinds} {mark}")


if __name__ == "__main__":
    main()

"""Ablation — DCT feature-tensor depth (the `keep` knob).

DESIGN.md calls out the block-DCT truncation depth as the deep detector's
central representation choice: ``keep`` low-frequency coefficients per
8x8 block trade input size against fidelity.  This bench sweeps
``keep`` in {2, 4, 6} on B2 with the CNN held fixed.

Shape checks: the tensor shrinks quadratically with ``keep``; ranking
quality is not destroyed at the paper's operating point (keep=4), i.e.
its AUC is within tolerance of the best arm.
"""

import numpy as np

from .conftest import run_once

KEEPS = (2, 4, 6)


def test_ablation_dct_keep(benchmark, suite, out_dir):
    from repro.bench import write_table
    from repro.core.evaluation import evaluate_detector
    from repro.nn import CNNDetector, CNNDetectorConfig

    b2 = [b for b in suite if b.name == "B2"][0]

    def run():
        rows = []
        aucs = {}
        seeds = (31, 32, 33)
        for keep in KEEPS:
            arm_aucs, arm_accs, arm_fas, fit_s = [], [], [], 0.0
            for seed in seeds:
                det = CNNDetector(
                    CNNDetectorConfig(
                        epochs=10,
                        biased_epsilon=None,
                        dct_keep=keep,
                        width=16,
                    )
                )
                result = evaluate_detector(det, b2, rng=np.random.default_rng(seed))
                arm_aucs.append(result.auc if result.auc is not None else 0.5)
                arm_accs.append(result.accuracy)
                arm_fas.append(result.false_alarms)
                fit_s += result.fit_seconds
            aucs[keep] = float(np.mean(arm_aucs))
            rows.append(
                {
                    "keep": keep,
                    "channels": keep * keep,
                    "accuracy_%": round(100 * float(np.mean(arm_accs)), 1),
                    "false_alarms": round(float(np.mean(arm_fas)), 1),
                    "auc": round(aucs[keep], 3),
                    "fit_s": round(fit_s, 1),
                }
            )
        return rows, aucs

    rows, aucs = run_once(benchmark, run)
    text = write_table(
        rows, out_dir / "ablation_dct.md", title="Ablation: DCT keep-k (B2, CNN)"
    )
    print("\n" + text)

    # the paper's operating point is not meaningfully worse than the best
    assert aucs[4] >= max(aucs.values()) - 0.08, aucs
    # every arm learns something
    assert all(a > 0.55 for a in aucs.values()), aucs

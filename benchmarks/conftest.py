"""Shared bench fixtures: the cached suite, results directory."""

from __future__ import annotations

import pytest

from repro.bench import get_suite, results_dir


@pytest.fixture(scope="session")
def suite():
    """The canonical 5-benchmark suite at the bench scale (disk-cached)."""
    return get_suite()


@pytest.fixture(scope="session")
def out_dir():
    d = results_dir()
    d.mkdir(parents=True, exist_ok=True)
    return d


def run_once(benchmark, fn):
    """Run a bench body exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)

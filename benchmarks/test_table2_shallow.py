"""Table II — shallow detectors on B1..B5.

Regenerates the survey's generation-1/2 comparison: pattern matching
(exact + fuzzy), naive Bayes, decision tree, AdaBoost, and the CCAS SVM,
each reporting contest accuracy (hotspot recall), false alarms and ODST.

Shape checks (the paper's qualitative claims):
* exact pattern matching produces almost no false alarms but poor recall
  on unseen-pattern benchmarks,
* learned models dominate pattern matching on ranking quality (AUC),
* the SVM is the strongest shallow detector on average.
"""

import numpy as np

from .conftest import run_once


def test_table2_shallow_detectors(benchmark, suite, out_dir):
    from repro.bench import pivot_metric, write_table
    from repro.bench.harness import run_matrix
    from repro.core.registry import create

    names = [
        "pattern-exact",
        "pattern-fuzzy",
        "nb-density",
        "dtree-density",
        "adaboost-density",
        "svm-ccas",
    ]

    def run():
        factories = {n: (lambda n=n: create(n)) for n in names}
        return run_matrix(factories, suite, seed=7)

    results = run_once(benchmark, run)

    for metric, fname in (
        ("accuracy", "table2_accuracy.md"),
        ("false_alarms", "table2_false_alarms.md"),
        ("odst_seconds", "table2_odst.md"),
        ("auc", "table2_auc.md"),
    ):
        fmt = "{:d}" if metric == "false_alarms" else "{:.2f}"
        rows = pivot_metric(results, metric=metric, fmt=fmt)
        text = write_table(
            rows, out_dir / fname, title=f"Table II: shallow detectors — {metric}"
        )
        print("\n" + text)

    def mean_metric(detector, metric):
        vals = [
            getattr(r, metric)
            for r in results
            if r.detector == detector and getattr(r, metric) is not None
        ]
        return float(np.mean(vals)) if vals else float("nan")

    # exact matching: tiny false alarms (it only fires on seen patterns)
    exact_fa = mean_metric("pattern-exact", "false_alarms")
    svm_fa = mean_metric("svm-ccas", "false_alarms")
    assert exact_fa <= svm_fa + 1

    # learned detectors out-rank pattern matching on average AUC
    svm_auc = mean_metric("svm-ccas", "auc")
    fuzzy_auc = mean_metric("pattern-fuzzy", "auc")
    assert svm_auc > 0.6
    assert svm_auc >= fuzzy_auc - 0.05

    # the SVM is the strongest shallow model on average AUC
    for other in ("nb-density", "dtree-density"):
        assert svm_auc >= mean_metric(other, "auc") - 0.05

"""Ablation — detector ensembles (the survey's closing observation).

Combines the CCAS SVM and the CNN into a soft-vote ensemble on B3 and
compares against the members.  Shape check: the ensemble's ranking quality
(AUC) is at least as good as the weaker member and within noise of the
stronger member — averaging may help, must not catastrophically hurt.
"""

import numpy as np

from .conftest import run_once


def test_ablation_ensemble(benchmark, suite, out_dir):
    from repro.bench import write_table
    from repro.core import SoftVoteEnsemble
    from repro.core.evaluation import evaluate_detector
    from repro.core.registry import create

    b3 = [b for b in suite if b.name == "B3"][0]

    def run():
        rows = []
        aucs = {}
        detectors = {
            "svm-ccas": create("svm-ccas"),
            "cnn-dct": create("cnn-dct"),
            "svm+cnn": SoftVoteEnsemble(
                [create("svm-ccas"), create("cnn-dct")], name="svm+cnn"
            ),
        }
        for name, det in detectors.items():
            result = evaluate_detector(det, b3, rng=np.random.default_rng(13))
            auc = result.auc if result.auc is not None else 0.5
            aucs[name] = auc
            rows.append(
                {
                    "detector": name,
                    "accuracy_%": round(100 * result.accuracy, 1),
                    "false_alarms": result.false_alarms,
                    "auc": round(auc, 3),
                    "odst_s": round(result.odst_seconds, 1),
                }
            )
        return rows, aucs

    rows, aucs = run_once(benchmark, run)
    text = write_table(
        rows, out_dir / "ablation_ensemble.md", title="Ablation: ensemble (B3)"
    )
    print("\n" + text)

    weaker = min(aucs["svm-ccas"], aucs["cnn-dct"])
    stronger = max(aucs["svm-ccas"], aucs["cnn-dct"])
    assert aucs["svm+cnn"] >= weaker - 0.02, aucs
    assert aucs["svm+cnn"] >= stronger - 0.08, aucs

"""Table I — benchmark statistics.

Regenerates the contest-style table of per-benchmark clip counts and class
imbalance.  Shape checks: five benchmarks, hotspots are a minority of every
test set, B1 is the most hotspot-rich train set and B4 the most imbalanced
test set (matching the recipe's intent and the contest's flavor).
"""

from .conftest import run_once


def test_table1_benchmark_statistics(benchmark, suite, out_dir):
    from repro.bench import write_table

    def build():
        rows = []
        for b in suite:
            rows.append(
                {
                    "benchmark": b.name,
                    "train_clips": len(b.train),
                    "train_HS": b.train.n_hotspots,
                    "train_NHS": b.train.n_non_hotspots,
                    "train_HS_%": round(100 * b.train.hotspot_fraction, 1),
                    "test_clips": len(b.test),
                    "test_HS": b.test.n_hotspots,
                    "test_NHS": b.test.n_non_hotspots,
                    "test_HS_%": round(100 * b.test.hotspot_fraction, 1),
                    "description": b.description,
                }
            )
        return rows

    rows = run_once(benchmark, build)
    text = write_table(
        rows, out_dir / "table1_benchmarks.md", title="Table I: benchmark statistics"
    )
    print("\n" + text)

    assert [r["benchmark"] for r in rows] == ["B1", "B2", "B3", "B4", "B5"]
    for r in rows:
        # every benchmark is imbalanced toward non-hotspots on test
        assert r["test_HS_%"] < 50.0
        assert r["test_HS"] >= 1
        assert r["train_HS"] >= 1
    by_name = {r["benchmark"]: r for r in rows}
    # B1 has the most balanced training set of the suite
    assert by_name["B1"]["train_HS_%"] == max(r["train_HS_%"] for r in rows)
    # B4 is among the two most imbalanced test sets (B2 runs it close)
    two_rarest = sorted(rows, key=lambda r: r["test_HS_%"])[:2]
    assert "B4" in {r["benchmark"] for r in two_rarest}

"""Disabled-tracing overhead on the scan hot path: unmeasurable.

Observability is opt-in; when off, every collaborator still calls into
:data:`~repro.runtime.trace.NULL_TRACER` — ``span()`` hands back one
shared no-op context manager and ``event()`` is an empty method.  The
engine's hot loop pays that price once per *chunk* (hundreds of
windows), so the bound that matters is the null calls' cost relative to
one chunk's scoring work.

Same method as ``test_contract_overhead``: time the null-tracer
operations in isolation on millions of calls (where they are *largest*
relative to the work), time one realistic chunk-scoring batch
(min-of-rounds), and assert the ratio stays under 1%.  Observed:
~0.001%.
"""

import time

import numpy as np

from repro.features.dct import DCTFeatureTensor
from repro.runtime import NULL_TRACER


def _null_round_trip():
    with NULL_TRACER.span("chunk", kind="chunk", seq=1) as span:
        NULL_TRACER.event("pool_retry", chunk=1)
        span.set(n=64, attempts=1)


def _per_call_seconds(fn, calls: int = 200_000, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, (time.perf_counter() - t0) / calls)
    return best


def _batch_seconds(fn, rounds: int = 7, calls: int = 20) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, (time.perf_counter() - t0) / calls)
    return best


def test_disabled_tracing_overhead_under_one_percent(out_dir):
    from repro.bench import write_table

    # one full null span + event + close-attrs round trip, as a chunk pays
    t_null = _per_call_seconds(_null_round_trip)

    # one chunk's worth of scoring work (64 windows through the DCT front)
    extractor = DCTFeatureTensor(block=8, keep=4)
    rng = np.random.default_rng(7)
    stack = rng.random((64, 96, 96))
    t_chunk = _batch_seconds(lambda: extractor.extract_batch(stack))

    overhead = t_null / t_chunk

    rows = [
        {
            "quantity": "null tracer span+event round trip, per chunk",
            "value": f"{t_null * 1e9:.0f} ns",
        },
        {
            "quantity": "chunk scoring work (64x96x96 DCT), per chunk",
            "value": f"{t_chunk * 1e6:.0f} us",
        },
        {
            "quantity": "worst-case disabled-tracing overhead per chunk",
            "value": f"{overhead:.5%}",
        },
    ]
    write_table(
        rows,
        out_dir / "trace_overhead.md",
        title="NULL_TRACER overhead on the chunk scoring hot path "
        "(must be < 1%)",
    )

    # observed ~0.001%; 1% is the acceptance ceiling
    assert overhead < 0.01, f"disabled overhead {overhead:.3%} of a chunk"

"""Figure 3 — ROC / accuracy-vs-false-alarm trade-off curves on B2.

Sweeps the decision threshold of each detector family and writes the
(fpr, tpr) series the paper plots.  Shape checks: curves are monotone, the
CNN's curve dominates pattern matching's in AUC, and every detector can be
driven to zero false alarms by raising its threshold.
"""

import numpy as np

from .conftest import run_once


def test_fig3_roc_curves(benchmark, suite, out_dir):
    from repro.bench import write_table
    from repro.core.metrics import auc, roc_curve
    from repro.core.registry import create

    b2 = [b for b in suite if b.name == "B2"][0]
    names = ("pattern-fuzzy", "svm-ccas", "cnn-dct")

    def run():
        curves = {}
        for name in names:
            det = create(name)
            det.fit(b2.train, rng=np.random.default_rng(3))
            scores = det.predict_proba(b2.test.clips)
            fpr, tpr, thr = roc_curve(b2.test.labels, scores)
            curves[name] = (fpr, tpr, auc(fpr, tpr))
        return curves

    curves = run_once(benchmark, run)

    rows = []
    for name, (fpr, tpr, area) in curves.items():
        # resample the curve at fixed fpr grid points for the table
        grid = [0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0]
        tpr_at = [float(np.interp(g, fpr, tpr)) for g in grid]
        row = {"detector": name, "auc": round(area, 3)}
        row.update({f"tpr@fpr={g}": round(v, 2) for g, v in zip(grid, tpr_at)})
        rows.append(row)
    text = write_table(rows, out_dir / "fig3_roc.md", title="Fig 3: ROC on B2")
    print("\n" + text)

    for name, (fpr, tpr, area) in curves.items():
        assert (np.diff(fpr) >= 0).all()
        assert (np.diff(tpr) >= 0).all()
        assert (fpr[0], tpr[0]) == (0.0, 0.0)
        assert (fpr[-1], tpr[-1]) == (1.0, 1.0)

    assert curves["cnn-dct"][2] >= curves["pattern-fuzzy"][2] - 0.02
    assert curves["svm-ccas"][2] > 0.5

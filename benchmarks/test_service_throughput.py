"""Scan service — job throughput and submit-to-result latency.

The service layer is only worth its queue if it keeps the engine busy:
this bench stands up the full stack (HTTP front door, job manager,
worker fleet, in-memory stores) and drives it with the closed-loop load
generator at two fleet sizes.  Each job is a real HTTP round trip —
submit, poll, fetch the report — over a small routed block, so the
measured latency is what a client of ``repro serve`` would see.

Recorded to ``BENCH_service.json`` at the repo root: jobs/s plus
p50/p90/p99 submit-to-result latency per worker count.  The CI smoke
gates on every job succeeding, not on absolute numbers — shared runners
make wall-clock assertions flaky.
"""

import json
from pathlib import Path

import numpy as np

from .conftest import run_once


def _bench_layer(cell_nm=2048):
    from repro.data import RoutedBlockConfig, synthesize_routed_block
    from repro.geometry import Rect

    rng = np.random.default_rng(17)
    cell = Rect(0, 0, cell_nm, cell_nm)
    layer, _seeded = synthesize_routed_block(
        rng, cell, RoutedBlockConfig(n_marginal=2, marginal_len_nm=400)
    )
    return layer, cell


def _fitted_detector(suite):
    from repro.core.registry import create

    b1 = [b for b in suite if b.name == "B1"][0]
    detector = create("logistic-density")
    detector.fit(b1.train, rng=np.random.default_rng(17))
    return detector


def test_service_throughput(benchmark, suite, out_dir):
    from repro.bench import write_table
    from repro.service import (
        JobManager,
        LoadGenerator,
        ScanService,
        WorkerFleet,
        encode_job_request,
    )

    layer, region = _bench_layer()
    detector = _fitted_detector(suite)
    request = encode_job_request(layer, region, engine={"chunk_clips": 64})
    jobs, concurrency = 12, 4

    def run():
        reports = {}
        for workers in (1, 4):
            manager = JobManager.in_memory()
            fleet = WorkerFleet(manager, detector, workers=workers)
            with ScanService(manager, fleet=fleet) as service:
                generator = LoadGenerator(
                    service.url,
                    request,
                    jobs=jobs,
                    concurrency=concurrency,
                )
                reports[workers] = generator.run()
        return reports

    reports = run_once(benchmark, run)

    record = {
        "workload": {
            "cell_nm": 2048,
            "window_nm": 768,
            "step_nm": 256,
            "detector": "logistic-density",
            "jobs": jobs,
            "concurrency": concurrency,
            "transport": "http",
        },
        "results": [],
    }
    rows = []
    for workers, report in sorted(reports.items()):
        summary = report.to_dict()
        summary["workers"] = workers
        record["results"].append(summary)
        latency = report.latency_summary()
        rows.append(
            {
                "workers": workers,
                "jobs/s": round(report.throughput_jobs_per_s, 2),
                "p50_s": round(latency["p50_s"], 3),
                "p90_s": round(latency["p90_s"], 3),
                "p99_s": round(latency["p99_s"], 3),
            }
        )
        # correctness gate: the queue must lose nothing under load
        assert report.succeeded == jobs, f"workers={workers}: {summary}"
        assert report.failed == 0
        assert report.throughput_jobs_per_s > 0

    bench_json = Path(__file__).resolve().parents[1] / "BENCH_service.json"
    bench_json.write_text(json.dumps(record, indent=2) + "\n")
    text = write_table(
        rows,
        out_dir / "service_throughput.md",
        title="Scan service: HTTP job throughput by fleet size",
    )
    print("\n" + text)

"""Scan service — job throughput and submit-to-result latency.

The service layer is only worth its queue if it keeps the engine busy:
this bench stands up the full stack (HTTP front door, job manager,
worker fleet, in-memory stores) and drives it with the closed-loop load
generator at two fleet sizes.  Each job is a real HTTP round trip —
submit, poll, fetch the report — over a small routed block, so the
measured latency is what a client of ``repro serve`` would see.

Recorded to ``BENCH_service.json`` at the repo root: jobs/s plus
p50/p90/p99 submit-to-result latency per worker count.  The CI smoke
gates on every job succeeding, not on absolute numbers — shared runners
make wall-clock assertions flaky.
"""

import json
from pathlib import Path

import numpy as np

from .conftest import run_once


def _bench_layer(cell_nm=2048):
    from repro.data import RoutedBlockConfig, synthesize_routed_block
    from repro.geometry import Rect

    rng = np.random.default_rng(17)
    cell = Rect(0, 0, cell_nm, cell_nm)
    layer, _seeded = synthesize_routed_block(
        rng, cell, RoutedBlockConfig(n_marginal=2, marginal_len_nm=400)
    )
    return layer, cell


def _fitted_detector(suite):
    from repro.core.registry import create

    b1 = [b for b in suite if b.name == "B1"][0]
    detector = create("logistic-density")
    detector.fit(b1.train, rng=np.random.default_rng(17))
    return detector


def test_service_throughput(benchmark, suite, out_dir):
    from repro.bench import write_table
    from repro.service import (
        JobManager,
        LoadGenerator,
        ScanService,
        WorkerFleet,
        encode_job_request,
    )

    layer, region = _bench_layer()
    detector = _fitted_detector(suite)
    request = encode_job_request(layer, region, engine={"chunk_clips": 64})
    jobs, concurrency = 12, 4

    def run():
        reports = {}
        for workers in (1, 4):
            manager = JobManager.in_memory()
            fleet = WorkerFleet(manager, detector, workers=workers)
            with ScanService(manager, fleet=fleet) as service:
                generator = LoadGenerator(
                    service.url,
                    request,
                    jobs=jobs,
                    concurrency=concurrency,
                )
                reports[workers] = generator.run()
        return reports

    reports = run_once(benchmark, run)

    record = {
        "workload": {
            "cell_nm": 2048,
            "window_nm": 768,
            "step_nm": 256,
            "detector": "logistic-density",
            "jobs": jobs,
            "concurrency": concurrency,
            "transport": "http",
        },
        "results": [],
    }
    rows = []
    for workers, report in sorted(reports.items()):
        summary = report.to_dict()
        summary["workers"] = workers
        record["results"].append(summary)
        latency = report.latency_summary()
        rows.append(
            {
                "workers": workers,
                "jobs/s": round(report.throughput_jobs_per_s, 2),
                "p50_s": round(latency["p50_s"], 3),
                "p90_s": round(latency["p90_s"], 3),
                "p99_s": round(latency["p99_s"], 3),
            }
        )
        # correctness gate: the queue must lose nothing under load
        assert report.succeeded == jobs, f"workers={workers}: {summary}"
        assert report.failed == 0
        assert report.throughput_jobs_per_s > 0

    _merge_bench_json(record)
    text = write_table(
        rows,
        out_dir / "service_throughput.md",
        title="Scan service: HTTP job throughput by fleet size",
    )
    print("\n" + text)


def _merge_bench_json(update):
    """Merge a partial record into BENCH_service.json (tests can run solo)."""
    bench_json = Path(__file__).resolve().parents[1] / "BENCH_service.json"
    record = {}
    if bench_json.exists():
        try:
            record = json.loads(bench_json.read_text())
        except json.JSONDecodeError:
            record = {}
    record.update(update)
    bench_json.write_text(json.dumps(record, indent=2) + "\n")


def test_service_resilience_bench(benchmark, suite, out_dir):
    """Backpressure shed rate + drain/recovery wall-clock under load.

    Two scenarios land in ``BENCH_service.json``:

    * ``backpressure`` — a deliberately tiny admission window
      (``max_queue_depth=2``) under 4 concurrent clients: the door sheds
      with 503 + Retry-After and the clients' jittered backoff absorbs
      every shed, so the run still completes all jobs.  Recorded:
      ``retries_503`` and the resulting ``shed_rate``.
    * ``drain`` — a loaded fleet is drained mid-flight (the rolling
      restart path): ``drain_s`` is submit-stop to every-worker-exited,
      ``recovery_s`` is how long a fresh fleet takes to finish every
      requeued job.  The correctness gate is zero lost jobs.
    """
    import time as _time

    from repro.bench import write_table
    from repro.service import (
        JobManager,
        JobState,
        LoadGenerator,
        ScanService,
        WorkerFleet,
        encode_job_request,
    )

    layer, region = _bench_layer()
    detector = _fitted_detector(suite)
    request = encode_job_request(layer, region, engine={"chunk_clips": 64})

    def run():
        out = {}

        # --- backpressure: a single worker behind a one-deep queue under
        # 4 concurrent clients MUST shed, and every shed must be absorbed
        manager = JobManager.in_memory(max_queue_depth=1)
        fleet = WorkerFleet(manager, detector, workers=1)
        with ScanService(manager, fleet=fleet) as service:
            generator = LoadGenerator(
                service.url, request, jobs=12, concurrency=4
            )
            report = generator.run()
        shed = manager.telemetry.counters.get("job_shed", 0)
        out["backpressure"] = {
            "max_queue_depth": 1,
            "report": report,
            "sheds_served": shed,
        }

        # --- drain under load, then recover on a fresh fleet
        manager = JobManager.in_memory()
        fleet = WorkerFleet(manager, detector, workers=2)
        fleet.start()
        job_ids = [manager.submit(request).job_id for _ in range(6)]
        while manager.jobs_by_state()["running"] == 0:
            _time.sleep(0.005)
        started = _time.monotonic()
        clean = fleet.drain(timeout=120.0)
        drain_s = _time.monotonic() - started
        requeued = manager.jobs_by_state()["queued"]
        manager.end_drain()
        next_fleet = WorkerFleet(manager, detector, workers=2)
        started = _time.monotonic()
        next_fleet.start()
        idle = next_fleet.wait_idle(timeout=300.0)
        recovery_s = _time.monotonic() - started
        next_fleet.stop()
        states = [manager.status(job_id).state for job_id in job_ids]
        out["drain"] = {
            "jobs": len(job_ids),
            "clean": clean,
            "idle": idle,
            "requeued_at_drain": requeued,
            "drain_s": drain_s,
            "recovery_s": recovery_s,
            "lost": sum(s is not JobState.SUCCEEDED for s in states),
        }
        return out

    out = run_once(benchmark, run)

    bp = out["backpressure"]
    report = bp["report"]
    # correctness gates: shedding may slow clients but never lose jobs,
    # and a drain hands every accepted job to the next fleet
    assert report.succeeded == report.jobs, report.to_dict()
    assert report.failed == 0
    assert report.retries_503 > 0, "backpressure scenario never shed"
    drain = out["drain"]
    assert drain["clean"] and drain["idle"]
    assert drain["lost"] == 0, drain

    _merge_bench_json(
        {
            "backpressure": {
                "max_queue_depth": bp["max_queue_depth"],
                "sheds_served": bp["sheds_served"],
                **report.to_dict(),
            },
            "drain": drain,
        }
    )
    rows = [
        {
            "scenario": "backpressure",
            "jobs": report.jobs,
            "retries_503": report.retries_503,
            "shed_rate": round(report.shed_rate, 3),
            "drain_s": None,
            "recovery_s": None,
            "lost": report.failed,
        },
        {
            "scenario": "drain+recover",
            "jobs": drain["jobs"],
            "retries_503": None,
            "shed_rate": None,
            "drain_s": round(drain["drain_s"], 3),
            "recovery_s": round(drain["recovery_s"], 3),
            "lost": drain["lost"],
        },
    ]
    text = write_table(
        rows,
        out_dir / "service_resilience.md",
        title="Scan service: backpressure shed rate and drain recovery",
    )
    print("\n" + text)

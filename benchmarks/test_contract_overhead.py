"""Disabled-contract overhead on the raster scan path: unmeasurable.

The ``@shaped`` wrapper's fast path is one module-global read and a tail
call, and every decorated function is batch-level (whole raster stacks,
whole clip lists), so the wrapper runs once per *batch*, not per window.

Timing the decorated batch call against its inner function directly is
hopeless — the batch itself jitters far more than the wrapper costs — so
this bench measures the two quantities separately:

* the wrapper's per-call cost, isolated on a no-op function where it is
  *largest* relative to the work (millions of calls, so the estimate is
  stable to nanoseconds), and
* the real raster-path batch call it decorates (min-of-rounds),

and asserts their ratio — the worst-case relative overhead the raster
path can see per batch — stays under 1%.  Observed: ~0.01%.
"""

import time

import numpy as np

from repro import contracts
from repro.contracts import shaped
from repro.features.dct import DCTFeatureTensor


def _noop(stack):
    return stack


_noop_shaped = shaped("_->_")(_noop)


def _per_call_seconds(fn, arg, calls: int = 200_000, rounds: int = 5) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(calls):
            fn(arg)
        best = min(best, (time.perf_counter() - t0) / calls)
    return best


def _batch_seconds(fn, rounds: int = 7, calls: int = 20) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, (time.perf_counter() - t0) / calls)
    return best


def test_disabled_overhead_under_one_percent(out_dir):
    from repro.bench import write_table

    contracts.disable()
    extractor = DCTFeatureTensor(block=8, keep=4)
    rng = np.random.default_rng(7)
    stack = rng.random((64, 96, 96))  # 64 windows/batch, as the engine slices

    t_raw = _per_call_seconds(_noop, stack)
    t_wrapped = _per_call_seconds(_noop_shaped, stack)
    wrapper_cost = max(0.0, t_wrapped - t_raw)

    t_batch = _batch_seconds(lambda: extractor.extract_batch(stack))
    overhead = wrapper_cost / t_batch

    rows = [
        {
            "quantity": "wrapper fast path (disabled), per call",
            "value": f"{wrapper_cost * 1e9:.0f} ns",
        },
        {
            "quantity": "extract_batch(64x96x96), per call",
            "value": f"{t_batch * 1e6:.0f} us",
        },
        {
            "quantity": "worst-case raster-path overhead per batch",
            "value": f"{overhead:.5%}",
        },
    ]
    write_table(
        rows,
        out_dir / "contract_overhead.md",
        title="@shaped disabled-path overhead on the raster scan hot call "
        "(must be < 1%)",
    )

    # observed ~0.01%; 1% is the acceptance ceiling
    assert overhead < 0.01, f"disabled overhead {overhead:.3%} of a batch call"

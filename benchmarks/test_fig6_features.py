"""Figure 6 — feature-representation ablation.

Holds the learner fixed (the balanced RBF SVM) and swaps the feature
extractor: density grid, CCAS, flattened DCT tensor, squish vector.
Runs on B2 and B5 (line-end-rich, and distribution-shifted).

Shape checks: all features are learnable (AUC > 0.55 somewhere), and the
spatially-faithful features (CCAS / DCT) beat the coarse density grid on
average — the survey's argument for representation quality.
"""

import numpy as np

from .conftest import run_once


def test_fig6_feature_ablation(benchmark, suite, out_dir):
    from repro.bench import write_table
    from repro.core.evaluation import evaluate_detector
    from repro.features import (
        ConcentricSampling,
        DCTFeatureTensor,
        DensityGrid,
        SquishFeatures,
    )
    from repro.shallow import SVM, FeatureDetector, SVMConfig

    extractors = {
        "density12": DensityGrid(grid=12),
        "ccas": ConcentricSampling(n_rings=12, n_angles=24),
        "dct-flat": DCTFeatureTensor(block=8, keep=4, flatten=True),
        "squish": SquishFeatures(max_cuts=24),
    }
    benchmarks = [b for b in suite if b.name in ("B2", "B5")]

    def run():
        aucs = {}
        for feat_name, extractor in extractors.items():
            for b in benchmarks:
                det = FeatureDetector(
                    name=f"svm-{feat_name}",
                    extractor=extractor,
                    learner=SVM(SVMConfig(C=4.0, kernel="rbf")),
                    upsample_ratio=0.5,
                )
                result = evaluate_detector(det, b, rng=np.random.default_rng(9))
                aucs[(feat_name, b.name)] = (
                    result.auc if result.auc is not None else 0.5
                )
        return aucs

    aucs = run_once(benchmark, run)

    rows = []
    for feat_name in extractors:
        row = {"features": feat_name}
        for b in benchmarks:
            row[b.name] = round(aucs[(feat_name, b.name)], 3)
        row["mean"] = round(
            float(np.mean([aucs[(feat_name, b.name)] for b in benchmarks])), 3
        )
        rows.append(row)
    text = write_table(
        rows, out_dir / "fig6_features.md", title="Fig 6: feature ablation (SVM AUC)"
    )
    print("\n" + text)

    means = {r["features"]: r["mean"] for r in rows}
    assert max(means.values()) > 0.6
    # every representation is learnable: nothing collapses to chance
    assert all(m > 0.5 for m in means.values()), means
    # the spatially faithful features stay competitive with the density grid
    assert max(means["ccas"], means["dct-flat"]) >= means["density12"] - 0.10

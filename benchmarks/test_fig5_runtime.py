"""Figure 5 — detection-time scaling: litho-sim vs learned detectors.

Measures per-clip prediction wall time over growing clip populations for
generation 0 (the lithography oracle), generation 1 (fuzzy pattern
matching), generation 2 (CCAS SVM), and generation 3 (the CNN).

Shape checks: the litho simulator is by far the slowest per clip (that gap
is the raison d'etre of every learned detector), scaling is roughly linear
for all of them, and the learned detectors are at least 3x faster than
simulation.
"""

import time

import numpy as np

from .conftest import run_once

def test_fig5_runtime_scaling(benchmark, suite, out_dir):
    from repro.bench import write_table
    from repro.core.detector import OracleDetector
    from repro.core.registry import create
    from repro.litho import HotspotOracle

    b1 = [b for b in suite if b.name == "B1"][0]
    pool = b1.test.clips
    n_max = min(200, len(pool))
    COUNTS = (max(10, n_max // 4), max(20, n_max // 2), n_max)

    def run():
        detectors = {
            "litho-sim": OracleDetector(HotspotOracle()),
            "pattern-fuzzy": create("pattern-fuzzy"),
            "svm-ccas": create("svm-ccas"),
            "cnn-dct": create("cnn-dct"),
        }
        rng = np.random.default_rng(5)
        for name, det in detectors.items():
            det.fit(b1.train, rng=rng)
        table = {}
        for name, det in detectors.items():
            times = []
            for n in COUNTS:
                clips = pool[:n]
                t0 = time.perf_counter()
                det.predict_proba(clips)
                times.append(time.perf_counter() - t0)
            table[name] = times
        return table

    table = run_once(benchmark, run)

    rows = []
    for name, times in table.items():
        row = {"detector": name}
        row.update(
            {f"n={n}": f"{t:.3f}s" for n, t in zip(COUNTS, times)}
        )
        row["ms/clip"] = round(1000 * times[-1] / COUNTS[-1], 2)
        rows.append(row)
    text = write_table(
        rows, out_dir / "fig5_runtime.md", title="Fig 5: detection runtime scaling"
    )
    print("\n" + text)

    per_clip = {name: times[-1] / COUNTS[-1] for name, times in table.items()}
    # generation 0 is the slowest; learned detectors are far faster
    assert per_clip["litho-sim"] == max(per_clip.values())
    for name in ("pattern-fuzzy", "svm-ccas", "cnn-dct"):
        assert per_clip["litho-sim"] > 3 * per_clip[name], (
            name,
            per_clip["litho-sim"],
            per_clip[name],
        )
    # roughly linear scaling in clip count (generous bound: wall-clock
    # timing on a shared CPU is noisy)
    for name, times in table.items():
        assert times[-1] <= 16 * max(times[0], 1e-4), (name, times)

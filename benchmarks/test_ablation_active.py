"""Ablation — data-efficient labeling with active learning.

Oracle labels are simulation-priced, so the data-efficiency question
(TCAD'19's theme, applied to our setting) is: at a fixed label budget,
does uncertainty sampling beat random sampling?

Runs both acquisition strategies over B1's training pool at a budget far
below the full pool, then scores the resulting detectors on B1's test
split.  Shape checks: both reach useful quality; uncertainty sampling is
not worse than random beyond noise, and it surfaces at least as many
hotspot training examples.
"""

import numpy as np

from .conftest import run_once


class _LookupOracle:
    """Replays the suite's cached labels (no re-simulation needed)."""

    def __init__(self, dataset):
        self._labels = {
            clip: int(label) for clip, label in zip(dataset.clips, dataset.labels)
        }
        self.queries = 0

    def label(self, clip):
        self.queries += 1
        return self._labels[clip]


def test_ablation_active_learning(benchmark, suite, out_dir):
    from repro.bench import write_table
    from repro.core import run_active_learning
    from repro.core.metrics import roc_auc
    from repro.features import ConcentricSampling
    from repro.shallow import SVM, FeatureDetector, SVMConfig

    b1 = [b for b in suite if b.name == "B1"][0]
    budget = max(40, len(b1.train) // 3)

    def make_detector():
        return FeatureDetector(
            name="al-svm",
            extractor=ConcentricSampling(n_rings=12, n_angles=24),
            learner=SVM(SVMConfig(C=4.0)),
            calibrate=None,
        )

    def run():
        rows = []
        stats = {}
        for strategy in ("random", "uncertainty"):
            oracle = _LookupOracle(b1.train)
            result = run_active_learning(
                make_detector,
                oracle,
                b1.train.clips,
                np.random.default_rng(51),
                budget=budget,
                seed_size=20,
                batch_size=10,
                strategy=strategy,
            )
            scores = result.detector.predict_proba(b1.test.clips)
            auc = roc_auc(b1.test.labels, scores)
            stats[strategy] = {
                "auc": auc,
                "hotspots_found": result.labeled.n_hotspots,
            }
            rows.append(
                {
                    "strategy": strategy,
                    "labels_spent": result.labels_spent,
                    "hotspots_found": result.labeled.n_hotspots,
                    "test_auc": round(auc, 3),
                }
            )
        # reference: the full-pool detector
        full = make_detector()
        full.fit(b1.train, rng=np.random.default_rng(51))
        full_auc = roc_auc(b1.test.labels, full.predict_proba(b1.test.clips))
        rows.append(
            {
                "strategy": "full pool",
                "labels_spent": len(b1.train),
                "hotspots_found": b1.train.n_hotspots,
                "test_auc": round(full_auc, 3),
            }
        )
        return rows, stats, full_auc

    rows, stats, full_auc = run_once(benchmark, run)
    text = write_table(
        rows, out_dir / "ablation_active.md",
        title=f"Ablation: active learning (B1, budget={budget})",
    )
    print("\n" + text)

    assert stats["uncertainty"]["auc"] > 0.6
    assert stats["uncertainty"]["auc"] >= stats["random"]["auc"] - 0.10
    # at a third of the labels, quality is already most of the way there
    assert stats["uncertainty"]["auc"] >= full_auc - 0.25

"""Table IV — imbalance-handling ablation on the most imbalanced benchmark.

Trains the same CNN three ways on B4 (the rarest-hotspot benchmark) at a
fixed 0.5 decision threshold:

1. raw imbalanced data,
2. minority up-sampling (exact copies),
3. minority up-sampling with mirror-flip augmentation (the paper's recipe).

Shape check: exact-copy up-sampling only reweights an already
class-weighted loss, so it lands within noise of raw; the mirror-flip
augmentation injects genuinely new samples and must win the ablation
outright (both recall and ranking quality).
"""

import numpy as np

from .conftest import run_once


def test_table4_imbalance_handling(benchmark, suite, out_dir):
    from repro.bench import write_table
    from repro.core.evaluation import evaluate_detector
    from repro.nn import CNNDetector, CNNDetectorConfig

    b4 = [b for b in suite if b.name == "B4"][0]

    arms = (
        ("raw", None, False),
        ("upsample", 0.5, False),
        ("upsample+mirror", 0.5, True),
    )

    def run():
        rows = []
        recalls = {}
        seeds = (21, 22)
        for name, ratio, mirror in arms:
            accs, fas, aucs, fit_s = [], [], [], 0.0
            for seed in seeds:
                det = CNNDetector(
                    CNNDetectorConfig(
                        epochs=10,
                        biased_epsilon=None,
                        upsample_ratio=ratio,
                        mirror=mirror,
                        width=16,
                        calibrate=None,  # fixed 0.5 cutoff: isolate the
                        # training-distribution effect from thresholding
                    )
                )
                result = evaluate_detector(det, b4, rng=np.random.default_rng(seed))
                accs.append(result.accuracy)
                fas.append(result.false_alarms)
                if result.auc is not None:
                    aucs.append(result.auc)
                fit_s += result.fit_seconds
            recalls[name] = float(np.mean(accs))
            rows.append(
                {
                    "training": name,
                    "accuracy_%": round(100 * float(np.mean(accs)), 1),
                    "false_alarms": round(float(np.mean(fas)), 1),
                    "auc": round(float(np.mean(aucs)), 3) if aucs else None,
                    "fit_s": round(fit_s, 1),
                }
            )
        return rows, recalls

    rows, recalls = run_once(benchmark, run)
    text = write_table(
        rows, out_dir / "table4_imbalance.md", title="Table IV: imbalance handling (B4)"
    )
    print("\n" + text)

    # exact-copy up-sampling merely reweights (the loss is already class
    # weighted) so it sits within noise of raw; the *mirror* augmentation
    # adds real information and must win the ablation outright
    assert abs(recalls["upsample"] - recalls["raw"]) <= 0.15
    assert recalls["upsample+mirror"] >= recalls["raw"]
    assert recalls["upsample+mirror"] >= recalls["upsample"]
    assert recalls["upsample+mirror"] == max(recalls.values())

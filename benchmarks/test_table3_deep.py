"""Table III — deep vs shallow on B1..B5.

The survey's headline: the DCT-feature-tensor CNN (with up-sampling,
mirroring, and biased learning) meets or beats the best shallow detector's
ranking quality while keeping contest accuracy high.

Shape checks:
* CNN mean AUC >= SVM mean AUC - small tolerance (deep >= shallow),
* CNN mean contest accuracy (recall) is the highest in the lineup,
* the CNN stays usable on the shifted-distribution benchmark (B5).
"""

import numpy as np

from .conftest import run_once


def _mean(results, detector, metric):
    vals = [
        getattr(r, metric)
        for r in results
        if r.detector == detector and getattr(r, metric) is not None
    ]
    return float(np.mean(vals)) if vals else float("nan")


def test_table3_deep_vs_shallow(benchmark, suite, out_dir):
    from repro.bench import pivot_metric, write_table
    from repro.bench.harness import run_matrix
    from repro.core.registry import create

    def run():
        factories = {
            "pattern-fuzzy": lambda: create("pattern-fuzzy"),
            "svm-ccas": lambda: create("svm-ccas"),
            "cnn-dct": lambda: create("cnn-dct"),
        }
        return run_matrix(factories, suite, seed=11)

    results = run_once(benchmark, run)

    for metric, fname in (
        ("accuracy", "table3_accuracy.md"),
        ("false_alarms", "table3_false_alarms.md"),
        ("auc", "table3_auc.md"),
        ("odst_seconds", "table3_odst.md"),
    ):
        fmt = "{:d}" if metric == "false_alarms" else "{:.2f}"
        rows = pivot_metric(results, metric=metric, fmt=fmt)
        text = write_table(
            rows, out_dir / fname, title=f"Table III: deep vs shallow — {metric}"
        )
        print("\n" + text)

    cnn_auc = _mean(results, "cnn-dct", "auc")
    svm_auc = _mean(results, "svm-ccas", "auc")
    fuzzy_auc = _mean(results, "pattern-fuzzy", "auc")

    # the generational ordering: deep >= shallow ML >= pattern matching
    assert cnn_auc >= svm_auc - 0.05, (cnn_auc, svm_auc)
    assert cnn_auc >= fuzzy_auc - 0.02, (cnn_auc, fuzzy_auc)
    assert cnn_auc > 0.7

    # at the matched false-alarm budget (both calibrated with the same FA
    # cap), the deep detector's recall meets or beats the shallow one's
    cnn_acc = _mean(results, "cnn-dct", "accuracy")
    assert cnn_acc >= _mean(results, "svm-ccas", "accuracy") - 0.10
    assert cnn_acc >= _mean(results, "pattern-fuzzy", "accuracy")

    # usable under distribution shift (B5): recall above pattern matching
    cnn_b5 = [r for r in results if r.detector == "cnn-dct" and r.benchmark == "B5"][0]
    fuzzy_b5 = [
        r for r in results if r.detector == "pattern-fuzzy" and r.benchmark == "B5"
    ][0]
    assert cnn_b5.accuracy >= fuzzy_b5.accuracy

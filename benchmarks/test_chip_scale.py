"""Full-chip scale-out — shard-worker scaling, instance dedup, re-scan.

Three scenarios land in ``BENCH_chip.json`` at the repo root:

* ``scaling`` — one routed block scanned as a 4-shard plan with 1 and
  4 shard workers.  The correctness gate is byte-identity to the
  monolithic scan; the speedup is recorded, not gated (shared runners
  make wall-clock ratios flaky).
* ``instance_dedup`` — an 8x8 ``replicate_block`` array scanned with
  pitch-snapped shards, fingerprint dedup on vs off.  Hierarchical
  reuse is deterministic, so this one IS gated: >= 10x windows/s.
* ``rescan`` — the array re-scanned from its manifest after dirtying
  one placement: only the edit's fingerprint cone may be re-scored.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from .conftest import run_once

WINDOW, CORE = 768, 256


def _fitted_detector(suite):
    from repro.core.registry import create

    b1 = [b for b in suite if b.name == "B1"][0]
    detector = create("logistic-density")
    detector.fit(b1.train, rng=np.random.default_rng(17))
    return detector


def _routed_block(cell_nm=2048):
    from repro.data import RoutedBlockConfig, synthesize_routed_block
    from repro.geometry import Rect

    rng = np.random.default_rng(17)
    cell = Rect(0, 0, cell_nm, cell_nm)
    layer, _seeded = synthesize_routed_block(
        rng, cell, RoutedBlockConfig(n_marginal=2, marginal_len_nm=400)
    )
    return layer, cell


def _array_chip(nx=8, ny=8, cell_nm=2048):
    from repro.data import replicate_block
    from repro.geometry import Rect

    cell_layer, cell = _routed_block(cell_nm)
    layer = replicate_block(
        cell_layer, cell, nx, ny, pitch_x=cell_nm, pitch_y=cell_nm
    )
    return layer, Rect(0, 0, nx * cell_nm, ny * cell_nm)


def _canonical(report):
    from repro.service import canonical_report_json

    return canonical_report_json(report.to_json())


def _merge_bench_json(update):
    """Merge a partial record into BENCH_chip.json (tests can run solo)."""
    bench_json = Path(__file__).resolve().parents[1] / "BENCH_chip.json"
    record = {}
    if bench_json.exists():
        try:
            record = json.loads(bench_json.read_text())
        except json.JSONDecodeError:
            record = {}
    record.update(update)
    bench_json.write_text(json.dumps(record, indent=2) + "\n")


def test_chip_shard_worker_scaling(benchmark, suite, out_dir):
    from repro.bench import write_table
    from repro.runtime import EngineConfig, ScanEngine, scan_chip

    detector = _fitted_detector(suite)
    layer, region = _array_chip(nx=3, ny=3)

    def run():
        mono_t0 = time.perf_counter()
        mono = ScanEngine(detector).scan(layer, region, WINDOW, CORE,
                                         keep_clips=False)
        mono_s = time.perf_counter() - mono_t0
        out = {"mono_s": mono_s, "mono": _canonical(mono), "runs": {}}
        for workers in (1, 4):
            config = EngineConfig.from_kwargs(
                shards=4, shard_workers=workers, instance_dedup=False
            )
            t0 = time.perf_counter()
            report = scan_chip(
                layer, detector, config, region=region,
                window_nm=WINDOW, core_nm=CORE,
            )
            out["runs"][workers] = {
                "elapsed_s": time.perf_counter() - t0,
                "canonical": _canonical(report),
                "n_windows": report.n_windows,
            }
        return out

    out = run_once(benchmark, run)

    rows = []
    base = out["runs"][1]["elapsed_s"]
    for workers, run_ in sorted(out["runs"].items()):
        # the gate is determinism; the scaling number is informational
        assert run_["canonical"] == out["mono"], f"workers={workers}"
        rows.append(
            {
                "shard_workers": workers,
                "elapsed_s": round(run_["elapsed_s"], 3),
                "speedup_vs_1": round(base / run_["elapsed_s"], 2),
                "windows": run_["n_windows"],
            }
        )
    _merge_bench_json(
        {
            "scaling": {
                "shards": 4,
                # shard workers are threads; wall-clock speedup needs
                # cores (and GIL-free scoring), so record the machine
                "cpus": os.cpu_count(),
                "mono_s": round(out["mono_s"], 3),
                "results": rows,
            }
        }
    )
    text = write_table(
        rows,
        out_dir / "chip_scaling.md",
        title="Chip scan: 4-shard plan by shard worker count",
    )
    print("\n" + text)


def test_chip_instance_dedup_speedup(benchmark, suite, out_dir):
    from repro.bench import write_table
    from repro.runtime import EngineConfig, scan_chip

    detector = _fitted_detector(suite)
    layer, region = _array_chip(nx=12, ny=12)
    shards, snap = 144, 2048

    def run():
        out = {}
        for dedup in (False, True):
            config = EngineConfig.from_kwargs(
                shards=shards, snap_nm=snap, instance_dedup=dedup
            )
            t0 = time.perf_counter()
            report = scan_chip(
                layer, detector, config, region=region,
                window_nm=WINDOW, core_nm=CORE,
            )
            tele = report.telemetry
            out[dedup] = {
                "elapsed_s": time.perf_counter() - t0,
                "canonical": _canonical(report),
                "n_windows": report.n_windows,
                "shard_scans": tele.counter("shard_scans"),
                "shard_replays": tele.counter("shard_replays"),
                "windows_scanned": tele.counter("shard_windows_scanned"),
                "windows_replayed": tele.counter("shard_windows_replayed"),
            }
        return out

    out = run_once(benchmark, run)

    assert out[True]["canonical"] == out[False]["canonical"], (
        "dedup must not change a single byte of the merged report"
    )
    rate_off = out[False]["n_windows"] / out[False]["elapsed_s"]
    rate_on = out[True]["n_windows"] / out[True]["elapsed_s"]
    speedup = rate_on / rate_off
    # hierarchical reuse is deterministic, so this gate is stable: the
    # 12x12 array collapses to a handful of canonical shards
    assert out[True]["shard_scans"] < out[False]["shard_scans"] / 4
    assert speedup >= 10.0, (
        f"instance dedup speedup {speedup:.1f}x < 10x "
        f"({out[True]['shard_scans']} scans vs {out[False]['shard_scans']})"
    )

    rows = [
        {
            "instance_dedup": dedup,
            "windows/s": round(out[dedup]["n_windows"] / out[dedup]["elapsed_s"]),
            "elapsed_s": round(out[dedup]["elapsed_s"], 3),
            "shard_scans": out[dedup]["shard_scans"],
            "shard_replays": out[dedup]["shard_replays"],
        }
        for dedup in (False, True)
    ]
    _merge_bench_json(
        {
            "instance_dedup": {
                "array": "12x12 x 2048nm routed cell",
                "shards": shards,
                "snap_nm": snap,
                "speedup_windows_per_s": round(speedup, 2),
                "results": rows,
            }
        }
    )
    text = write_table(
        rows,
        out_dir / "chip_instance_dedup.md",
        title="Chip scan: instance-level dedup on a replicated array",
    )
    print("\n" + text)


def test_chip_incremental_rescan(benchmark, suite, out_dir, tmp_path):
    from repro.bench import write_table
    from repro.geometry import Layer, Rect
    from repro.runtime import EngineConfig, scan_chip

    detector = _fitted_detector(suite)
    layer, region = _array_chip(nx=4, ny=4)
    manifest = tmp_path / "chip-manifest.npz"
    shards, snap = 16, 2048

    edited = Layer(layer.name)
    for poly in layer.polygons:
        edited.add(poly)
    edited.add_rects([Rect(2048 + 600, 2048 + 600, 2048 + 900, 2048 + 700)])

    def run():
        t0 = time.perf_counter()
        scan_chip(
            layer,
            detector,
            EngineConfig.from_kwargs(
                shards=shards, snap_nm=snap, manifest=manifest
            ),
            region=region,
            window_nm=WINDOW,
            core_nm=CORE,
        )
        full_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        rescan = scan_chip(
            edited,
            detector,
            EngineConfig.from_kwargs(
                shards=shards, snap_nm=snap, rescan_from=manifest
            ),
            region=region,
            window_nm=WINDOW,
            core_nm=CORE,
        )
        rescan_s = time.perf_counter() - t0

        fresh = scan_chip(
            edited,
            detector,
            EngineConfig.from_kwargs(shards=shards, snap_nm=snap),
            region=region,
            window_nm=WINDOW,
            core_nm=CORE,
        )
        return {
            "full_s": full_s,
            "rescan_s": rescan_s,
            "rescan": rescan,
            "fresh": _canonical(fresh),
        }

    out = run_once(benchmark, run)

    rescan = out["rescan"]
    tele = rescan.telemetry
    rescored = tele.counter("rescan_shards_rescored")
    reused = tele.counter("rescan_shards_reused")
    # the edit touched one placement: only its fingerprint cone rescans
    assert _canonical(rescan) == out["fresh"]
    assert rescored >= 1
    assert reused > rescored, "most of the chip must replay from the manifest"

    row = {
        "full_scan_s": round(out["full_s"], 3),
        "rescan_s": round(out["rescan_s"], 3),
        "shards_rescored": rescored,
        "shards_reused": reused,
        "windows_reused": tele.counter("rescan_windows_reused"),
    }
    _merge_bench_json({"rescan": {"shards": shards, **row}})
    text = write_table(
        [row],
        out_dir / "chip_rescan.md",
        title="Chip scan: incremental re-scan after a one-cell edit",
    )
    print("\n" + text)

"""Ablation — weight binarization (the TCAD'21 efficiency direction).

Trains the full-precision feature-tensor CNN and its binarized twin on B2
with the same recipe, and compares ranking quality.  Shape check (the
binarized-detector claim): layout rasters are near-binary content, so
binarizing the network body costs only a small AUC margin.

(The companion claim — inference speedup — needs bit-packed kernels that a
numpy implementation cannot honestly demonstrate; DESIGN.md records this.)
"""

import numpy as np

from .conftest import run_once


def test_ablation_binarized_cnn(benchmark, suite, out_dir):
    from repro.bench import write_table
    from repro.core.evaluation import evaluate_detector
    from repro.nn import BinaryCNNDetector, CNNDetector, CNNDetectorConfig

    b2 = [b for b in suite if b.name == "B2"][0]
    seeds = (41, 42)

    def run():
        rows = []
        aucs = {}
        for name, cls in (("cnn-dct", CNNDetector), ("bnn-dct", BinaryCNNDetector)):
            arm_aucs, arm_accs, arm_fas = [], [], []
            for seed in seeds:
                det = cls(
                    CNNDetectorConfig(epochs=10, biased_epsilon=None, width=16)
                )
                result = evaluate_detector(det, b2, rng=np.random.default_rng(seed))
                arm_aucs.append(result.auc if result.auc is not None else 0.5)
                arm_accs.append(result.accuracy)
                arm_fas.append(result.false_alarms)
            aucs[name] = float(np.mean(arm_aucs))
            rows.append(
                {
                    "detector": name,
                    "accuracy_%": round(100 * float(np.mean(arm_accs)), 1),
                    "false_alarms": round(float(np.mean(arm_fas)), 1),
                    "auc": round(aucs[name], 3),
                }
            )
        return rows, aucs

    rows, aucs = run_once(benchmark, run)
    text = write_table(
        rows, out_dir / "ablation_bnn.md", title="Ablation: binarized CNN (B2)"
    )
    print("\n" + text)

    # binarization must remain usable: close to full precision, above chance
    assert aucs["bnn-dct"] > 0.6, aucs
    assert aucs["bnn-dct"] >= aucs["cnn-dct"] - 0.15, aucs

"""Figure 4 — biased learning: accuracy and false alarms vs epsilon on B3.

Sweeps the ground-truth-shift epsilon of the biased-learning phase with
everything else held fixed.  Shape check (the TCAD'19 claim): moving from
epsilon 0 to a substantial epsilon raises (or preserves) hotspot recall
while raising false alarms — the knob trades one for the other, and NHS
scores rise monotonically in epsilon.
"""

import numpy as np

from .conftest import run_once

EPSILONS = (0.0, 0.1, 0.2, 0.3, 0.4)


def test_fig4_biased_learning_sweep(benchmark, suite, out_dir):
    from repro.bench import write_table
    from repro.core.evaluation import evaluate_detector
    from repro.nn import CNNDetector, CNNDetectorConfig

    b3 = [b for b in suite if b.name == "B3"][0]

    def run():
        rows = []
        series = {}
        for eps in EPSILONS:
            det = CNNDetector(
                CNNDetectorConfig(
                    epochs=8,
                    biased_epsilon=eps,
                    biased_epochs=6,
                    width=16,
                )
            )
            result = evaluate_detector(
                det, b3, rng=np.random.default_rng(17), keep_scores=True
            )
            nhs_scores = result.scores[b3.test.labels == 0]
            series[eps] = {
                "recall": result.accuracy,
                "fa": result.false_alarms,
                "nhs_mean_score": float(nhs_scores.mean()),
            }
            rows.append(
                {
                    "epsilon": eps,
                    "accuracy_%": round(100 * result.accuracy, 1),
                    "false_alarms": result.false_alarms,
                    "nhs_mean_score": round(float(nhs_scores.mean()), 3),
                }
            )
        return rows, series

    rows, series = run_once(benchmark, run)
    text = write_table(
        rows, out_dir / "fig4_biased.md", title="Fig 4: biased learning sweep (B3)"
    )
    print("\n" + text)

    lo, hi = series[0.0], series[max(EPSILONS)]
    # epsilon pushes NHS scores up...
    assert hi["nhs_mean_score"] > lo["nhs_mean_score"]
    # ...which cannot reduce recall and cannot reduce false alarms
    assert hi["recall"] >= lo["recall"] - 1e-9
    assert hi["fa"] >= lo["fa"]

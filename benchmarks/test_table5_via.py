"""Table V — the via-layer extension benchmark.

Runs pattern matching, the CCAS SVM and the CNN on the via benchmark
(``BV``).  The via layer's failure boundary is *size x neighborhood
support* rather than spacing, which the later literature (ICCAD-2020-style
via benchmarks) reports as harder for the classic detectors.

Shape checks: learned detectors still rank well above chance; the CNN's
ranking quality leads or matches the shallow detector's, and pattern
matching cannot dominate a layer whose hotspots are context-driven.
"""

import numpy as np

from .conftest import run_once


def test_table5_via_benchmark(benchmark, out_dir):
    from repro.bench import write_table
    from repro.bench.workloads import bench_scale, cache_dir
    from repro.core.evaluation import evaluate_detector
    from repro.core.registry import create
    from repro.data import make_via_benchmark

    bv = make_via_benchmark(scale=bench_scale(), cache_dir=cache_dir())

    def run():
        rows = []
        aucs = {}
        for name in ("pattern-fuzzy", "svm-ccas", "cnn-dct"):
            det = create(name)
            result = evaluate_detector(det, bv, rng=np.random.default_rng(61))
            auc = result.auc if result.auc is not None else 0.5
            aucs[name] = auc
            rows.append(
                {
                    "detector": name,
                    "accuracy_%": round(100 * result.accuracy, 1),
                    "false_alarms": result.false_alarms,
                    "auc": round(auc, 3),
                    "odst_s": round(result.odst_seconds, 1),
                }
            )
        return rows, aucs

    rows, aucs = run_once(benchmark, run)
    text = write_table(
        rows,
        out_dir / "table5_via.md",
        title=f"Table V: via layer ({bv.test.summary()})",
    )
    print("\n" + text)

    assert aucs["svm-ccas"] > 0.6
    assert aucs["cnn-dct"] > 0.6
    assert aucs["cnn-dct"] >= aucs["pattern-fuzzy"] - 0.02
    assert aucs["cnn-dct"] >= aucs["svm-ccas"] - 0.08

"""Runtime engine — full-chip scan throughput and dedup savings.

The deployment story behind Fig. 5: the per-clip gap between simulation
and learned detectors only matters if the scan path can keep the
detector fed.  This bench scans a replicated routed block (the
repeated-cell structure real chips have) three ways:

- ``naive``     — the historical score-everything sweep (no dedup),
- ``dedup``     — the engine's content-hash cache,
- ``cascade``   — dedup plus the pattern-match -> prefilter -> CNN stack.

Shape checks: all paths flag identical windows; dedup scores >= 2x fewer
windows than the naive sweep on a tiled layout; the cascade resolves part
of the residue before the CNN stage.  Windows/s and the per-path ratios
are recorded alongside the Fig. 5 table.
"""

import numpy as np

from .conftest import run_once


def _replicated_block(rng, cell_nm=2048, nx=3, ny=3):
    from repro.data import (
        RoutedBlockConfig,
        replicate_block,
        synthesize_routed_block,
    )
    from repro.geometry import Rect

    cell = Rect(0, 0, cell_nm, cell_nm)
    layer, _seeded = synthesize_routed_block(
        rng, cell, RoutedBlockConfig(n_marginal=2, marginal_len_nm=400)
    )
    tiled = replicate_block(layer, cell, nx=nx, ny=ny)
    return tiled, Rect(0, 0, nx * cell_nm, ny * cell_nm)


def test_runtime_scan_dedup_and_cascade(benchmark, suite, out_dir):
    from repro.bench import write_table
    from repro.core import scan_layer
    from repro.core.registry import create
    from repro.runtime import CascadeDetector, ScanEngine

    b1 = [b for b in suite if b.name == "B1"][0]
    rng = np.random.default_rng(17)
    layer, region = _replicated_block(rng)

    cnn = create("cnn-dct")
    cnn.fit(b1.train, rng=rng)
    matcher = create("pattern-fuzzy")
    matcher.fit(b1.train, rng=rng)
    prefilter = create("logistic-density")
    prefilter.fit(b1.train, rng=rng)

    def run():
        reports = {}
        naive = scan_layer(cnn, layer, region)
        reports["naive"] = naive

        reports["dedup"] = ScanEngine(cnn).scan(layer, region)

        cascade = CascadeDetector(
            primary=cnn, matcher=matcher, prefilter=prefilter
        )
        reports["cascade"] = ScanEngine(cascade).scan(layer, region)
        return reports

    reports = run_once(benchmark, run)
    naive = reports["naive"]

    rows = []
    for name in ("naive", "dedup", "cascade"):
        rep = reports[name]
        row = {
            "path": name,
            "windows": len(rep.centers),
            "flagged": rep.n_flagged,
        }
        if name == "naive":
            row.update(
                {"cnn_scored": len(rep.centers), "dedup_ratio": "0%", "windows_per_s": "-"}
            )
        else:
            cnn_scored = (
                rep.cascade_stats.primary_scored
                if rep.cascade_stats is not None
                else rep.n_scored
            )
            row.update(
                {
                    "cnn_scored": cnn_scored,
                    "dedup_ratio": f"{100 * rep.dedup_ratio:.0f}%",
                    "windows_per_s": round(rep.windows_per_s, 1),
                }
            )
        rows.append(row)
    text = write_table(
        rows,
        out_dir / "runtime_scan.md",
        title="Runtime engine: full-chip scan savings",
    )
    print("\n" + text)

    # identical flagged windows on every path
    for name in ("dedup", "cascade"):
        rep = reports[name]
        assert rep.centers == naive.centers, name
        assert np.array_equal(rep.flagged, naive.flagged), name

    # the tiled layout makes dedup cut CNN scorings by >= 2x
    dedup = reports["dedup"]
    assert len(naive.centers) >= 2 * dedup.n_scored
    assert dedup.dedup_ratio >= 0.5

    # the cascade sends no more windows to the CNN than dedup alone
    cascade = reports["cascade"]
    assert cascade.cascade_stats.primary_scored <= dedup.n_scored

"""Runtime engine — full-chip scan throughput and dedup savings.

The deployment story behind Fig. 5: the per-clip gap between simulation
and learned detectors only matters if the scan path can keep the
detector fed.  This bench scans a replicated routed block (the
repeated-cell structure real chips have) three ways:

- ``naive``     — the historical score-everything sweep (no dedup),
- ``dedup``     — the engine's content-hash cache,
- ``cascade``   — dedup plus the pattern-match -> prefilter -> CNN stack.

Shape checks: all paths flag identical windows; dedup scores >= 2x fewer
windows than the naive sweep on a tiled layout; the cascade resolves part
of the residue before the CNN stage.  Windows/s and the per-path ratios
are recorded alongside the Fig. 5 table.

``test_raster_plane_speedup`` then pits the raster-plane fast path
against the per-clip reference path (dedup off on both, so rasterize +
feature + forward cost is what's measured) and records windows/s and the
speedup ratios to ``BENCH_scan.json`` at the repo root.
"""

import json
import os
from pathlib import Path

import numpy as np

from .conftest import run_once

#: minimum cnn-dct raster speedup for the fused float backend over the
#: layers backend (same scan, same flags).  The local target is 5x; CI
#: runs a conservative 3x floor (shared runners, REPRO_BENCH_SCALE) via
#: the env override.
FUSED_MIN_SPEEDUP = float(os.environ.get("REPRO_FUSED_MIN_SPEEDUP", "3.0"))
#: minimum speedup for the int8 backend — the row that closes the
#: 11x-vs-1.7x gap, so its local floor is the full 5x
INT8_MIN_SPEEDUP = float(os.environ.get("REPRO_INT8_MIN_SPEEDUP", "5.0"))


def _replicated_block(rng, cell_nm=2048, nx=3, ny=3):
    from repro.data import (
        RoutedBlockConfig,
        replicate_block,
        synthesize_routed_block,
    )
    from repro.geometry import Rect

    cell = Rect(0, 0, cell_nm, cell_nm)
    layer, _seeded = synthesize_routed_block(
        rng, cell, RoutedBlockConfig(n_marginal=2, marginal_len_nm=400)
    )
    tiled = replicate_block(layer, cell, nx=nx, ny=ny)
    return tiled, Rect(0, 0, nx * cell_nm, ny * cell_nm)


def test_runtime_scan_dedup_and_cascade(benchmark, suite, out_dir):
    from repro.bench import write_table
    from repro.core import scan_layer
    from repro.core.registry import create
    from repro.runtime import CascadeDetector, ScanEngine

    b1 = [b for b in suite if b.name == "B1"][0]
    rng = np.random.default_rng(17)
    layer, region = _replicated_block(rng)

    cnn = create("cnn-dct")
    cnn.fit(b1.train, rng=rng)
    matcher = create("pattern-fuzzy")
    matcher.fit(b1.train, rng=rng)
    prefilter = create("logistic-density")
    prefilter.fit(b1.train, rng=rng)

    def run():
        reports = {}
        naive = scan_layer(cnn, layer, region)
        reports["naive"] = naive

        # pinned to the per-clip reference path: this bench documents the
        # dedup/cascade savings, and its byte-equality assertions are part
        # of the clip path's contract
        reports["dedup"] = ScanEngine(cnn, raster_plane=False).scan(
            layer, region
        )

        cascade = CascadeDetector(
            primary=cnn, matcher=matcher, prefilter=prefilter
        )
        reports["cascade"] = ScanEngine(cascade, raster_plane=False).scan(
            layer, region
        )
        return reports

    reports = run_once(benchmark, run)
    naive = reports["naive"]

    rows = []
    for name in ("naive", "dedup", "cascade"):
        rep = reports[name]
        row = {
            "path": name,
            "windows": len(rep.centers),
            "flagged": rep.n_flagged,
        }
        if name == "naive":
            row.update(
                {"cnn_scored": len(rep.centers), "dedup_ratio": "0%", "windows_per_s": "-"}
            )
        else:
            cnn_scored = (
                rep.cascade_stats.primary_scored
                if rep.cascade_stats is not None
                else rep.n_scored
            )
            row.update(
                {
                    "cnn_scored": cnn_scored,
                    "dedup_ratio": f"{100 * rep.dedup_ratio:.0f}%",
                    "windows_per_s": round(rep.windows_per_s, 1),
                }
            )
        rows.append(row)
    text = write_table(
        rows,
        out_dir / "runtime_scan.md",
        title="Runtime engine: full-chip scan savings",
    )
    print("\n" + text)

    # dedup is a pure optimization: byte-identical to the naive sweep
    dedup = reports["dedup"]
    assert dedup.centers == naive.centers
    assert np.array_equal(dedup.flagged, naive.flagged)

    # The cascade's prefilter may resolve a window cold that the bare CNN
    # scores marginally hot, so flags can differ -- but only on windows a
    # cheap stage resolved (those carry the cheap stage's score, not the
    # CNN's), and only on a small fraction of the layer.
    cascade = reports["cascade"]
    assert cascade.centers == naive.centers
    mismatch = cascade.flagged != naive.flagged
    same_score = np.isclose(cascade.scores, naive.scores, atol=1e-12)
    assert not np.any(mismatch & same_score)
    assert mismatch.mean() <= 0.1

    # the tiled layout makes dedup cut CNN scorings by >= 2x
    assert len(naive.centers) >= 2 * dedup.n_scored
    assert dedup.dedup_ratio >= 0.5

    # the cascade sends no more windows to the CNN than dedup alone
    assert cascade.cascade_stats.primary_scored <= dedup.n_scored


def test_raster_plane_speedup(benchmark, suite, out_dir):
    """Raster-plane vs per-clip scan: identical flags, higher windows/s.

    Dedup is off on both sides so the comparison measures the real
    per-window work (rasterize + features + forward), not cache luck.
    The prefilter row is the deployment-honest one — in a cascade the
    cheap detector sees *every* window — and it must clear 3x.  The CNN
    row is forward-dominated, so the bar there is only "never slower".

    The raster arms (layers/fused/fused-int8) are scanned in
    interleaved rounds and their speedup gates use the median
    *per-round paired ratio* against the same-round layers scan — host
    throughput drift moves both sides of a pair together and cancels.
    All rows land in ``BENCH_scan.json`` at the repo root.
    """
    from repro.bench import write_table
    from repro.core.registry import create
    from repro.runtime import ScanEngine

    b1 = [b for b in suite if b.name == "B1"][0]
    rng = np.random.default_rng(17)
    layer, region = _replicated_block(rng)

    detectors = {}
    prefilter = create("logistic-density")
    prefilter.fit(b1.train, rng=rng)
    detectors["logistic-density"] = prefilter
    cnn = create("cnn-dct")
    cnn.fit(b1.train, rng=rng)
    detectors["cnn-dct"] = cnn

    #: raster arms, interleaved round-robin below.  Single-shot raster
    #: scans swing ~±15% with the host's multi-second throughput drift
    #: (thermal clocks, noisy neighbours); scanning every arm once per
    #: round puts all arms under the same drift, so the per-round
    #: paired ratio cancels it and the speedup gates measure the
    #: backends, not the weather.
    ARMS = [
        ("logistic-density", "layers"),
        ("cnn-dct", "layers"),
        ("cnn-dct", "fused"),
        ("cnn-dct", "fused-int8"),
    ]
    ROUNDS = 5

    def run():
        clip_reports = {}
        for name, det in detectors.items():
            clip_reports[name] = ScanEngine(
                det, dedup=False, raster_plane=False
            ).scan(layer, region, keep_clips=False)
        # one engine per arm, reused across rounds: a fresh engine would
        # refault its plane-batch buffers (~10MB) every scan, a fixed
        # cost the short fused/int8 scans feel far more than the slow
        # layers baseline
        engines = {
            (name, backend): ScanEngine(
                detectors[name], dedup=False, raster_plane=True,
                infer_backend=(
                    None if name == "logistic-density" else backend
                ),
            )
            for name, backend in ARMS
        }
        def arm_scan(arm):
            name, backend = arm
            if name == "cnn-dct":
                # the cnn arms share one detector, so each scan
                # re-applies its arm's backend ("layers" included)
                cnn.set_backend(backend)
            return engines[arm].scan(layer, region, keep_clips=False)
        for arm in ARMS:
            arm_scan(arm)  # warmup: plan compile + calibration + buffers
        rounds = {arm: [] for arm in ARMS}
        for _ in range(ROUNDS):
            for arm in ARMS:
                rounds[arm].append(arm_scan(arm))
        cnn.set_backend("layers")
        return clip_reports, rounds

    clip_reports, rounds = run_once(benchmark, run)

    def median_report(arm):
        # flags/scores are deterministic across repeats; only the
        # throughput varies, so the median-rate report IS the scan
        reps = sorted(rounds[arm], key=lambda r: r.windows_per_s)
        return reps[len(reps) // 2]

    def paired_speedup(arm):
        # median over rounds of (arm rate / same-round layers rate)
        base = rounds[("cnn-dct", "layers")]
        ratios = sorted(
            rep.windows_per_s / b.windows_per_s
            for rep, b in zip(rounds[arm], base)
        )
        return ratios[len(ratios) // 2]

    results = {
        name: (clip_reports[name], median_report((name, "layers")))
        for name in detectors
    }
    fused = {
        backend: median_report(("cnn-dct", backend))
        for backend in ("fused", "fused-int8")
    }

    rows = []
    record = {
        "workload": {
            "cell_nm": 2048,
            "nx": 3,
            "ny": 3,
            "window_nm": 768,
            "step_nm": 256,
            "windows": None,
            "dedup": False,
        },
        "results": [],
    }
    for name, (clip, rast) in results.items():
        assert clip.scan_path == "clip" and rast.scan_path == "raster"
        # the fast path must be an optimization, not a different detector
        assert rast.centers == clip.centers, name
        assert np.array_equal(rast.flagged, clip.flagged), name
        np.testing.assert_allclose(
            rast.scores, clip.scores, atol=1e-9, err_msg=name
        )
        speedup = rast.windows_per_s / clip.windows_per_s
        record["workload"]["windows"] = clip.n_windows
        record["results"].append(
            {
                "detector": name,
                "backend": "layers",
                "windows": clip.n_windows,
                "clip_windows_per_s": round(clip.windows_per_s, 1),
                "raster_windows_per_s": round(rast.windows_per_s, 1),
                "speedup": round(speedup, 2),
            }
        )
        rows.append(
            {
                "detector": name,
                "backend": "layers",
                "clip_w/s": round(clip.windows_per_s, 1),
                "raster_w/s": round(rast.windows_per_s, 1),
                "speedup": f"{speedup:.2f}x",
            }
        )

    # fused-backend rows: same raster workload, speedup vs the layers
    # raster row (the number the 11x-vs-1.7x gap is measured against)
    base = results["cnn-dct"][1]
    for backend, rep in fused.items():
        assert rep.scan_path == "raster", backend
        assert rep.centers == base.centers, backend
        if backend == "fused":
            # float64 fused path is the same function as the layers
            # forward: flags byte-identical, scores within parity noise
            assert np.array_equal(rep.flagged, base.flagged), backend
            np.testing.assert_allclose(
                rep.scores, base.scores, atol=1e-9, err_msg=backend
            )
        else:
            # int8 is tolerance-bounded: probabilities may move within
            # the quantization budget (compile_plan's max_delta_proba
            # default), so a flag may flip only on a window whose float
            # probability already sits within that budget of the flag
            # threshold — everywhere else flags must agree
            np.testing.assert_allclose(
                rep.scores, base.scores, atol=0.03, err_msg=backend
            )
            flips = np.flatnonzero(
                np.asarray(rep.flagged) != np.asarray(base.flagged)
            )
            margin = np.abs(
                np.asarray(base.scores)[flips] - detectors["cnn-dct"].threshold
            )
            assert (margin <= 0.03).all(), (backend, len(flips), margin.max())
        speedup = paired_speedup(("cnn-dct", backend))
        record["results"].append(
            {
                "detector": "cnn-dct",
                "backend": backend,
                "windows": rep.n_windows,
                "clip_windows_per_s": None,
                "raster_windows_per_s": round(rep.windows_per_s, 1),
                "speedup": round(speedup, 2),
            }
        )
        rows.append(
            {
                "detector": "cnn-dct",
                "backend": backend,
                "clip_w/s": "-",
                "raster_w/s": round(rep.windows_per_s, 1),
                "speedup": f"{speedup:.2f}x",
            }
        )

    bench_json = Path(__file__).resolve().parents[1] / "BENCH_scan.json"
    bench_json.write_text(json.dumps(record, indent=2) + "\n")
    text = write_table(
        rows,
        out_dir / "raster_plane_scan.md",
        title="Raster-plane scan path: windows/s vs the per-clip path",
    )
    print("\n" + text)

    by_key = {
        (r["detector"], r["backend"]): r for r in record["results"]
    }
    # the always-on prefilter stage gets the full batching win
    assert by_key[("logistic-density", "layers")]["speedup"] >= 3.0
    # the CNN path is forward-dominated; batching must still never lose
    assert by_key[("cnn-dct", "layers")]["speedup"] >= 1.0
    # the fused backends are where the CNN row's speedup comes from
    assert by_key[("cnn-dct", "fused")]["speedup"] >= FUSED_MIN_SPEEDUP
    assert by_key[("cnn-dct", "fused-int8")]["speedup"] >= INT8_MIN_SPEEDUP

"""The stable public surface of the library, in one flat namespace.

``import repro.api as api`` is the supported way to consume the library
from examples, notebooks, and downstream tools:

* **data** — :func:`make_benchmark` / :func:`make_iccad2012_suite` build
  the synthetic ICCAD-2012-style benchmarks,
* **detectors** — :func:`create` instantiates any registered detector by
  name (:func:`available` lists them); :func:`evaluate_detector` runs
  the contest protocol,
* **scanning** — :class:`ScanEngine` configured through
  :class:`EngineConfig` (grouped sub-configs, including
  :class:`ObservabilityConfig` for tracing / metrics / progress),
  blocking :meth:`~ScanEngine.scan` or a background
  :class:`ScanSession` via :meth:`~ScanEngine.start`, results as
  :class:`ScanReport` (JSON-serializable wire artifact),
* **chip scale-out** — :func:`scan_chip` routes monolithic, sharded,
  and incremental scans through one code path, driven by the
  :class:`ChipScanConfig` group; :class:`ShardPlanner` /
  :class:`ShardPlan` / :func:`merge_reports` expose the plan-execute-
  merge pipeline for callers orchestrating shards themselves,
* **service** — the queued scan-as-a-service layer
  (:mod:`repro.service`): :class:`JobManager` over the storage ports,
  :class:`WorkerFleet` executing jobs through the engine,
  :func:`serve` / :class:`ScanService` for the stdlib HTTP API,
  :class:`ServiceClient` + :func:`encode_job_request` for callers, and
  :func:`canonical_report_json` as the determinism contract between a
  served scan and a direct one.

Anything deeper — :mod:`repro.runtime.engine` internals especially — is
implementation detail and may change without notice; the project lint
rules ``no-deep-runtime-import`` / ``no-deep-service-import`` enforce
exactly that boundary.
"""

from __future__ import annotations

from .core import (
    Detector,
    EvalResult,
    available,
    create,
    evaluate_detector,
    evaluate_on_suite,
    scan_layer,
)
from .data import (
    Benchmark,
    ClipDataset,
    make_benchmark,
    make_iccad2012_suite,
)
from .geometry import Clip, Layer, Layout, Polygon, Rect, extract_clip
from .litho import HotspotOracle
from .runtime import (
    BatchConfig,
    CascadeDetector,
    CheckpointConfig,
    ChipScanConfig,
    EngineConfig,
    ObservabilityConfig,
    RasterConfig,
    ScanEngine,
    ScanReport,
    ScanSession,
    ScoreCache,
    ShardPlan,
    ShardPlanner,
    ShardRunner,
    SupervisionConfig,
    merge_reports,
    scan_chip,
)
from .service import (
    JobManager,
    JobRecord,
    JobState,
    ScanService,
    ServiceClient,
    WorkerFleet,
    canonical_report_json,
    encode_job_request,
    serve,
)

__all__ = [
    # data
    "Benchmark",
    "ClipDataset",
    "make_benchmark",
    "make_iccad2012_suite",
    # geometry
    "Rect",
    "Polygon",
    "Layer",
    "Layout",
    "Clip",
    "extract_clip",
    # detectors
    "Detector",
    "create",
    "available",
    "evaluate_detector",
    "evaluate_on_suite",
    "EvalResult",
    "CascadeDetector",
    "HotspotOracle",
    # scanning
    "ScanEngine",
    "ScanSession",
    "ScanReport",
    "EngineConfig",
    "BatchConfig",
    "RasterConfig",
    "SupervisionConfig",
    "CheckpointConfig",
    "ObservabilityConfig",
    "ChipScanConfig",
    "ScoreCache",
    "scan_layer",
    # chip scale-out
    "scan_chip",
    "ShardPlanner",
    "ShardPlan",
    "ShardRunner",
    "merge_reports",
    # service
    "JobManager",
    "WorkerFleet",
    "JobRecord",
    "JobState",
    "ScanService",
    "ServiceClient",
    "serve",
    "encode_job_request",
    "canonical_report_json",
]

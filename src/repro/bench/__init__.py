"""Benchmark harness: canonical workloads, run matrix, table formatting."""

from .harness import pivot_metric, results_to_rows, run_matrix
from .tables import format_table, write_table
from .workloads import (
    DEFAULT_SEED,
    bench_scale,
    cache_dir,
    get_benchmark,
    get_suite,
    results_dir,
)

__all__ = [
    "run_matrix",
    "results_to_rows",
    "pivot_metric",
    "format_table",
    "write_table",
    "get_suite",
    "get_benchmark",
    "bench_scale",
    "cache_dir",
    "results_dir",
    "DEFAULT_SEED",
]

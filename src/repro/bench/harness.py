"""Bench harness: run detectors over benchmarks into table rows."""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.detector import Detector
from ..core.evaluation import EvalResult, evaluate_detector
from ..data.dataset import Benchmark


def run_matrix(
    detector_factories: Dict[str, Callable[[], Detector]],
    suite: Sequence[Benchmark],
    seed: int = 0,
) -> List[EvalResult]:
    """Evaluate each named detector on each benchmark (fresh instances)."""
    results: List[EvalResult] = []
    for det_name, factory in detector_factories.items():
        for i, benchmark in enumerate(suite):
            detector = factory()
            # stable per-(detector, benchmark) seed: crc32, not hash(),
            # because str hashing is randomized per process
            rng = np.random.default_rng(
                seed + 31 * i + zlib.crc32(det_name.encode()) % 1000
            )
            result = evaluate_detector(detector, benchmark, rng=rng)
            results.append(result)
    return results


def results_to_rows(results: Sequence[EvalResult]) -> List[Dict[str, object]]:
    return [r.row() for r in results]


def pivot_metric(
    results: Sequence[EvalResult],
    metric: str = "accuracy",
    fmt: Optional[str] = "{:.1f}",
) -> List[Dict[str, object]]:
    """Rows = detectors, columns = benchmarks, values = one metric.

    ``metric`` is any :class:`EvalResult` attribute (``accuracy``,
    ``false_alarms``, ``odst_seconds``, ``auc``).
    """
    benchmarks = sorted({r.benchmark for r in results})
    detectors = list(dict.fromkeys(r.detector for r in results))
    table: List[Dict[str, object]] = []
    for det in detectors:
        row: Dict[str, object] = {"detector": det}
        for b in benchmarks:
            match = [r for r in results if r.detector == det and r.benchmark == b]
            if match:
                value = getattr(match[0], metric)
                if metric == "accuracy":
                    value = 100 * value
                if fmt and value is not None:
                    value = fmt.format(value)
                row[b] = value
            else:
                row[b] = ""
        table.append(row)
    return table

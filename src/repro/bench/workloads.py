"""Canonical bench workloads.

Every table/figure bench pulls its data through :func:`get_suite`, which
generates the 5-benchmark suite once per (seed, scale) and caches it under
the repository-local bench cache directory.  ``REPRO_BENCH_SCALE`` scales
clip counts (default 0.35 keeps the full bench run tractable on one CPU;
1.0 regenerates the full-size suite).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional

from ..data.benchmarks import make_iccad2012_suite
from ..data.dataset import Benchmark

DEFAULT_SEED = 2012


def bench_scale() -> float:
    """The suite scale factor, from ``REPRO_BENCH_SCALE`` (default 0.35)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))


def cache_dir() -> Path:
    """Dataset cache directory (override with ``REPRO_CACHE_DIR``)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return Path(root)
    return Path(__file__).resolve().parents[3] / ".bench_cache"


def results_dir() -> Path:
    """Where benches write their regenerated tables."""
    root = os.environ.get("REPRO_RESULTS_DIR")
    if root:
        return Path(root)
    return Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def get_suite(
    scale: Optional[float] = None, seed: int = DEFAULT_SEED
) -> List[Benchmark]:
    """The labeled 5-benchmark suite at the bench scale, disk-cached."""
    scale = bench_scale() if scale is None else scale
    return make_iccad2012_suite(seed=seed, scale=scale, cache_dir=cache_dir())


def get_benchmark(name: str, scale: Optional[float] = None) -> Benchmark:
    """One benchmark of the suite by name ('B1'..'B5')."""
    for benchmark in get_suite(scale=scale):
        if benchmark.name == name:
            return benchmark
    raise KeyError(f"unknown benchmark {name!r}")

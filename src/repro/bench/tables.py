"""Contest-style table formatting.

Benches produce lists of row dicts; this module renders them as aligned
markdown so the regenerated tables can be eyeballed against the paper's
and pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render rows as a markdown table (columns default to first row's keys)."""
    if not rows:
        return f"### {title}\n(no rows)\n" if title else "(no rows)\n"
    cols = list(columns) if columns else list(rows[0].keys())
    str_rows = [
        [("" if row.get(c) is None else str(row.get(c))) for c in cols]
        for row in rows
    ]
    widths = [
        max(len(c), *(len(r[i]) for r in str_rows)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(c.ljust(w) for c, w in zip(cols, widths)) + " |")
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for r in str_rows:
        lines.append("| " + " | ".join(v.ljust(w) for v, w in zip(r, widths)) + " |")
    lines.append("")
    return "\n".join(lines)


def write_table(
    rows: Sequence[Dict[str, object]],
    path: Union[str, Path],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Format, persist, and return the table text."""
    text = format_table(rows, columns=columns, title=title)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return text

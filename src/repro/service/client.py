"""A small urllib client for the scan service HTTP API.

Used by ``repro submit``, the load generator, and the CI smoke — and a
reasonable starting point for any external caller.  Only the standard
library is involved; a :class:`ServiceError` carries the HTTP status,
the server's ``error`` message, and any ``Retry-After`` hint for every
non-2xx response.

The client is a *polite* one: idempotent calls (submit, status, result,
metrics) retry automatically on 429 (rate limited) and 503 (load shed /
draining) with capped, jittered exponential backoff that never retries
sooner than the server's ``Retry-After`` asked, and :meth:`wait` polls
with the same growing jittered schedule instead of hammering a fixed
interval.  Retrying a submit is safe against *this* service because a
refused submission (429/503) was never admitted — nothing was enqueued.
``self.stats`` counts the retries so the load generator can report
shed/throttle behaviour.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, Optional

from .jobs import TERMINAL_STATES, JobState

#: HTTP statuses that mean "back off and try the same request again"
RETRYABLE_STATUSES = frozenset({429, 503})


class ServiceError(RuntimeError):
    """A non-2xx response from the service.

    ``retry_after_s`` is the server's ``Retry-After`` hint (None when
    the response carried none).
    """

    def __init__(
        self,
        status: int,
        message: str,
        retry_after_s: Optional[float] = None,
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after_s = retry_after_s


class ServiceClient:
    """Talk to one scan service at ``base_url`` (e.g. http://host:8787).

    Parameters
    ----------
    base_url, timeout_s, client_id:
        Where to talk, the per-request socket timeout, and the
        ``X-Client`` identity the rate limiter keys on.
    max_retries:
        Retries (beyond the first try) for 429/503 responses on
        idempotent calls; 0 disables retrying.
    backoff_s / max_backoff_s:
        Base and cap of the jittered exponential retry delay; the
        server's ``Retry-After`` raises (never lowers) each delay.
    max_poll_s:
        Ceiling for :meth:`wait`'s growing poll interval.
    rng / sleep:
        Injection seams for deterministic tests: the jitter source and
        the sleep function.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 30.0,
        client_id: Optional[str] = None,
        *,
        max_retries: int = 4,
        backoff_s: float = 0.1,
        max_backoff_s: float = 2.0,
        max_poll_s: float = 2.0,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_s <= 0 or max_backoff_s <= 0 or max_poll_s <= 0:
            raise ValueError("backoff/poll intervals must be positive")
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.client_id = client_id
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self.max_poll_s = max_poll_s
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        #: retry accounting, surfaced by the load generator
        self.stats: Dict[str, int] = {"retries_429": 0, "retries_503": 0}

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request_once(
        self, method: str, path: str, body: Optional[Dict[str, object]] = None
    ) -> str:
        data = (
            None
            if body is None
            else json.dumps(body, sort_keys=True).encode("utf-8")
        )
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method
        )
        request.add_header("Content-Type", "application/json")
        if self.client_id:
            request.add_header("X-Client", self.client_id)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as rsp:
                return rsp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(raw).get("error", raw)
            except json.JSONDecodeError:
                message = raw
            retry_after = exc.headers.get("Retry-After")
            try:
                retry_after_s = (
                    None if retry_after is None else float(retry_after)
                )
            except ValueError:
                retry_after_s = None
            raise ServiceError(exc.code, message, retry_after_s) from exc

    def _retry_delay(self, attempt: int, error: ServiceError) -> float:
        """Jittered capped exponential, floored by the server's hint."""
        backoff = min(
            self.max_backoff_s, self.backoff_s * (2.0 ** attempt)
        )
        delay = backoff * (0.5 + self._rng.random())
        if error.retry_after_s is not None:
            delay = max(delay, error.retry_after_s)
        return delay

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
        retry: bool = False,
    ) -> str:
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body)
            except ServiceError as exc:
                if (
                    not retry
                    or exc.status not in RETRYABLE_STATUSES
                    or attempt >= self.max_retries
                ):
                    raise
                self.stats[f"retries_{exc.status}"] = (
                    self.stats.get(f"retries_{exc.status}", 0) + 1
                )
                self._sleep(self._retry_delay(attempt, exc))
                attempt += 1

    def _json(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
        retry: bool = False,
    ) -> Dict[str, object]:
        return json.loads(self._request(method, path, body, retry=retry))

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def submit(self, request: Dict[str, object]) -> Dict[str, object]:
        """POST a job request (see :func:`~repro.service.wire.encode_job_request`).

        Retries on 429/503 honouring ``Retry-After`` — safe because a
        refused submission was never admitted.
        """
        return self._json("POST", "/jobs", request, retry=True)

    def status(self, job_id: str) -> Dict[str, object]:
        return self._json("GET", f"/jobs/{job_id}", retry=True)

    def result(self, job_id: str) -> str:
        """The verbatim ``ScanReport.to_json()`` document."""
        return self._request("GET", f"/jobs/{job_id}/result", retry=True)

    def metrics(self, job_id: str) -> Dict[str, object]:
        """The job's scan metrics snapshot."""
        return self._json("GET", f"/jobs/{job_id}/metrics", retry=True)

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._json("DELETE", f"/jobs/{job_id}")

    def drain(self) -> Dict[str, object]:
        """Ask the service to begin a graceful drain (``DELETE /drain``)."""
        return self._json("DELETE", "/drain")

    def healthz(self) -> Dict[str, object]:
        return self._json("GET", "/healthz")

    def readyz(self) -> Dict[str, object]:
        """The readiness document; raises :class:`ServiceError` (503)
        while the service is draining or at its queue cap."""
        return self._json("GET", "/readyz")

    def service_metrics(self) -> str:
        """The Prometheus text exposition of the whole service."""
        return self._request("GET", "/metrics")

    def wait(
        self,
        job_id: str,
        timeout_s: float = 300.0,
        poll_s: float = 0.05,
    ) -> Dict[str, object]:
        """Poll until the job reaches a terminal state; its final status.

        The poll interval starts at ``poll_s`` and grows 1.5× per probe
        (jittered, capped at ``max_poll_s``) so long jobs don't hammer
        the status route.  Raises :class:`TimeoutError` when the
        deadline passes first and :class:`ServiceError` if the job lands
        anywhere but succeeded.
        """
        deadline = time.monotonic() + timeout_s
        interval = poll_s
        while True:
            status = self.status(job_id)
            state = JobState(status["state"])
            if state in TERMINAL_STATES:
                if state is not JobState.SUCCEEDED:
                    raise ServiceError(
                        409,
                        f"job {job_id} finished {state.value}: "
                        f"{status.get('error') or 'no error recorded'}",
                    )
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {state.value} after {timeout_s}s"
                )
            self._sleep(interval * (0.5 + self._rng.random()))
            interval = min(self.max_poll_s, interval * 1.5)

    def run(
        self,
        request: Dict[str, object],
        timeout_s: float = 300.0,
        poll_s: float = 0.05,
    ) -> str:
        """Submit, wait, and fetch: the blocking one-call convenience."""
        job_id = str(self.submit(request)["job_id"])
        self.wait(job_id, timeout_s=timeout_s, poll_s=poll_s)
        return self.result(job_id)

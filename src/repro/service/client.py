"""A small urllib client for the scan service HTTP API.

Used by ``repro submit``, the load generator, and the CI smoke — and a
reasonable starting point for any external caller.  Only the standard
library is involved; a :class:`ServiceError` carries the HTTP status
plus the server's ``error`` message for every non-2xx response.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Optional

from .jobs import TERMINAL_STATES, JobState


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talk to one scan service at ``base_url`` (e.g. http://host:8787)."""

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 30.0,
        client_id: Optional[str] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.client_id = client_id

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[Dict[str, object]] = None
    ) -> str:
        data = (
            None
            if body is None
            else json.dumps(body, sort_keys=True).encode("utf-8")
        )
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method
        )
        request.add_header("Content-Type", "application/json")
        if self.client_id:
            request.add_header("X-Client", self.client_id)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as rsp:
                return rsp.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(raw).get("error", raw)
            except json.JSONDecodeError:
                message = raw
            raise ServiceError(exc.code, message) from exc

    def _json(
        self, method: str, path: str, body: Optional[Dict[str, object]] = None
    ) -> Dict[str, object]:
        return json.loads(self._request(method, path, body))

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def submit(self, request: Dict[str, object]) -> Dict[str, object]:
        """POST a job request (see :func:`~repro.service.wire.encode_job_request`)."""
        return self._json("POST", "/jobs", request)

    def status(self, job_id: str) -> Dict[str, object]:
        return self._json("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> str:
        """The verbatim ``ScanReport.to_json()`` document."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def metrics(self, job_id: str) -> Dict[str, object]:
        """The job's scan metrics snapshot."""
        return self._json("GET", f"/jobs/{job_id}/metrics")

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._json("DELETE", f"/jobs/{job_id}")

    def healthz(self) -> Dict[str, object]:
        return self._json("GET", "/healthz")

    def service_metrics(self) -> str:
        """The Prometheus text exposition of the whole service."""
        return self._request("GET", "/metrics")

    def wait(
        self, job_id: str, timeout_s: float = 300.0, poll_s: float = 0.1
    ) -> Dict[str, object]:
        """Poll until the job reaches a terminal state; its final status.

        Raises :class:`TimeoutError` when the deadline passes first and
        :class:`ServiceError` if the job lands anywhere but succeeded.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job_id)
            state = JobState(status["state"])
            if state in TERMINAL_STATES:
                if state is not JobState.SUCCEEDED:
                    raise ServiceError(
                        409,
                        f"job {job_id} finished {state.value}: "
                        f"{status.get('error') or 'no error recorded'}",
                    )
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {state.value} after {timeout_s}s"
                )
            time.sleep(poll_s)

    def run(
        self,
        request: Dict[str, object],
        timeout_s: float = 300.0,
        poll_s: float = 0.1,
    ) -> str:
        """Submit, wait, and fetch: the blocking one-call convenience."""
        job_id = str(self.submit(request)["job_id"])
        self.wait(job_id, timeout_s=timeout_s, poll_s=poll_s)
        return self.result(job_id)

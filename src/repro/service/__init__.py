"""Scan-as-a-service: queued job API, worker fleet, result store.

The runtime engine (:mod:`repro.runtime`) is a single-invocation
library: one caller, one :meth:`~repro.runtime.ScanEngine.scan`, one
:class:`~repro.runtime.ScanReport`.  This package turns it into a
multi-tenant *service* — the EPIC-style deployment where many clients
submit layouts and a fleet of workers drains a durable queue:

    submit -> JobQueue -> WorkerFleet -> ResultStore -> fetch

The package is laid out in the **ports and adapters** style:

* **ports** (:mod:`~repro.service.ports`) — :class:`JobQueue`,
  :class:`JobStore`, :class:`ResultStore`, :class:`RateLimiter`:
  abstract seams the service logic is written against,
* **adapters** — in-memory (:mod:`~repro.service.memory`) for tests and
  single-process deployments, file-backed
  (:mod:`~repro.service.filestore`): atomic-write, crash-safe, corrupt
  entries quarantined ``*.quarantined``.  Redis-class backends slot in
  later by implementing the same four ports,
* **service logic** — :class:`JobManager`
  (:mod:`~repro.service.manager`): the submit/status/cancel/result
  lifecycle over a versioned :class:`JobRecord` state machine with
  bounded checkpoint-resume retries; :class:`WorkerFleet`
  (:mod:`~repro.service.fleet`): N worker threads executing jobs
  through the existing :class:`~repro.runtime.ScanEngine` /
  :class:`~repro.runtime.EngineConfig` API,
* **transport** — :class:`ScanService` (:mod:`~repro.service.http`): a
  stdlib ``http.server`` front end (``POST /jobs``, ``GET /jobs/<id>``,
  ``GET /jobs/<id>/result``, ``DELETE /jobs/<id>``, ``GET /metrics``
  Prometheus exposition, ``GET /healthz``) and
  :class:`ServiceClient` (:mod:`~repro.service.client`), the matching
  urllib client used by ``repro submit`` and the load generator.

Everything callers need is re-exported here (and from
:mod:`repro.api`); importing ``repro.service.<submodule>`` directly from
outside the package trips the ``no-deep-service-import`` lint rule.
"""

from .client import ServiceClient, ServiceError
from .fleet import (
    JobCancelled,
    JobDeadlineExceeded,
    JobDrained,
    JobInterrupted,
    LeaseLost,
    WorkerCrashed,
    WorkerFleet,
)
from .filestore import FileJobQueue, FileJobStore, FileResultStore
from .http import ScanService, serve, service_prometheus
from .jobs import (
    ACTIVE_STATES,
    JOB_SCHEMA,
    MAX_ERROR_CHAIN,
    TERMINAL_STATES,
    InvalidTransition,
    JobRecord,
    JobState,
    new_lease_token,
)
from .loadgen import LoadGenerator, LoadReport
from .manager import HeartbeatVerdict, JobManager, LeaseReaper
from .memory import (
    InMemoryJobQueue,
    InMemoryJobStore,
    InMemoryResultStore,
    NullRateLimiter,
    TokenBucketRateLimiter,
)
from .ports import (
    JobNotFound,
    JobQueue,
    JobStore,
    QueueFull,
    RateLimited,
    RateLimiter,
    ResultStore,
    ServiceDraining,
    StoredResult,
)
from .wire import (
    JOB_REQUEST_SCHEMA,
    WireError,
    build_engine_config,
    canonical_report_json,
    decode_layer,
    encode_job_request,
    encode_layer,
    validate_job_request,
)

__all__ = [
    # jobs / state machine
    "JobRecord",
    "JobState",
    "JOB_SCHEMA",
    "MAX_ERROR_CHAIN",
    "ACTIVE_STATES",
    "TERMINAL_STATES",
    "InvalidTransition",
    "new_lease_token",
    # ports
    "JobQueue",
    "JobStore",
    "ResultStore",
    "RateLimiter",
    "StoredResult",
    "JobNotFound",
    "RateLimited",
    "QueueFull",
    "ServiceDraining",
    # adapters
    "InMemoryJobQueue",
    "InMemoryJobStore",
    "InMemoryResultStore",
    "TokenBucketRateLimiter",
    "NullRateLimiter",
    "FileJobQueue",
    "FileJobStore",
    "FileResultStore",
    # service logic
    "JobManager",
    "LeaseReaper",
    "HeartbeatVerdict",
    "WorkerFleet",
    "JobInterrupted",
    "JobCancelled",
    "JobDrained",
    "WorkerCrashed",
    "LeaseLost",
    "JobDeadlineExceeded",
    # transport
    "ScanService",
    "serve",
    "service_prometheus",
    "ServiceClient",
    "ServiceError",
    # wire format
    "JOB_REQUEST_SCHEMA",
    "WireError",
    "encode_layer",
    "decode_layer",
    "encode_job_request",
    "validate_job_request",
    "build_engine_config",
    "canonical_report_json",
    # load generation
    "LoadGenerator",
    "LoadReport",
]

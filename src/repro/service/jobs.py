"""The versioned job record and its state machine.

A job is one scan request moving through the service:

.. code-block:: text

            submit            claim              complete
    (new) --------> QUEUED --------> RUNNING --------------> SUCCEEDED
                      |                 |    \\
                      | cancel          |     \\ fail (attempts left)
                      v                 |      v
                  CANCELLED <-----------+    QUEUED   (retry; the next
                                        |             attempt *resumes*
                                        | fail        from the job's scan
                                        v             checkpoint)
                                     FAILED

Every transition goes through :meth:`JobRecord.transition`, which
enforces the edge set above — an illegal move raises
:class:`InvalidTransition` instead of silently corrupting the record.
Records serialize to a versioned dict (``schema`` =
:data:`JOB_SCHEMA`); a store handing back a record from a newer schema
refuses rather than guessing.

``RUNNING -> QUEUED`` is the preemption/retry edge: a worker crash (or
a fleet restart with the job in flight) re-queues the job, and because
the worker scans with a per-job checkpoint directory, the retry
*resumes* the interrupted scan instead of restarting it (see
:mod:`repro.runtime.checkpoint`).
"""

from __future__ import annotations

import enum
import itertools
import time
import uuid
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Optional, Tuple

#: bump when the JobRecord dict layout changes incompatibly
JOB_SCHEMA = 1


class JobState(str, enum.Enum):
    """Lifecycle states; the value is the wire spelling."""

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: states a job can still make progress from
ACTIVE_STATES: FrozenSet[JobState] = frozenset(
    {JobState.QUEUED, JobState.RUNNING}
)

#: states a job never leaves
TERMINAL_STATES: FrozenSet[JobState] = frozenset(
    {JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED}
)

#: the legal edge set (see the module docstring diagram)
_ALLOWED: Dict[JobState, Tuple[JobState, ...]] = {
    JobState.QUEUED: (JobState.RUNNING, JobState.CANCELLED),
    JobState.RUNNING: (
        JobState.SUCCEEDED,
        JobState.FAILED,
        JobState.CANCELLED,
        JobState.QUEUED,  # preemption / bounded retry
    ),
    JobState.SUCCEEDED: (),
    JobState.FAILED: (),
    JobState.CANCELLED: (),
}

_SEQ = itertools.count()


class InvalidTransition(RuntimeError):
    """A state change outside the legal edge set was attempted."""


def new_job_id() -> str:
    """Opaque, URL-safe job identifier."""
    return uuid.uuid4().hex


@dataclass(frozen=True)
class JobRecord:
    """One job's full durable state — everything a store persists.

    Immutable: transitions return a new record (stores swap atomically).

    ``seq`` orders jobs by submission within one process; stores persist
    it so a recovered fleet replays queued work in the original order.
    ``attempts`` counts claims: 0 until the first worker picks the job
    up, and a value > 1 on a running job means the scan is a
    checkpoint-resumed retry.
    """

    job_id: str
    request: Dict[str, object]
    state: JobState = JobState.QUEUED
    seq: int = field(default_factory=lambda: next(_SEQ))
    attempts: int = 0
    max_attempts: int = 3
    created_at: float = field(default_factory=time.time)
    updated_at: float = field(default_factory=time.time)
    worker: Optional[str] = None
    error: Optional[str] = None
    cancel_requested: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------
    def transition(self, to: JobState, **changes) -> "JobRecord":
        """A copy of this record moved to ``to`` (plus field changes).

        Raises :class:`InvalidTransition` for any edge outside
        :data:`_ALLOWED`; stamps ``updated_at``.
        """
        if to not in _ALLOWED[self.state]:
            raise InvalidTransition(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {to.value}"
            )
        return replace(self, state=to, updated_at=time.time(), **changes)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def retries_left(self) -> int:
        """Claims still available (a first run is not a retry)."""
        return max(0, self.max_attempts - self.attempts)

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The versioned, JSON-ready representation stores persist."""
        return {
            "schema": JOB_SCHEMA,
            "job_id": self.job_id,
            "state": self.state.value,
            "seq": self.seq,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "worker": self.worker,
            "error": self.error,
            "cancel_requested": self.cancel_requested,
            "request": self.request,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "JobRecord":
        """Rebuild a record persisted by :meth:`to_dict`.

        Refuses documents from a different schema — a store migration,
        not a silent reinterpretation, is the correct response.
        """
        schema = payload.get("schema")
        if schema != JOB_SCHEMA:
            raise ValueError(
                f"unsupported JobRecord schema {schema!r} "
                f"(this build reads {JOB_SCHEMA})"
            )
        return cls(
            job_id=str(payload["job_id"]),
            request=dict(payload["request"]),
            state=JobState(payload["state"]),
            seq=int(payload["seq"]),
            attempts=int(payload["attempts"]),
            max_attempts=int(payload["max_attempts"]),
            created_at=float(payload["created_at"]),
            updated_at=float(payload["updated_at"]),
            worker=payload["worker"],
            error=payload["error"],
            cancel_requested=bool(payload["cancel_requested"]),
        )

    def public_dict(self) -> Dict[str, object]:
        """What ``GET /jobs/<id>`` returns: the record minus the request
        payload (which can be megabytes of geometry)."""
        out = self.to_dict()
        del out["request"]
        return out

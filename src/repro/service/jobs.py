"""The versioned job record and its state machine.

A job is one scan request moving through the service:

.. code-block:: text

            submit            claim              complete
    (new) --------> QUEUED --------> RUNNING --------------> SUCCEEDED
                     | |               |  | \\
              cancel | | deadline      |  |  \\ fail (attempts left)
                     v v               |  |   v       or attempt-deadline
            CANCELLED  FAILED <--------+  |  QUEUED   or lease reaped
                 ^                        |           (retry *resumes* from
                 |            exhausted   v           the scan checkpoint)
                 +----------- via reap  QUARANTINED
                              /deadline (poison job: error chain kept)

Every transition goes through :meth:`JobRecord.transition`, which
enforces the edge set above — an illegal move raises
:class:`InvalidTransition` instead of silently corrupting the record.
Records serialize to a versioned dict (``schema`` =
:data:`JOB_SCHEMA`); a store handing back a record from a newer schema
refuses rather than guessing, while schema-1 documents (pre-lease) are
migrated forward in place.

``RUNNING -> QUEUED`` is the preemption/retry edge: a worker crash,
drain, reaped lease, or per-attempt deadline re-queues the job, and
because the worker scans with a per-job checkpoint directory, the retry
*resumes* the interrupted scan instead of restarting it (see
:mod:`repro.runtime.checkpoint`).

``RUNNING -> QUARANTINED`` is the poison-job edge: a job whose every
attempt died a worker-fatal death (crash-looped workers, reaped leases,
deterministic per-attempt timeouts) exhausts ``max_attempts`` and is
parked terminally with its full ``error_chain`` preserved, instead of
silently burning fleet capacity forever.

Leases
------
A claim grants a **lease**: ``lease_token`` (a fencing token unique to
that claim) and ``lease_expires_at`` (wall clock).  The worker renews
the lease from its progress heartbeats; every settle
(complete/fail/release) is conditional on the token still matching, so
a worker that finishes *after* its lease was reaped and re-claimed
cannot double-settle the job.
"""

from __future__ import annotations

import enum
import itertools
import time
import uuid
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Optional, Tuple

#: bump when the JobRecord dict layout changes incompatibly
JOB_SCHEMA = 2

#: longest error chain a record keeps (oldest entries drop first)
MAX_ERROR_CHAIN = 20


class JobState(str, enum.Enum):
    """Lifecycle states; the value is the wire spelling."""

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"
    QUARANTINED = "quarantined"


#: states a job can still make progress from
ACTIVE_STATES: FrozenSet[JobState] = frozenset(
    {JobState.QUEUED, JobState.RUNNING}
)

#: states a job never leaves
TERMINAL_STATES: FrozenSet[JobState] = frozenset(
    {
        JobState.SUCCEEDED,
        JobState.FAILED,
        JobState.CANCELLED,
        JobState.QUARANTINED,
    }
)

#: the legal edge set (see the module docstring diagram)
_ALLOWED: Dict[JobState, Tuple[JobState, ...]] = {
    JobState.QUEUED: (
        JobState.RUNNING,
        JobState.CANCELLED,
        JobState.FAILED,  # job deadline expired while still queued
    ),
    JobState.RUNNING: (
        JobState.SUCCEEDED,
        JobState.FAILED,
        JobState.CANCELLED,
        JobState.QUEUED,  # preemption / bounded retry / reaped lease
        JobState.QUARANTINED,  # poison job: worker-fatal exhaustion
    ),
    JobState.SUCCEEDED: (),
    JobState.FAILED: (),
    JobState.CANCELLED: (),
    JobState.QUARANTINED: (),
}

_SEQ = itertools.count()


class InvalidTransition(RuntimeError):
    """A state change outside the legal edge set was attempted."""


def new_job_id() -> str:
    """Opaque, URL-safe job identifier."""
    return uuid.uuid4().hex


def new_lease_token() -> str:
    """Fencing token minted per claim; settles must present it back."""
    return uuid.uuid4().hex


@dataclass(frozen=True)
class JobRecord:
    """One job's full durable state — everything a store persists.

    Immutable: transitions return a new record (stores swap atomically).

    ``seq`` orders jobs by submission within one process; stores persist
    it so a recovered fleet replays queued work in the original order.
    ``attempts`` counts claims: 0 until the first worker picks the job
    up, and a value > 1 on a running job means the scan is a
    checkpoint-resumed retry.  ``error`` is the latest attempt's failure
    and ``error_chain`` the bounded history of every dead attempt.

    ``deadline_s`` budgets the job's total wall clock from submission
    (queue wait included); ``attempt_deadline_s`` budgets each claim
    from ``attempt_started_at``.  Both are enforced cooperatively at the
    worker's heartbeat boundary and by the lease reaper's sweep.
    """

    job_id: str
    request: Dict[str, object]
    state: JobState = JobState.QUEUED
    seq: int = field(default_factory=lambda: next(_SEQ))
    attempts: int = 0
    max_attempts: int = 3
    created_at: float = field(default_factory=time.time)
    updated_at: float = field(default_factory=time.time)
    worker: Optional[str] = None
    error: Optional[str] = None
    error_chain: Tuple[str, ...] = ()
    cancel_requested: bool = False
    lease_token: Optional[str] = None
    lease_expires_at: Optional[float] = None
    attempt_started_at: Optional[float] = None
    deadline_s: Optional[float] = None
    attempt_deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        for name in ("deadline_s", "attempt_deadline_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive or None")

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------
    def transition(self, to: JobState, **changes) -> "JobRecord":
        """A copy of this record moved to ``to`` (plus field changes).

        Raises :class:`InvalidTransition` for any edge outside
        :data:`_ALLOWED`; stamps ``updated_at``.
        """
        if to not in _ALLOWED[self.state]:
            raise InvalidTransition(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {to.value}"
            )
        return replace(self, state=to, updated_at=time.time(), **changes)

    def chain_error(self, message: str) -> Dict[str, object]:
        """Field changes recording one more dead attempt's error."""
        chain = (self.error_chain + (message,))[-MAX_ERROR_CHAIN:]
        return {"error": message, "error_chain": chain}

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def retries_left(self) -> int:
        """Claims still available (a first run is not a retry)."""
        return max(0, self.max_attempts - self.attempts)

    # ------------------------------------------------------------------
    # lease / deadline clocks
    # ------------------------------------------------------------------
    def lease_expired(self, now: float) -> bool:
        """True when this running job's lease has lapsed at ``now``."""
        return (
            self.state is JobState.RUNNING
            and self.lease_expires_at is not None
            and now >= self.lease_expires_at
        )

    def job_deadline_exceeded(self, now: float) -> bool:
        """True when the whole-job wall-clock budget is spent."""
        return (
            self.deadline_s is not None
            and now - self.created_at >= self.deadline_s
        )

    def attempt_deadline_exceeded(self, now: float) -> bool:
        """True when the current attempt's wall-clock budget is spent."""
        return (
            self.attempt_deadline_s is not None
            and self.attempt_started_at is not None
            and now - self.attempt_started_at >= self.attempt_deadline_s
        )

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The versioned, JSON-ready representation stores persist."""
        return {
            "schema": JOB_SCHEMA,
            "job_id": self.job_id,
            "state": self.state.value,
            "seq": self.seq,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "worker": self.worker,
            "error": self.error,
            "error_chain": list(self.error_chain),
            "cancel_requested": self.cancel_requested,
            "lease_token": self.lease_token,
            "lease_expires_at": self.lease_expires_at,
            "attempt_started_at": self.attempt_started_at,
            "deadline_s": self.deadline_s,
            "attempt_deadline_s": self.attempt_deadline_s,
            "request": self.request,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "JobRecord":
        """Rebuild a record persisted by :meth:`to_dict`.

        Schema-1 documents (pre-lease/deadline) are migrated forward by
        defaulting the new fields; anything newer than this build's
        :data:`JOB_SCHEMA` is refused — a store migration, not a silent
        reinterpretation, is the correct response.
        """
        schema = payload.get("schema")
        if schema not in (1, JOB_SCHEMA):
            raise ValueError(
                f"unsupported JobRecord schema {schema!r} "
                f"(this build reads 1..{JOB_SCHEMA})"
            )

        def opt_float(key: str) -> Optional[float]:
            value = payload.get(key)
            return None if value is None else float(value)

        return cls(
            job_id=str(payload["job_id"]),
            request=dict(payload["request"]),
            state=JobState(payload["state"]),
            seq=int(payload["seq"]),
            attempts=int(payload["attempts"]),
            max_attempts=int(payload["max_attempts"]),
            created_at=float(payload["created_at"]),
            updated_at=float(payload["updated_at"]),
            worker=payload["worker"],
            error=payload["error"],
            error_chain=tuple(
                str(entry) for entry in payload.get("error_chain", ())
            ),
            cancel_requested=bool(payload["cancel_requested"]),
            lease_token=payload.get("lease_token"),
            lease_expires_at=opt_float("lease_expires_at"),
            attempt_started_at=opt_float("attempt_started_at"),
            deadline_s=opt_float("deadline_s"),
            attempt_deadline_s=opt_float("attempt_deadline_s"),
        )

    def public_dict(self) -> Dict[str, object]:
        """What ``GET /jobs/<id>`` returns: the record minus the request
        payload (megabytes of geometry) and the lease token (a fencing
        capability that only the owning worker may present)."""
        out = self.to_dict()
        del out["request"]
        del out["lease_token"]
        return out

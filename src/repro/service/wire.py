"""The job-request wire format and the canonical report projection.

``POST /jobs`` carries one JSON document — the layout geometry plus the
scan configuration — validated here on the way in and turned back into
engine-native objects by the worker:

.. code-block:: json

    {
      "schema": 1,
      "layer": {"name": "metal1", "polygons": [[[x1, y1, x2, y2], "..."]]},
      "region": [0, 0, 4096, 4096],
      "window_nm": 768,
      "core_nm": 256,
      "step_nm": null,
      "engine": {"workers": 1, "chunk_clips": 256}
    }

A layer serializes as each polygon's normalized rect decomposition —
:class:`~repro.geometry.polygon.Polygon` stores maximal horizontal
slabs, so ``decode_layer(encode_layer(layer))`` rebuilds geometry whose
clip fingerprints (and therefore scan scores) are identical to the
original's.

``engine`` accepts the flat :data:`~repro.runtime.LEGACY_KWARGS` names
restricted to :data:`ALLOWED_ENGINE_KWARGS` — policy knobs a *client*
may choose.  Paths and sinks (cache/checkpoint/trace directories,
progress callables) are service-side resources and are refused at
validation time.

:func:`canonical_report_json` is the determinism contract of the
service: the projection of a :meth:`ScanReport.to_json()
<repro.runtime.ScanReport.to_json>` document onto its reproducible
fields (geometry, scores, flags — not wall time or telemetry).  Two
runs of the same request — direct vs through the service, uninterrupted
vs killed-and-resumed — produce byte-identical canonical documents.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from ..geometry import Layer, Polygon, Rect
from ..runtime import EngineConfig

#: bump when the job-request layout changes incompatibly
JOB_REQUEST_SCHEMA = 1

#: engine knobs a client may set (flat LEGACY_KWARGS names)
ALLOWED_ENGINE_KWARGS: Tuple[str, ...] = (
    "workers",
    "chunk_clips",
    "dedup",
    "max_cache_entries",
    "raster_plane",
    "band_rows",
    "max_plane_pixels",
    "chunk_timeout_s",
    "max_chunk_retries",
    "retry_backoff_s",
    "max_pool_rebuilds",
    "degrade_after_failures",
    "on_invalid_score",
    "checkpoint_every_chunks",
)

#: chip scale-out knobs a client may set (ChipScanConfig policy names);
#: manifest/rescan paths are service-side resources and are refused
ALLOWED_CHIP_KWARGS: Tuple[str, ...] = (
    "shards",
    "shard_workers",
    "halo_nm",
    "snap_nm",
    "instance_dedup",
)

#: the deterministic ScanReport fields the canonical projection keeps
CANONICAL_REPORT_FIELDS: Tuple[str, ...] = (
    "schema",
    "scan_path",
    "n_windows",
    "centers",
    "scores",
    "flagged",
    "confirmed",
)


class WireError(ValueError):
    """A malformed or disallowed job request (HTTP 400)."""


# --------------------------------------------------------------------------
# layer geometry
# --------------------------------------------------------------------------
def encode_layer(layer: Layer) -> Dict[str, object]:
    """Serialize a layer as its polygons' rect decompositions."""
    return {
        "name": layer.name,
        "polygons": [
            [[r.x1, r.y1, r.x2, r.y2] for r in poly.rects]
            for poly in layer.polygons
        ],
    }


def decode_layer(payload: Dict[str, object]) -> Layer:
    """Rebuild the layer serialized by :func:`encode_layer`."""
    try:
        name = str(payload["name"])
        layer = Layer(name)
        for poly_rects in payload["polygons"]:
            layer.add(
                Polygon(
                    tuple(
                        Rect(int(x1), int(y1), int(x2), int(y2))
                        for x1, y1, x2, y2 in poly_rects
                    )
                )
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"bad layer payload: {exc}") from exc
    return layer


# --------------------------------------------------------------------------
# job requests
# --------------------------------------------------------------------------
def encode_job_request(
    layer: Layer,
    region: Rect,
    window_nm: int = 768,
    core_nm: int = 256,
    step_nm: Optional[int] = None,
    engine: Optional[Dict[str, object]] = None,
    deadline_s: Optional[float] = None,
    attempt_deadline_s: Optional[float] = None,
    chip: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Build (and validate) the submit payload for one scan job.

    ``deadline_s`` budgets the job's total wall clock from submission
    (queue wait included); ``attempt_deadline_s`` budgets each claim.
    ``None`` defers to the service's configured defaults.  ``chip``
    carries the :data:`ALLOWED_CHIP_KWARGS` scale-out knobs (e.g.
    ``{"shards": 8}``): a multi-worker fleet fans such a job out into
    per-shard child jobs and merges their reports.
    """
    request = {
        "schema": JOB_REQUEST_SCHEMA,
        "layer": encode_layer(layer),
        "region": [region.x1, region.y1, region.x2, region.y2],
        "window_nm": int(window_nm),
        "core_nm": int(core_nm),
        "step_nm": None if step_nm is None else int(step_nm),
        "engine": dict(engine) if engine else {},
        "deadline_s": None if deadline_s is None else float(deadline_s),
        "attempt_deadline_s": None
        if attempt_deadline_s is None
        else float(attempt_deadline_s),
    }
    if chip:
        request["chip"] = dict(chip)
    return validate_job_request(request)


def validate_job_request(payload: Dict[str, object]) -> Dict[str, object]:
    """Check a submitted document; the normalized request, or WireError.

    Structural validation only — geometry emptiness, region-vs-window
    sizing, and engine-knob values are checked where the authoritative
    logic already lives (layer decode, ``ScanEngine.scan``,
    ``EngineConfig``); this gate rejects unknown shapes and knobs the
    service does not let clients set.
    """
    if not isinstance(payload, dict):
        raise WireError("job request must be a JSON object")
    schema = payload.get("schema")
    if schema != JOB_REQUEST_SCHEMA:
        raise WireError(
            f"unsupported job request schema {schema!r} "
            f"(this service reads {JOB_REQUEST_SCHEMA})"
        )
    layer = payload.get("layer")
    if not isinstance(layer, dict) or "name" not in layer or "polygons" not in layer:
        raise WireError("'layer' must be {name, polygons}")
    region = payload.get("region")
    if (
        not isinstance(region, (list, tuple))
        or len(region) != 4
        or not all(isinstance(v, int) for v in region)
    ):
        raise WireError("'region' must be [x1, y1, x2, y2] integers (nm)")
    x1, y1, x2, y2 = region
    if x1 > x2 or y1 > y2:
        raise WireError(f"malformed region {region}")
    out = {
        "schema": JOB_REQUEST_SCHEMA,
        "layer": layer,
        "region": [x1, y1, x2, y2],
    }
    for key, default in (("window_nm", 768), ("core_nm", 256)):
        value = payload.get(key, default)
        if not isinstance(value, int) or value < 1:
            raise WireError(f"'{key}' must be a positive integer (nm)")
        out[key] = value
    step = payload.get("step_nm")
    if step is not None and (not isinstance(step, int) or step < 1):
        raise WireError("'step_nm' must be null or a positive integer (nm)")
    out["step_nm"] = step
    for key in ("deadline_s", "attempt_deadline_s"):
        budget = payload.get(key)
        if budget is not None and (
            isinstance(budget, bool)
            or not isinstance(budget, (int, float))
            or budget <= 0
        ):
            raise WireError(f"'{key}' must be null or a positive number (s)")
        out[key] = None if budget is None else float(budget)
    engine = payload.get("engine") or {}
    if not isinstance(engine, dict):
        raise WireError("'engine' must be an object of flat engine kwargs")
    refused = sorted(set(engine) - set(ALLOWED_ENGINE_KWARGS))
    if refused:
        raise WireError(
            f"engine option(s) {refused} are not client-settable "
            f"(allowed: {sorted(ALLOWED_ENGINE_KWARGS)})"
        )
    out["engine"] = dict(engine)
    chip = payload.get("chip")
    if chip is not None:
        if not isinstance(chip, dict):
            raise WireError("'chip' must be an object of scale-out knobs")
        refused = sorted(set(chip) - set(ALLOWED_CHIP_KWARGS))
        if refused:
            raise WireError(
                f"chip option(s) {refused} are not client-settable "
                f"(allowed: {sorted(ALLOWED_CHIP_KWARGS)})"
            )
        out["chip"] = dict(chip)
    shard = payload.get("shard")
    if shard is not None:
        # internal fan-out marker: one shard of a parent chip job; the
        # fleet writes these itself, but they still round-trip through
        # the same submit/validate gate as client jobs
        if not isinstance(shard, dict):
            raise WireError("'shard' must be {plan, index, parent}")
        plan_doc = shard.get("plan")
        index = shard.get("index")
        parent = shard.get("parent")
        if not isinstance(plan_doc, str) or not plan_doc:
            raise WireError("'shard.plan' must be a ShardPlan JSON string")
        if isinstance(index, bool) or not isinstance(index, int) or index < 0:
            raise WireError("'shard.index' must be a non-negative integer")
        if not isinstance(parent, str) or not parent:
            raise WireError("'shard.parent' must be the parent job id")
        if "chip" in out:
            raise WireError("a job cannot be both a chip and a shard job")
        out["shard"] = {"plan": plan_doc, "index": index, "parent": parent}
    unknown = sorted(
        set(payload)
        - {
            "schema",
            "layer",
            "region",
            "window_nm",
            "core_nm",
            "step_nm",
            "engine",
            "chip",
            "shard",
            "deadline_s",
            "attempt_deadline_s",
        }
    )
    if unknown:
        raise WireError(f"unknown job request field(s) {unknown}")
    return out


def build_engine_config(
    request: Dict[str, object],
    checkpoint_dir=None,
    progress=None,
    progress_every_chunks: Optional[int] = None,
) -> EngineConfig:
    """The worker-side :class:`EngineConfig` for a validated request.

    Client knobs come from ``request["engine"]`` (plus the ``chip``
    scale-out group, when present); the service supplies the per-job
    checkpoint directory (retry/resume) and its own progress hook.
    Invalid knob values surface as :class:`WireError` so the job fails
    with a clear message instead of a traceback.
    """
    kwargs = dict(request.get("engine") or {})
    kwargs.update(request.get("chip") or {})
    if checkpoint_dir is not None:
        kwargs["checkpoint_dir"] = checkpoint_dir
    if progress is not None:
        kwargs["progress"] = progress
    if progress_every_chunks is not None:
        kwargs["progress_every_chunks"] = progress_every_chunks
    try:
        return EngineConfig.from_kwargs(**kwargs)
    except (TypeError, ValueError) as exc:
        raise WireError(f"bad engine configuration: {exc}") from exc


def decode_region(request: Dict[str, object]) -> Rect:
    """The scan region of a validated request."""
    x1, y1, x2, y2 = request["region"]
    return Rect(int(x1), int(y1), int(x2), int(y2))


# --------------------------------------------------------------------------
# canonical report projection
# --------------------------------------------------------------------------
def canonical_report_json(document: str) -> str:
    """Project a ``ScanReport.to_json`` document onto its deterministic core.

    Keeps :data:`CANONICAL_REPORT_FIELDS` — schema, scan path, window
    count, centers, scores, flags, confirmed verdicts — and drops
    execution metadata that legitimately varies run to run (wall time,
    telemetry, cache/dedup tallies, cascade stage counts, all of which
    shift under checkpoint resume).  Keys are sorted: two scans of the
    same request yield **byte-identical** canonical documents whether
    they ran direct or through the service, uninterrupted or resumed.
    """
    payload = json.loads(document)
    projected = {key: payload[key] for key in CANONICAL_REPORT_FIELDS}
    return json.dumps(projected, sort_keys=True)

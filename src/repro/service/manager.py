"""JobManager: the submit/status/cancel/result lifecycle over the ports.

One manager owns the service's state: it validates and admits
submissions, hands queued jobs to workers through an atomic claim,
records outcomes (retrying preempted or crashed jobs with bounded
attempts), and aggregates per-job scan metrics into one service-level
telemetry stream.  It holds **no** threads and does **no** scanning —
the :class:`~repro.service.fleet.WorkerFleet` drives it, and the HTTP
layer (:mod:`~repro.service.http`) translates it to routes.

Concurrency model: every state change is one
:meth:`~repro.service.ports.JobStore.update` — an atomic
read-modify-write under the store lock.  A submit/cancel or
claim/cancel race therefore resolves to exactly one winner: whichever
mutation runs first transitions the record, and the loser's mutation
sees the new state and backs off (``claim`` skips the job, ``cancel``
flags a running job cooperatively instead of transitioning it).

Restart story (:meth:`JobManager.recover`): the queue is a *hint*, the
job store is the truth.  On fleet startup the queue is rebuilt from the
store — jobs found ``running`` (the previous process died mid-scan) are
moved back to ``queued`` and, because each job scans with its own
checkpoint directory, their next attempt resumes rather than restarts.
Each replayed job is enqueued exactly once regardless of what stale
entries the durable queue held.
"""

from __future__ import annotations

import shutil
import threading
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..runtime import Telemetry
from .jobs import JobRecord, JobState, new_job_id
from .memory import NullRateLimiter
from .ports import (
    JobNotFound,
    JobQueue,
    JobStore,
    RateLimited,
    RateLimiter,
    ResultStore,
    StoredResult,
)
from .wire import validate_job_request

PathLike = Union[str, Path]


class JobManager:
    """Service-side job lifecycle over pluggable storage ports.

    Parameters
    ----------
    store, queue, results:
        The three storage ports (in-memory or file-backed adapters, or
        anything else honouring the port contracts).
    rate_limiter:
        Admission control for :meth:`submit`; default admits everything.
    max_attempts:
        Total claims a job may consume (first run + retries).
    checkpoint_root:
        Directory receiving one checkpoint subdirectory per job; when
        set, a retried job *resumes* its interrupted scan.  ``None``
        disables checkpointing (retries restart from scratch).
    telemetry:
        Shared :class:`~repro.runtime.Telemetry` for the ``job_*`` /
        ``service_*`` counter families; one is created when omitted.
    """

    def __init__(
        self,
        store: JobStore,
        queue: JobQueue,
        results: ResultStore,
        *,
        rate_limiter: Optional[RateLimiter] = None,
        max_attempts: int = 3,
        checkpoint_root: Optional[PathLike] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.store = store
        self.queue = queue
        self.results = results
        self.rate_limiter = rate_limiter or NullRateLimiter()
        self.max_attempts = max_attempts
        self.checkpoint_root = (
            Path(checkpoint_root) if checkpoint_root is not None else None
        )
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        # counters and the scan aggregate are touched from many worker
        # threads; Telemetry itself is unsynchronized by design (it is
        # per-scan inside the engine), so the manager serializes access
        self._lock = threading.Lock()
        self._scan_aggregate: Dict[str, int] = {}

    @classmethod
    def in_memory(cls, **kwargs) -> "JobManager":
        """A manager over fresh in-memory adapters (tests, single process)."""
        from .memory import (
            InMemoryJobQueue,
            InMemoryJobStore,
            InMemoryResultStore,
        )

        return cls(
            InMemoryJobStore(),
            InMemoryJobQueue(),
            InMemoryResultStore(),
            **kwargs,
        )

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Thread-safe service-counter increment."""
        with self._lock:
            self.telemetry.count(name, n)

    def on_quarantine(self, kind: str, path: Path) -> None:
        """Adapter hook: a corrupt persisted entry was quarantined."""
        self.count("job_quarantined")

    def scan_aggregate(self) -> Dict[str, int]:
        """Summed scan counters over every completed job."""
        with self._lock:
            return dict(self._scan_aggregate)

    def _absorb_scan_metrics(self, metrics: Dict[str, object]) -> None:
        counters = metrics.get("counters")
        if not isinstance(counters, dict):
            return
        with self._lock:
            for name, value in counters.items():
                self._scan_aggregate[name] = self._scan_aggregate.get(
                    name, 0
                ) + int(value)

    # ------------------------------------------------------------------
    # client surface
    # ------------------------------------------------------------------
    def submit(
        self, request: Dict[str, object], client: str = "anonymous"
    ) -> JobRecord:
        """Validate, rate-limit, persist, and enqueue one scan request."""
        request = validate_job_request(request)
        if not self.rate_limiter.allow(client):
            self.count("service_rate_limited")
            raise RateLimited(f"client {client!r} is over its submission rate")
        record = JobRecord(
            job_id=new_job_id(),
            request=request,
            max_attempts=self.max_attempts,
        )
        self.store.put(record)
        self.queue.push(record.job_id)
        self.count("job_submitted")
        return record

    def status(self, job_id: str) -> JobRecord:
        record = self.store.get(job_id)
        if record is None:
            raise JobNotFound(job_id)
        return record

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a job: queued jobs transition now, running jobs are
        flagged and honour the request at their next heartbeat."""

        transitioned = []

        def mutate(record: JobRecord) -> Optional[JobRecord]:
            if record.state is JobState.QUEUED:
                moved = record.transition(JobState.CANCELLED)
                transitioned.append(moved)
                return moved
            if record.state is JobState.RUNNING and not record.cancel_requested:
                return replace(record, cancel_requested=True)
            return None

        updated = self.store.update(job_id, mutate)
        if transitioned:
            self.count("job_cancelled")
            self._drop_checkpoints(job_id)
        return updated if updated is not None else self.status(job_id)

    def result(self, job_id: str) -> StoredResult:
        """The stored result of a succeeded job (JobNotFound otherwise)."""
        self.status(job_id)  # 404 before 409: unknown ids raise here
        stored = self.results.get(job_id)
        if stored is None:
            raise JobNotFound(f"no result stored for job {job_id}")
        return stored

    def delete(self, job_id: str) -> JobRecord:
        """Remove a terminal job and its result; cancel-then-keep an
        active one (the caller retries the delete once it lands)."""
        record = self.status(job_id)
        if not record.terminal:
            return self.cancel(job_id)
        self.results.delete(job_id)
        self.store.delete(job_id)
        self._drop_checkpoints(job_id)
        return record

    # ------------------------------------------------------------------
    # worker surface
    # ------------------------------------------------------------------
    def claim(
        self, worker: str, timeout: Optional[float] = None
    ) -> Optional[JobRecord]:
        """Pop and atomically claim the next runnable job.

        ``None`` on queue timeout *or* when the popped entry turned out
        stale (job cancelled/claimed since enqueueing) — callers loop.
        """
        job_id = self.queue.pop(timeout)
        if job_id is None:
            return None

        def mutate(record: JobRecord) -> Optional[JobRecord]:
            if record.state is not JobState.QUEUED:
                return None  # stale queue entry: lost the race, skip
            return record.transition(
                JobState.RUNNING,
                attempts=record.attempts + 1,
                worker=worker,
            )

        try:
            claimed = self.store.update(job_id, mutate)
        except JobNotFound:
            return None
        if claimed is None:
            return None
        self.count("job_started")
        if claimed.attempts > 1:
            self.count("job_retries")
        return claimed

    def complete(
        self,
        record: JobRecord,
        document: str,
        metrics: Dict[str, object],
    ) -> JobRecord:
        """Record a finished scan: publish the result, settle the state.

        A cancel that arrived while the scan ran wins — the job lands
        ``cancelled`` and the report is discarded.
        """

        def mutate(current: JobRecord) -> JobRecord:
            if current.cancel_requested:
                return current.transition(JobState.CANCELLED)
            return current.transition(JobState.SUCCEEDED)

        settled = self.store.update(record.job_id, mutate)
        if settled.state is JobState.SUCCEEDED:
            self.results.put(
                StoredResult(
                    job_id=record.job_id, document=document, metrics=metrics
                )
            )
            self._absorb_scan_metrics(metrics)
            self.count("job_succeeded")
        else:
            self.count("job_cancelled")
        self._drop_checkpoints(record.job_id)
        return settled

    def fail(self, record: JobRecord, error: BaseException) -> JobRecord:
        """Record a dead attempt: requeue while attempts remain, else fail.

        The requeue edge is what makes preemption cheap — the job's
        checkpoint directory survives, so the next claim resumes the
        scan instead of repeating completed chunks.
        """

        message = f"{type(error).__name__}: {error}"

        def mutate(current: JobRecord) -> JobRecord:
            if current.cancel_requested:
                return current.transition(JobState.CANCELLED, error=message)
            if current.attempts < current.max_attempts:
                return current.transition(JobState.QUEUED, error=message)
            return current.transition(JobState.FAILED, error=message)

        settled = self.store.update(record.job_id, mutate)
        if settled.state is JobState.QUEUED:
            self.queue.push(settled.job_id)
            self.count("job_requeued")
        elif settled.state is JobState.FAILED:
            self.count("job_failed")
            self._drop_checkpoints(record.job_id)
        else:
            self.count("job_cancelled")
            self._drop_checkpoints(record.job_id)
        return settled

    def is_cancel_requested(self, job_id: str) -> bool:
        record = self.store.get(job_id)
        return record is not None and record.cancel_requested

    # ------------------------------------------------------------------
    # restart recovery
    # ------------------------------------------------------------------
    def recover(self) -> int:
        """Rebuild the queue from the store after a process restart.

        Returns the number of jobs re-enqueued.  Jobs persisted as
        ``running`` belonged to a fleet that died mid-scan; they move
        back to ``queued`` (their checkpoints intact) and count as
        ``job_recovered``.  The durable queue's stale entries are
        discarded first, so every replayed job is enqueued exactly once.
        """
        self.queue.clear()
        replayed = 0
        for record in self.store.list_records():
            if record.state is JobState.RUNNING:
                self.store.update(
                    record.job_id,
                    lambda current: current.transition(
                        JobState.QUEUED, worker=None
                    )
                    if current.state is JobState.RUNNING
                    else None,
                )
                self.count("job_recovered")
                self.queue.push(record.job_id)
                replayed += 1
            elif record.state is JobState.QUEUED:
                self.queue.push(record.job_id)
                replayed += 1
        return replayed

    # ------------------------------------------------------------------
    # checkpoint plumbing
    # ------------------------------------------------------------------
    def checkpoint_dir_for(self, job_id: str) -> Optional[Path]:
        """The per-job scan checkpoint directory (None when disabled)."""
        if self.checkpoint_root is None:
            return None
        return self.checkpoint_root / job_id

    def _drop_checkpoints(self, job_id: str) -> None:
        ckpt = self.checkpoint_dir_for(job_id)
        if ckpt is not None and ckpt.exists():
            shutil.rmtree(ckpt, ignore_errors=True)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def jobs_by_state(self) -> Dict[str, int]:
        counts = {state.value: 0 for state in JobState}
        for record in self.store.list_records():
            counts[record.state.value] += 1
        return counts

    def list_jobs(self) -> List[JobRecord]:
        return self.store.list_records()

    def queue_depth(self) -> int:
        return len(self.queue)

"""JobManager: the submit/status/cancel/result lifecycle over the ports.

One manager owns the service's state: it validates and admits
submissions (shedding load past the queue cap and refusing everything
while draining), hands queued jobs to workers through an atomic
lease-granting claim, records outcomes (retrying preempted or crashed
jobs with bounded attempts, quarantining poison jobs), and aggregates
per-job scan metrics into one service-level telemetry stream.  It holds
**no** scan threads and does **no** scanning — the
:class:`~repro.service.fleet.WorkerFleet` drives it, and the HTTP layer
(:mod:`~repro.service.http`) translates it to routes.

Concurrency model: every state change is one
:meth:`~repro.service.ports.JobStore.update` — an atomic
read-modify-write under the store lock.  A submit/cancel or
claim/cancel race therefore resolves to exactly one winner, and the
**lease token** minted per claim extends the same guarantee to the
reap-vs-complete race: :meth:`complete`, :meth:`fail`, and
:meth:`release` all re-check inside the RMW that the job is still
``running`` *and* still owned by the presenting token, so a worker that
finishes after its lease was reaped (and possibly re-claimed by another
worker) settles nothing — exactly one attempt's outcome lands.

Failure model, end to end:

* **crashed/hung worker** — its job's lease stops being renewed; the
  :class:`LeaseReaper` (a daemon thread any live fleet runs) finds the
  expired lease and requeues the job through the same RMW state
  machine, so the *live* fleet reclaims the work without any restart,
* **poison job** — a job whose attempts are all consumed by
  worker-fatal deaths (reaps, crash loops, deterministic per-attempt
  timeouts) lands terminally ``quarantined`` with its full error chain
  preserved, instead of cycling forever,
* **deadlines** — per-job (``deadline_s``, from submission, queue wait
  included) and per-attempt (``attempt_deadline_s``) budgets are
  enforced at the worker's heartbeat boundary and by the reaper sweep;
  a spent job budget fails the job, a spent attempt budget requeues it
  (checkpoint kept) until attempts run out,
* **backpressure** — ``max_queue_depth`` sheds submissions with
  :class:`~repro.service.ports.QueueFull` (HTTP 503 + ``Retry-After``),
  distinct from the per-client 429 rate limit,
* **drain** — :meth:`begin_drain` stops admission; the fleet then
  releases in-flight attempts back to the queue (checkpoints intact,
  attempt refunded) so a rolling restart loses zero accepted jobs.

Restart story (:meth:`JobManager.recover`): the queue is a *hint*, the
job store is the truth.  On fleet startup the queue is rebuilt from the
store — jobs found ``running`` (the previous process died mid-scan) are
moved back to ``queued`` and, because each job scans with its own
checkpoint directory, their next attempt resumes rather than restarts.
Each replayed job is enqueued exactly once regardless of what stale
entries the durable queue held.
"""

from __future__ import annotations

import enum
import shutil
import threading
import time
from dataclasses import replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..runtime import Telemetry
from .jobs import JobRecord, JobState, new_job_id, new_lease_token
from .memory import NullRateLimiter
from .ports import (
    JobNotFound,
    JobQueue,
    JobStore,
    QueueFull,
    RateLimited,
    RateLimiter,
    ResultStore,
    ServiceDraining,
    StoredResult,
)
from .wire import validate_job_request

PathLike = Union[str, Path]


class HeartbeatVerdict(enum.Enum):
    """What a worker must do after renewing its lease at a heartbeat."""

    #: lease renewed — keep scanning
    CONTINUE = "continue"
    #: a cancel landed while the scan ran — abort and settle cancelled
    CANCELLED = "cancelled"
    #: the lease was reaped/re-claimed — abort *without* settling
    LEASE_LOST = "lease_lost"
    #: the whole-job budget is spent — already failed; abort, no settle
    JOB_DEADLINE = "job_deadline"
    #: the attempt budget is spent — already requeued/quarantined;
    #: abort, no settle
    ATTEMPT_DEADLINE = "attempt_deadline"


class LeaseReaper:
    """Daemon thread sweeping expired leases back into the queue.

    Any live fleet runs one; that is what makes a crashed or hung
    worker's job reclaimable *without a fleet restart*.  The sweep
    itself (:meth:`JobManager.reap`) is safe to run from any number of
    processes concurrently — every requeue/quarantine is one guarded
    store RMW, so two reapers racing settle each job exactly once.
    """

    def __init__(
        self, manager: "JobManager", interval_s: Optional[float] = None
    ) -> None:
        if interval_s is None:
            interval_s = max(0.05, manager.lease_duration_s / 4.0)
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.manager = manager
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "LeaseReaper":
        if self._thread is not None:
            raise RuntimeError("reaper already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-lease-reaper", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.manager.reap()


class JobManager:
    """Service-side job lifecycle over pluggable storage ports.

    Parameters
    ----------
    store, queue, results:
        The three storage ports (in-memory or file-backed adapters, or
        anything else honouring the port contracts).
    rate_limiter:
        Per-client admission control for :meth:`submit` (HTTP 429);
        default admits everything.
    max_attempts:
        Total claims a job may consume (first run + retries).
    checkpoint_root:
        Directory receiving one checkpoint subdirectory per job; when
        set, a retried job *resumes* its interrupted scan.  ``None``
        disables checkpointing (retries restart from scratch).
    lease_duration_s:
        How long a claim's lease lasts without a heartbeat renewal
        before the reaper may requeue the job.
    max_queue_depth:
        Queue-depth admission cap; ``None`` disables shedding (503).
    default_deadline_s / default_attempt_deadline_s:
        Wall-clock budgets applied to jobs whose requests do not set
        their own; ``None`` means unlimited.
    telemetry:
        Shared :class:`~repro.runtime.Telemetry` for the ``job_*`` /
        ``lease_*`` / ``service_*`` counter families; one is created
        when omitted.
    clock:
        Wall-clock source for leases and deadlines (tests inject a fake
        to make expiry deterministic).
    """

    def __init__(
        self,
        store: JobStore,
        queue: JobQueue,
        results: ResultStore,
        *,
        rate_limiter: Optional[RateLimiter] = None,
        max_attempts: int = 3,
        checkpoint_root: Optional[PathLike] = None,
        lease_duration_s: float = 30.0,
        max_queue_depth: Optional[int] = None,
        default_deadline_s: Optional[float] = None,
        default_attempt_deadline_s: Optional[float] = None,
        telemetry: Optional[Telemetry] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if lease_duration_s <= 0:
            raise ValueError("lease_duration_s must be positive")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 or None")
        self.store = store
        self.queue = queue
        self.results = results
        self.rate_limiter = rate_limiter or NullRateLimiter()
        self.max_attempts = max_attempts
        self.checkpoint_root = (
            Path(checkpoint_root) if checkpoint_root is not None else None
        )
        self.lease_duration_s = lease_duration_s
        self.max_queue_depth = max_queue_depth
        self.default_deadline_s = default_deadline_s
        self.default_attempt_deadline_s = default_attempt_deadline_s
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._clock = clock
        # counters and the scan aggregate are touched from many worker
        # threads; Telemetry itself is unsynchronized by design (it is
        # per-scan inside the engine), so the manager serializes access
        self._lock = threading.Lock()
        self._scan_aggregate: Dict[str, int] = {}
        self._draining = threading.Event()
        self._reaper: Optional[LeaseReaper] = None

    @classmethod
    def in_memory(cls, **kwargs) -> "JobManager":
        """A manager over fresh in-memory adapters (tests, single process)."""
        from .memory import (
            InMemoryJobQueue,
            InMemoryJobStore,
            InMemoryResultStore,
        )

        return cls(
            InMemoryJobStore(),
            InMemoryJobQueue(),
            InMemoryResultStore(),
            **kwargs,
        )

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Thread-safe service-counter increment."""
        with self._lock:
            self.telemetry.count(name, n)

    def on_quarantine(self, kind: str, path: Path) -> None:
        """Adapter hook: a corrupt persisted entry was quarantined."""
        self.count("service_entry_quarantined")

    def scan_aggregate(self) -> Dict[str, int]:
        """Summed scan counters over every completed job."""
        with self._lock:
            return dict(self._scan_aggregate)

    def _absorb_scan_metrics(self, metrics: Dict[str, object]) -> None:
        counters = metrics.get("counters")
        if not isinstance(counters, dict):
            return
        with self._lock:
            for name, value in counters.items():
                self._scan_aggregate[name] = self._scan_aggregate.get(
                    name, 0
                ) + int(value)

    # ------------------------------------------------------------------
    # admission / drain state
    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Stop admitting jobs; everything else keeps serving."""
        self._draining.set()

    def end_drain(self) -> None:
        """Re-open admission (a drained manager reused after restart)."""
        self._draining.clear()

    # ------------------------------------------------------------------
    # client surface
    # ------------------------------------------------------------------
    def submit(
        self, request: Dict[str, object], client: str = "anonymous"
    ) -> JobRecord:
        """Validate, admit, persist, and enqueue one scan request.

        Refusals, in order: :class:`ServiceDraining` while a drain is in
        progress, :class:`QueueFull` past the queue-depth cap (both are
        *load shedding* — HTTP 503 + ``Retry-After``), and
        :class:`RateLimited` for a client over its budget (HTTP 429).
        """
        request = validate_job_request(request)
        if self.draining:
            self.count("job_shed")
            raise ServiceDraining(
                "service is draining; submissions are closed"
            )
        if (
            self.max_queue_depth is not None
            and self.queue_depth() >= self.max_queue_depth
        ):
            self.count("job_shed")
            raise QueueFull(
                f"queue is at its admission cap "
                f"({self.max_queue_depth} pending jobs)"
            )
        if not self.rate_limiter.allow(client):
            self.count("service_rate_limited")
            raise RateLimited(
                f"client {client!r} is over its submission rate",
                retry_after_s=max(
                    0.1, self.rate_limiter.retry_after_s(client)
                ),
            )
        record = JobRecord(
            job_id=new_job_id(),
            request=request,
            max_attempts=self.max_attempts,
            deadline_s=request.get("deadline_s") or self.default_deadline_s,
            attempt_deadline_s=request.get("attempt_deadline_s")
            or self.default_attempt_deadline_s,
        )
        self.store.put(record)
        self.queue.push(record.job_id)
        self.count("job_submitted")
        return record

    def status(self, job_id: str) -> JobRecord:
        record = self.store.get(job_id)
        if record is None:
            raise JobNotFound(job_id)
        return record

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a job: queued jobs transition now, running jobs are
        flagged and honour the request at their next heartbeat."""

        transitioned = []

        def mutate(record: JobRecord) -> Optional[JobRecord]:
            if record.state is JobState.QUEUED:
                moved = record.transition(JobState.CANCELLED)
                transitioned.append(moved)
                return moved
            if record.state is JobState.RUNNING and not record.cancel_requested:
                return replace(record, cancel_requested=True)
            return None

        updated = self.store.update(job_id, mutate)
        if transitioned:
            self.count("job_cancelled")
            self._drop_checkpoints(job_id)
        return updated if updated is not None else self.status(job_id)

    def result(self, job_id: str) -> StoredResult:
        """The stored result of a succeeded job (JobNotFound otherwise)."""
        self.status(job_id)  # 404 before 409: unknown ids raise here
        stored = self.results.get(job_id)
        if stored is None:
            raise JobNotFound(f"no result stored for job {job_id}")
        return stored

    def delete(self, job_id: str) -> JobRecord:
        """Remove a terminal job and its result; cancel-then-keep an
        active one (the caller retries the delete once it lands)."""
        record = self.status(job_id)
        if not record.terminal:
            return self.cancel(job_id)
        self.results.delete(job_id)
        self.store.delete(job_id)
        self._drop_checkpoints(job_id)
        return record

    # ------------------------------------------------------------------
    # worker surface
    # ------------------------------------------------------------------
    def claim(
        self, worker: str, timeout: Optional[float] = None
    ) -> Optional[JobRecord]:
        """Pop and atomically claim the next runnable job under a lease.

        The claim mints a fresh ``lease_token`` and stamps
        ``lease_expires_at``; the worker renews both via
        :meth:`heartbeat`.  ``None`` on queue timeout *or* when the
        popped entry turned out stale (job cancelled/claimed/settled
        since enqueueing) — callers loop.
        """
        job_id = self.queue.pop(timeout)
        if job_id is None:
            return None
        now = self._clock()

        def mutate(record: JobRecord) -> Optional[JobRecord]:
            if record.state is not JobState.QUEUED:
                return None  # stale queue entry: lost the race, skip
            return record.transition(
                JobState.RUNNING,
                attempts=record.attempts + 1,
                worker=worker,
                lease_token=new_lease_token(),
                lease_expires_at=now + self.lease_duration_s,
                attempt_started_at=now,
            )

        try:
            claimed = self.store.update(job_id, mutate)
        except JobNotFound:
            return None
        if claimed is None:
            return None
        self.count("job_started")
        if claimed.attempts > 1:
            self.count("job_retries")
        return claimed

    def heartbeat(self, job_id: str, lease_token: str) -> HeartbeatVerdict:
        """Renew a worker's lease; one RMW deciding the attempt's fate.

        The returned verdict tells the worker to keep scanning
        (``CONTINUE``, lease extended), abort and settle cancelled
        (``CANCELLED``), or abort **without settling** — the manager
        already settled the record inside this call (deadlines) or the
        lease now belongs to someone else (``LEASE_LOST``).
        """
        now = self._clock()
        verdict = [HeartbeatVerdict.LEASE_LOST]
        requeued = []

        def mutate(current: JobRecord) -> Optional[JobRecord]:
            if (
                current.state is not JobState.RUNNING
                or current.lease_token != lease_token
            ):
                verdict[0] = HeartbeatVerdict.LEASE_LOST
                return None
            if current.cancel_requested:
                verdict[0] = HeartbeatVerdict.CANCELLED
                return None
            if current.job_deadline_exceeded(now):
                verdict[0] = HeartbeatVerdict.JOB_DEADLINE
                return current.transition(
                    JobState.FAILED,
                    worker=None,
                    lease_token=None,
                    lease_expires_at=None,
                    **current.chain_error(
                        f"job deadline of {current.deadline_s}s exceeded "
                        f"at attempt {current.attempts}"
                    ),
                )
            if current.attempt_deadline_exceeded(now):
                verdict[0] = HeartbeatVerdict.ATTEMPT_DEADLINE
                changes = current.chain_error(
                    f"attempt {current.attempts} exceeded its "
                    f"{current.attempt_deadline_s}s deadline"
                )
                if current.attempts < current.max_attempts:
                    requeued.append(True)
                    return current.transition(
                        JobState.QUEUED,
                        worker=None,
                        lease_token=None,
                        lease_expires_at=None,
                        attempt_started_at=None,
                        **changes,
                    )
                return current.transition(
                    JobState.QUARANTINED,
                    worker=None,
                    lease_token=None,
                    lease_expires_at=None,
                    **changes,
                )
            verdict[0] = HeartbeatVerdict.CONTINUE
            return replace(
                current, lease_expires_at=now + self.lease_duration_s
            )

        try:
            settled = self.store.update(job_id, mutate)
        except JobNotFound:
            self.count("lease_lost")
            return HeartbeatVerdict.LEASE_LOST

        outcome = verdict[0]
        if outcome is HeartbeatVerdict.CONTINUE:
            self.count("lease_renewed")
        elif outcome is HeartbeatVerdict.LEASE_LOST:
            self.count("lease_lost")
        elif outcome is HeartbeatVerdict.JOB_DEADLINE:
            self.count("job_deadline_exceeded")
            self._drop_checkpoints(job_id)
        elif outcome is HeartbeatVerdict.ATTEMPT_DEADLINE:
            self.count("job_deadline_attempt_exceeded")
            if requeued:
                self.queue.push(job_id)
            elif settled is not None and settled.state is JobState.QUARANTINED:
                self.count("job_quarantined")
                self._drop_checkpoints(job_id)
        return outcome

    def complete(
        self,
        record: JobRecord,
        document: str,
        metrics: Dict[str, object],
    ) -> Optional[JobRecord]:
        """Record a finished scan: publish the result, settle the state.

        A cancel that arrived while the scan ran wins — the job lands
        ``cancelled`` and the report is discarded.  A worker whose lease
        was reaped mid-scan settles **nothing**: the guarded RMW sees
        the stale token (or a non-running state) and returns ``None``,
        so a reaped-and-re-claimed job is never double-settled.
        """

        def mutate(current: JobRecord) -> Optional[JobRecord]:
            if (
                current.state is not JobState.RUNNING
                or current.lease_token != record.lease_token
            ):
                return None  # lease reaped/re-claimed: outcome discarded
            cleared = {
                "worker": None,
                "lease_token": None,
                "lease_expires_at": None,
            }
            if current.cancel_requested:
                return current.transition(JobState.CANCELLED, **cleared)
            return current.transition(JobState.SUCCEEDED, **cleared)

        settled = self.store.update(record.job_id, mutate)
        if settled is None:
            self.count("lease_lost")
            return None
        if settled.state is JobState.SUCCEEDED:
            self.results.put(
                StoredResult(
                    job_id=record.job_id, document=document, metrics=metrics
                )
            )
            self._absorb_scan_metrics(metrics)
            self.count("job_succeeded")
        else:
            self.count("job_cancelled")
        self._drop_checkpoints(record.job_id)
        return settled

    def fail(
        self, record: JobRecord, error: BaseException
    ) -> Optional[JobRecord]:
        """Record a dead attempt: requeue while attempts remain, else fail.

        The requeue edge is what makes preemption cheap — the job's
        checkpoint directory survives, so the next claim resumes the
        scan instead of repeating completed chunks.  Like
        :meth:`complete`, the settle is lease-guarded: a stale token
        settles nothing (``None``).
        """

        message = f"{type(error).__name__}: {error}"

        def mutate(current: JobRecord) -> Optional[JobRecord]:
            if (
                current.state is not JobState.RUNNING
                or current.lease_token != record.lease_token
            ):
                return None
            cleared = {
                "worker": None,
                "lease_token": None,
                "lease_expires_at": None,
            }
            changes = current.chain_error(message)
            if current.cancel_requested:
                return current.transition(
                    JobState.CANCELLED, **cleared, **changes
                )
            if current.attempts < current.max_attempts:
                return current.transition(
                    JobState.QUEUED,
                    attempt_started_at=None,
                    **cleared,
                    **changes,
                )
            return current.transition(JobState.FAILED, **cleared, **changes)

        settled = self.store.update(record.job_id, mutate)
        if settled is None:
            self.count("lease_lost")
            return None
        if settled.state is JobState.QUEUED:
            self.queue.push(settled.job_id)
            self.count("job_requeued")
        elif settled.state is JobState.FAILED:
            self.count("job_failed")
            self._drop_checkpoints(record.job_id)
        else:
            self.count("job_cancelled")
            self._drop_checkpoints(record.job_id)
        return settled

    def release(self, record: JobRecord) -> Optional[JobRecord]:
        """Hand a running job back to the queue without burning an attempt.

        The drain path: the worker aborted cooperatively (checkpoint on
        disk), so the attempt is *refunded* and the job rejoins the
        queue for the next fleet.  Lease-guarded like every settle.
        """

        def mutate(current: JobRecord) -> Optional[JobRecord]:
            if (
                current.state is not JobState.RUNNING
                or current.lease_token != record.lease_token
            ):
                return None
            return current.transition(
                JobState.QUEUED,
                attempts=max(0, current.attempts - 1),
                worker=None,
                lease_token=None,
                lease_expires_at=None,
                attempt_started_at=None,
            )

        settled = self.store.update(record.job_id, mutate)
        if settled is None:
            self.count("lease_lost")
            return None
        self.queue.push(settled.job_id)
        self.count("job_drained")
        return settled

    def is_cancel_requested(self, job_id: str) -> bool:
        record = self.store.get(job_id)
        return record is not None and record.cancel_requested

    # ------------------------------------------------------------------
    # lease reaping / operator seams
    # ------------------------------------------------------------------
    def reap(self, now: Optional[float] = None) -> int:
        """Sweep expired leases and spent queued deadlines; settled count.

        Jobs found ``running`` past their lease are requeued (attempts
        remaining) or quarantined (exhausted — the poison-job edge);
        jobs still ``queued`` past their whole-job deadline fail.  Every
        settle is one guarded RMW re-checking expiry under the store
        lock, so a job that completes as its lease expires is settled by
        exactly one side.
        """
        if now is None:
            now = self._clock()
        settled = 0
        for snapshot in self.store.list_records():
            if snapshot.lease_expired(now):
                settled += self._reap_one(snapshot.job_id, now)
            elif (
                snapshot.state is JobState.QUEUED
                and snapshot.job_deadline_exceeded(now)
            ):
                settled += self._expire_queued(snapshot.job_id, now)
        return settled

    def _reap_one(self, job_id: str, now: float) -> int:
        requeued = []

        def mutate(current: JobRecord) -> Optional[JobRecord]:
            if not current.lease_expired(now):
                return None  # completed/renewed since the sweep snapshot
            changes = current.chain_error(
                f"lease expired at attempt {current.attempts} "
                f"(worker {current.worker!r} presumed dead)"
            )
            cleared = {
                "worker": None,
                "lease_token": None,
                "lease_expires_at": None,
            }
            if current.attempts < current.max_attempts:
                requeued.append(True)
                return current.transition(
                    JobState.QUEUED,
                    attempt_started_at=None,
                    **cleared,
                    **changes,
                )
            return current.transition(
                JobState.QUARANTINED, **cleared, **changes
            )

        try:
            settled = self.store.update(job_id, mutate)
        except JobNotFound:
            return 0
        if settled is None:
            return 0
        if requeued:
            self.queue.push(job_id)
            self.count("lease_reaped")
        else:
            self.count("job_quarantined")
            self._drop_checkpoints(job_id)
        return 1

    def _expire_queued(self, job_id: str, now: float) -> int:
        def mutate(current: JobRecord) -> Optional[JobRecord]:
            if (
                current.state is not JobState.QUEUED
                or not current.job_deadline_exceeded(now)
            ):
                return None
            return current.transition(
                JobState.FAILED,
                **current.chain_error(
                    f"job deadline of {current.deadline_s}s exceeded "
                    "while queued"
                ),
            )

        try:
            settled = self.store.update(job_id, mutate)
        except JobNotFound:
            return 0
        if settled is None:
            return 0
        self.count("job_deadline_exceeded")
        self._drop_checkpoints(job_id)
        return 1

    def start_reaper(
        self, interval_s: Optional[float] = None
    ) -> LeaseReaper:
        """Start (or return) this manager's :class:`LeaseReaper` thread."""
        with self._lock:
            if self._reaper is None or not self._reaper.running:
                self._reaper = LeaseReaper(self, interval_s=interval_s)
                self._reaper.start()
            return self._reaper

    def stop_reaper(self) -> None:
        with self._lock:
            reaper = self._reaper
            self._reaper = None
        if reaper is not None:
            reaper.stop()

    def break_lease(self, job_id: str) -> bool:
        """Operator/chaos seam: void a running job's lease *now*.

        The current worker's next heartbeat observes ``LEASE_LOST`` and
        aborts without settling; the next :meth:`reap` sweep requeues
        the job.  True when a running lease was actually broken.
        """
        now = self._clock()

        def mutate(current: JobRecord) -> Optional[JobRecord]:
            if current.state is not JobState.RUNNING:
                return None
            return replace(
                current, lease_token=new_lease_token(), lease_expires_at=now
            )

        try:
            return self.store.update(job_id, mutate) is not None
        except JobNotFound:
            return False

    def expire_attempt_deadline(self, job_id: str) -> bool:
        """Operator/chaos seam: spend a running attempt's budget *now*.

        The worker's next heartbeat observes ``ATTEMPT_DEADLINE`` and
        the job requeues (or quarantines, attempts exhausted) through
        the ordinary deadline machinery.
        """
        now = self._clock()

        def mutate(current: JobRecord) -> Optional[JobRecord]:
            if current.state is not JobState.RUNNING:
                return None
            return replace(
                current,
                attempt_deadline_s=self.lease_duration_s,
                attempt_started_at=now - 2 * self.lease_duration_s,
            )

        try:
            return self.store.update(job_id, mutate) is not None
        except JobNotFound:
            return False

    # ------------------------------------------------------------------
    # restart recovery
    # ------------------------------------------------------------------
    def recover(self) -> int:
        """Rebuild the queue from the store after a process restart.

        Returns the number of jobs re-enqueued.  Jobs persisted as
        ``running`` belonged to a fleet that died mid-scan; they move
        back to ``queued`` (their checkpoints intact, leases cleared)
        and count as ``job_recovered``.  The durable queue's stale
        entries are discarded first, so every replayed job is enqueued
        exactly once.
        """
        self.queue.clear()
        replayed = 0
        for record in self.store.list_records():
            if record.state is JobState.RUNNING:
                self.store.update(
                    record.job_id,
                    lambda current: current.transition(
                        JobState.QUEUED,
                        worker=None,
                        lease_token=None,
                        lease_expires_at=None,
                        attempt_started_at=None,
                    )
                    if current.state is JobState.RUNNING
                    else None,
                )
                self.count("job_recovered")
                self.queue.push(record.job_id)
                replayed += 1
            elif record.state is JobState.QUEUED:
                self.queue.push(record.job_id)
                replayed += 1
        return replayed

    # ------------------------------------------------------------------
    # checkpoint plumbing
    # ------------------------------------------------------------------
    def checkpoint_dir_for(self, job_id: str) -> Optional[Path]:
        """The per-job scan checkpoint directory (None when disabled)."""
        if self.checkpoint_root is None:
            return None
        return self.checkpoint_root / job_id

    def _drop_checkpoints(self, job_id: str) -> None:
        ckpt = self.checkpoint_dir_for(job_id)
        if ckpt is not None and ckpt.exists():
            shutil.rmtree(ckpt, ignore_errors=True)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def jobs_by_state(self) -> Dict[str, int]:
        counts = {state.value: 0 for state in JobState}
        for record in self.store.list_records():
            counts[record.state.value] += 1
        return counts

    def list_jobs(self) -> List[JobRecord]:
        return self.store.list_records()

    def queue_depth(self) -> int:
        return len(self.queue)

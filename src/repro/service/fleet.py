"""WorkerFleet: N scan workers draining the job queue through the engine.

Each worker is one daemon thread looping claim → scan → settle:

* **claim** — :meth:`JobManager.claim` pops the queue and atomically
  flips the record ``queued → running`` (stale entries skip silently),
* **scan** — the validated request is decoded back to engine-native
  objects and run through a fresh :class:`~repro.runtime.ScanEngine`
  built over this worker's private detector copy (detectors mutate
  per-scan state — cascade tallies, tracer handles — so sharing one
  across threads would corrupt both scans),
* **settle** — success publishes the verbatim ``ScanReport.to_json()``
  document plus its metrics snapshot to the result store; any failure
  funnels through :meth:`JobManager.fail`, which requeues while
  attempts remain.

Preemption and cancellation ride the engine's progress heartbeats: the
fleet installs a per-job progress hook (heartbeats are delivered
synchronously and their exceptions propagate out of ``scan``), and the
hook raises :class:`JobCancelled` when the record was flagged or
:class:`JobInterrupted` when the ``job_interrupt`` fault-injection
point fired for this claim.  Because every job scans with its own
checkpoint directory, the *next* claim of an interrupted job runs with
``resume=True`` and replays only the unscanned remainder — the
canonical report is byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import copy
import threading
from typing import List, Optional, Union

from ..runtime import FaultInjector, ScanEngine, metrics_snapshot
from .jobs import JobRecord
from .manager import JobManager
from .wire import build_engine_config, decode_layer, decode_region


class JobInterrupted(RuntimeError):
    """An injected mid-scan preemption (the ``job_interrupt`` point)."""


class JobCancelled(RuntimeError):
    """The job's cancel flag was observed at a heartbeat."""


class WorkerFleet:
    """N worker threads executing jobs from a :class:`JobManager`.

    Parameters
    ----------
    manager:
        The job lifecycle authority this fleet drains.
    detector:
        Prototype detector; each worker scans with its own deep copy.
    workers:
        Number of concurrent scan threads.
    faults:
        Optional :class:`~repro.runtime.FaultInjector` (or spec string)
        consulted once per claim at the ``job_interrupt`` point; a
        firing claim is preempted after ``interrupt_after_events``
        heartbeats.
    interrupt_after_events:
        *Scoring* heartbeats (``event.scored > 0``) an interrupt-marked
        job survives before preemption.  Counting only scoring beats —
        not the dedup fingerprint phase that precedes them — guarantees
        scored chunks, and therefore checkpoints, exist by the time the
        preemption fires, so the retry genuinely resumes.
    heartbeat_every_chunks:
        Chunks between progress heartbeats (bounds cancel latency).
    poll_timeout_s:
        Queue-poll period; also bounds how fast :meth:`stop` lands.
    """

    def __init__(
        self,
        manager: JobManager,
        detector,
        workers: int = 1,
        *,
        faults: Union[FaultInjector, str, None] = None,
        interrupt_after_events: int = 2,
        heartbeat_every_chunks: int = 1,
        poll_timeout_s: float = 0.1,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if interrupt_after_events < 1:
            raise ValueError("interrupt_after_events must be >= 1")
        self.manager = manager
        self.detector = detector
        self.workers = workers
        self.faults = (
            FaultInjector(faults) if isinstance(faults, str) else faults
        )
        self.interrupt_after_events = interrupt_after_events
        self.heartbeat_every_chunks = heartbeat_every_chunks
        self.poll_timeout_s = poll_timeout_s
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        # fires() mutates injector counters; claims race from N threads
        self._fault_lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "WorkerFleet":
        """Recover persisted state, then launch the worker threads."""
        if self._threads:
            raise RuntimeError("fleet already started")
        self._stop.clear()
        self.manager.recover()
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(f"worker-{i}",),
                name=f"repro-scan-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, timeout: Optional[float] = None) -> None:
        """Ask the workers to finish their current job and exit."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []

    def __enter__(self) -> "WorkerFleet":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return any(t.is_alive() for t in self._threads)

    def wait_idle(self, timeout: float = 30.0) -> bool:
        """Block until no job is queued or running (True) or timeout."""
        deadline = threading.Event()
        poll = min(self.poll_timeout_s, 0.05)
        waited = 0.0
        while waited <= timeout:
            counts = self.manager.jobs_by_state()
            if (
                counts["queued"] == 0
                and counts["running"] == 0
                and self.manager.queue_depth() == 0
            ):
                return True
            deadline.wait(poll)
            waited += poll
        return False

    # ------------------------------------------------------------------
    # the worker loop
    # ------------------------------------------------------------------
    def _worker_loop(self, worker_name: str) -> None:
        detector = copy.deepcopy(self.detector)
        while not self._stop.is_set():
            record = self.manager.claim(worker_name, self.poll_timeout_s)
            if record is None:
                continue
            self._run_job(record, detector)

    def _interrupt_armed(self) -> bool:
        if self.faults is None:
            return False
        with self._fault_lock:
            return self.faults.fires("job_interrupt")

    def _run_job(self, record: JobRecord, detector) -> None:
        try:
            document, metrics = self._execute(record, detector)
        except Exception as exc:  # lint: disable=broad-except  (every job failure — injected preemption, cancel, or a genuine scan error — must settle the record instead of killing the worker thread)
            self.manager.fail(record, exc)
            return
        self.manager.complete(record, document, metrics)

    def _execute(self, record: JobRecord, detector):
        request = record.request
        layer = decode_layer(request["layer"])
        region = decode_region(request)
        interrupt = self._interrupt_armed()
        if interrupt:
            self.manager.count("fault_job_interrupt")
        heartbeats = [0]

        def on_heartbeat(event) -> None:
            if self.manager.is_cancel_requested(record.job_id):
                raise JobCancelled(record.job_id)
            if event.scored > 0:
                heartbeats[0] += 1
            if interrupt and heartbeats[0] >= self.interrupt_after_events:
                raise JobInterrupted(
                    f"job {record.job_id} preempted at scoring heartbeat "
                    f"{heartbeats[0]} (injected)"
                )

        config = build_engine_config(
            request,
            checkpoint_dir=self.manager.checkpoint_dir_for(record.job_id),
            progress=on_heartbeat,
            progress_every_chunks=self.heartbeat_every_chunks,
        )
        engine = ScanEngine(detector, config=config)
        report = engine.scan(
            layer,
            region,
            window_nm=request["window_nm"],
            core_nm=request["core_nm"],
            step_nm=request["step_nm"],
            keep_clips=False,
            # a retried attempt picks up the previous attempt's
            # checkpoint; with none on disk this scans from scratch
            resume=record.attempts > 1
            and config.checkpoint.dir is not None,
        )
        return report.to_json(), metrics_snapshot(report)

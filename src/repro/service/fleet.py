"""WorkerFleet: N scan workers draining the job queue through the engine.

Each worker is one daemon thread looping claim → scan → settle:

* **claim** — :meth:`JobManager.claim` pops the queue and atomically
  flips the record ``queued → running`` under a fresh lease (stale
  entries skip silently),
* **scan** — the validated request is decoded back to engine-native
  objects and run through a fresh :class:`~repro.runtime.ScanEngine`
  built over this worker's private detector copy (detectors mutate
  per-scan state — cascade tallies, tracer handles — so sharing one
  across threads would corrupt both scans),
* **settle** — success publishes the verbatim ``ScanReport.to_json()``
  document plus its metrics snapshot to the result store; any failure
  funnels through :meth:`JobManager.fail`, which requeues while
  attempts remain.  Both settles are lease-guarded: a worker whose
  lease was reaped mid-scan settles nothing.

Everything cooperative rides the engine's progress heartbeats, which
are delivered synchronously and propagate their exceptions out of
``scan``.  The fleet's per-job hook renews the job's lease through
:meth:`JobManager.heartbeat` on every beat and turns the verdict into
control flow: ``CANCELLED`` raises :class:`JobCancelled` (settles
cancelled), ``LEASE_LOST`` raises :class:`LeaseLost` and the spent
deadlines raise :class:`JobDeadlineExceeded` (both abort *without*
settling — the manager already owns the outcome), and a drain in
progress raises :class:`JobDrained`, which hands the job back to the
queue with its attempt refunded and its checkpoint intact.

Because every job scans with its own checkpoint directory, the *next*
claim of a preempted/drained/reaped job runs with ``resume=True`` and
replays only the unscanned remainder — the canonical report is
byte-identical to an uninterrupted run.

Fault injection: a fleet-level :class:`~repro.runtime.FaultInjector`
is consulted once per claim for each fleet point —

* ``job_interrupt`` — preempt the attempt (bounded retry + resume),
* ``worker_crash`` — the worker abandons the job *without settling*,
  exactly like a process death: the lease stops renewing and a live
  fleet's :class:`~repro.service.manager.LeaseReaper` reclaims it,
* ``lease_lost`` — the job's lease is voided mid-scan (simulating a
  reap-and-reclaim); the next heartbeat observes ``LEASE_LOST``,
* ``deadline_exceeded`` — the attempt's deadline is spent mid-scan;
  the next heartbeat requeues/quarantines through the deadline path.

Each firing point is also counted (``fault_<point>``), which is what
the CI chaos gate asserts on.
"""

from __future__ import annotations

import copy
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..geometry import region_fingerprint
from ..runtime import (
    FaultInjector,
    ScanEngine,
    ScanReport,
    ShardPlan,
    ShardPlanner,
    ShardRunner,
    merge_reports,
    scan_chip,
    metrics_snapshot,
)
from .jobs import JobRecord, JobState
from .manager import HeartbeatVerdict, JobManager
from .wire import build_engine_config, decode_layer, decode_region


class JobInterrupted(RuntimeError):
    """An injected mid-scan preemption (the ``job_interrupt`` point)."""


class JobCancelled(RuntimeError):
    """The job's cancel flag was observed at a heartbeat."""


class JobDrained(RuntimeError):
    """A drain began mid-scan; the attempt checkpoints and requeues."""


class WorkerCrashed(RuntimeError):
    """Injected worker death: abandon the job without settling it."""


class LeaseLost(RuntimeError):
    """A heartbeat found the lease reaped/re-claimed; abort, no settle."""


class JobDeadlineExceeded(RuntimeError):
    """A heartbeat spent the job/attempt deadline; the manager settled."""


#: fleet-level injection points, in firing priority per claim
_FLEET_FAULT_POINTS = (
    "worker_crash",
    "job_interrupt",
    "lease_lost",
    "deadline_exceeded",
)


class WorkerFleet:
    """N worker threads executing jobs from a :class:`JobManager`.

    Parameters
    ----------
    manager:
        The job lifecycle authority this fleet drains.
    detector:
        Prototype detector; each worker scans with its own deep copy.
    workers:
        Number of concurrent scan threads.
    faults:
        Optional :class:`~repro.runtime.FaultInjector` (or spec string)
        consulted once per claim at each fleet point (see the module
        docstring); a firing point takes effect after
        ``interrupt_after_events`` scoring heartbeats.
    interrupt_after_events:
        *Scoring* heartbeats (``event.scored > 0``) a fault-marked job
        survives before its point fires.  Counting only scoring beats —
        not the dedup fingerprint phase that precedes them — guarantees
        scored chunks, and therefore checkpoints, exist by the time the
        fault fires, so the retry genuinely resumes.
    heartbeat_every_chunks:
        Chunks between progress heartbeats (bounds cancel/drain latency
        and sets the lease-renewal cadence).
    poll_timeout_s:
        Queue-poll period; also bounds how fast :meth:`stop` lands.
    """

    def __init__(
        self,
        manager: JobManager,
        detector,
        workers: int = 1,
        *,
        faults: Union[FaultInjector, str, None] = None,
        interrupt_after_events: int = 2,
        heartbeat_every_chunks: int = 1,
        poll_timeout_s: float = 0.1,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if interrupt_after_events < 1:
            raise ValueError("interrupt_after_events must be >= 1")
        self.manager = manager
        self.detector = detector
        self.workers = workers
        self.faults = (
            FaultInjector(faults) if isinstance(faults, str) else faults
        )
        self.interrupt_after_events = interrupt_after_events
        self.heartbeat_every_chunks = heartbeat_every_chunks
        self.poll_timeout_s = poll_timeout_s
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._draining = threading.Event()
        # fires() mutates injector counters; claims race from N threads
        self._fault_lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "WorkerFleet":
        """Recover persisted state, start the lease reaper, then launch
        the worker threads."""
        if self._threads:
            raise RuntimeError("fleet already started")
        self._stop.clear()
        self._draining.clear()
        self.manager.recover()
        self.manager.start_reaper()
        for i in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(f"worker-{i}",),
                name=f"repro-scan-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, timeout: Optional[float] = None) -> None:
        """Ask the workers to finish their current job and exit."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []
        self.manager.stop_reaper()

    def drain(self, timeout: Optional[float] = 30.0) -> bool:
        """Graceful shutdown: stop admission, requeue in-flight work.

        :meth:`JobManager.begin_drain` closes the front door (submits
        shed with 503); each in-flight attempt observes the drain at its
        next heartbeat, checkpoints implicitly (checkpoints are written
        per chunk), and is :meth:`released <JobManager.release>` back to
        the queue with its attempt refunded — so the fleet that picks it
        up after the restart *resumes* the scan and serves a result
        byte-identical to an uninterrupted run.  Zero accepted jobs are
        lost.  Returns True when every worker exited within ``timeout``.
        """
        self.manager.begin_drain()
        self._draining.set()
        clean = True
        for thread in self._threads:
            thread.join(timeout)
            clean = clean and not thread.is_alive()
        self._threads = []
        self.manager.stop_reaper()
        return clean

    def __enter__(self) -> "WorkerFleet":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return any(t.is_alive() for t in self._threads)

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def wait_idle(self, timeout: float = 30.0) -> bool:
        """Block until no job is queued or running (True) or timeout."""
        deadline = threading.Event()
        poll = min(self.poll_timeout_s, 0.05)
        waited = 0.0
        while waited <= timeout:
            counts = self.manager.jobs_by_state()
            if (
                counts["queued"] == 0
                and counts["running"] == 0
                and self.manager.queue_depth() == 0
            ):
                return True
            deadline.wait(poll)
            waited += poll
        return False

    # ------------------------------------------------------------------
    # the worker loop
    # ------------------------------------------------------------------
    def _worker_loop(self, worker_name: str) -> None:
        detector = copy.deepcopy(self.detector)
        while not (self._stop.is_set() or self._draining.is_set()):
            record = self.manager.claim(worker_name, self.poll_timeout_s)
            if record is None:
                continue
            self._run_job(record, detector)

    def _armed_faults(self) -> Dict[str, bool]:
        """Consume each fleet injection point once for this claim."""
        armed: Dict[str, bool] = {}
        if self.faults is None:
            return armed
        with self._fault_lock:
            for point in _FLEET_FAULT_POINTS:
                if self.faults.fires(point):
                    armed[point] = True
        return armed

    def _run_job(self, record: JobRecord, detector) -> None:
        try:
            document, metrics = self._execute(record, detector)
        except JobDrained:
            # cooperative drain: checkpoint is on disk, attempt refunded
            self.manager.release(record)
            return
        except WorkerCrashed:
            # simulated process death: settle NOTHING — the lease just
            # stops renewing and the live fleet's reaper reclaims it
            return
        except (LeaseLost, JobDeadlineExceeded):
            # the manager settled (or re-owned) the record inside the
            # heartbeat; this attempt's outcome is void
            return
        except Exception as exc:  # lint: disable=broad-except  (every job failure — injected preemption, cancel, or a genuine scan error — must settle the record instead of killing the worker thread)
            self.manager.fail(record, exc)
            return
        self.manager.complete(record, document, metrics)

    def _execute(self, record: JobRecord, detector):
        request = record.request
        layer = decode_layer(request["layer"])
        region = decode_region(request)
        armed = self._armed_faults()
        if "worker_crash" in armed:
            self.manager.count("fault_worker_crash")
        if "job_interrupt" in armed:
            self.manager.count("fault_job_interrupt")
        if "lease_lost" in armed:
            self.manager.count("fault_lease_lost")
        if "deadline_exceeded" in armed:
            self.manager.count("fault_deadline_exceeded")
        fire_point = next(
            (p for p in _FLEET_FAULT_POINTS if p in armed), None
        )
        beats = [0]
        fired = [False]

        def on_heartbeat(event) -> None:
            if self.manager.draining:
                raise JobDrained(record.job_id)
            if event.scored > 0:
                beats[0] += 1
            if (
                fire_point is not None
                and not fired[0]
                and beats[0] >= self.interrupt_after_events
            ):
                fired[0] = True
                if fire_point == "worker_crash":
                    raise WorkerCrashed(
                        f"job {record.job_id}: worker death injected at "
                        f"scoring heartbeat {beats[0]}"
                    )
                if fire_point == "job_interrupt":
                    raise JobInterrupted(
                        f"job {record.job_id} preempted at scoring "
                        f"heartbeat {beats[0]} (injected)"
                    )
                if fire_point == "lease_lost":
                    # void the lease, then fall through: THIS beat's
                    # renewal observes LEASE_LOST
                    self.manager.break_lease(record.job_id)
                elif fire_point == "deadline_exceeded":
                    # spend the attempt budget, then fall through: THIS
                    # beat's renewal observes ATTEMPT_DEADLINE
                    self.manager.expire_attempt_deadline(record.job_id)
            verdict = self.manager.heartbeat(
                record.job_id, record.lease_token
            )
            if verdict is HeartbeatVerdict.CANCELLED:
                raise JobCancelled(record.job_id)
            if verdict is HeartbeatVerdict.LEASE_LOST:
                raise LeaseLost(record.job_id)
            if verdict in (
                HeartbeatVerdict.JOB_DEADLINE,
                HeartbeatVerdict.ATTEMPT_DEADLINE,
            ):
                raise JobDeadlineExceeded(record.job_id)

        shard = request.get("shard")
        chip = request.get("chip") or {}
        if shard is None and int(chip.get("shards", 1)) > 1 and self.workers > 1:
            # chip fan-out: this worker becomes the plan/merge
            # coordinator while the rest of the fleet drains the
            # per-shard child jobs it submits
            return self._execute_chip(record, layer, region)

        config = build_engine_config(
            request,
            checkpoint_dir=self.manager.checkpoint_dir_for(record.job_id),
            progress=on_heartbeat,
            progress_every_chunks=self.heartbeat_every_chunks,
        )
        ckpt_dir = config.checkpoint.dir
        # resume whenever a prior attempt left a checkpoint behind:
        # attempts > 1 covers failed/reaped retries, the on-disk
        # check covers drained attempts (whose attempt was refunded,
        # so the counter alone cannot tell); with nothing on disk
        # this scans from scratch either way
        resume = ckpt_dir is not None and (
            record.attempts > 1 or Path(ckpt_dir).exists()
        )
        if shard is not None:
            # one shard of a parent chip job: scan exactly the halo
            # region the plan assigned to this index
            plan = ShardPlan.from_json(shard["plan"])
            index = int(shard["index"])
            if not 0 <= index < len(plan.shards):
                raise ValueError(
                    f"shard index {index} out of range for plan "
                    f"{plan.digest} ({len(plan.shards)} shards)"
                )
            spec = plan.shards[index]
            engine = ScanEngine(detector, config=config)
            report = engine.scan(
                layer,
                spec.region,
                window_nm=plan.window_nm,
                core_nm=plan.core_nm,
                step_nm=plan.step_nm,
                keep_clips=False,
                resume=resume,
            )
            report.shard_id = spec.shard_id
            report.plan_digest = plan.digest
            return report.to_json(), metrics_snapshot(report)
        if chip:
            # inline chip scan (single-worker fleet, or shards=1):
            # scan_chip routes monolithic/sharded/instance-dedup through
            # the same plan-execute-merge path as the direct API
            report = scan_chip(
                layer,
                detector,
                config,
                region=region,
                window_nm=request["window_nm"],
                core_nm=request["core_nm"],
                step_nm=request["step_nm"],
                resume=resume,
            )
            return report.to_json(), metrics_snapshot(report)
        engine = ScanEngine(detector, config=config)
        report = engine.scan(
            layer,
            region,
            window_nm=request["window_nm"],
            core_nm=request["core_nm"],
            step_nm=request["step_nm"],
            keep_clips=False,
            resume=resume,
        )
        return report.to_json(), metrics_snapshot(report)

    # ------------------------------------------------------------------
    # chip fan-out
    # ------------------------------------------------------------------
    def _renew_lease(self, record: JobRecord) -> None:
        """Heartbeat a coordinator job while it waits on its children."""
        if self.manager.draining:
            raise JobDrained(record.job_id)
        verdict = self.manager.heartbeat(record.job_id, record.lease_token)
        if verdict is HeartbeatVerdict.CANCELLED:
            raise JobCancelled(record.job_id)
        if verdict is HeartbeatVerdict.LEASE_LOST:
            raise LeaseLost(record.job_id)
        if verdict in (
            HeartbeatVerdict.JOB_DEADLINE,
            HeartbeatVerdict.ATTEMPT_DEADLINE,
        ):
            raise JobDeadlineExceeded(record.job_id)

    def _execute_chip(self, record: JobRecord, layer, region):
        """Fan a chip job out into per-shard child jobs and merge.

        Child submission is idempotent on the parent job id, so a
        coordinator that was drained, reaped, or retried re-attaches to
        the children it already spawned instead of double-scanning.
        Shards whose halo region is an exact translated copy of another
        shard are not submitted at all — their scores are replayed from
        the canonical child at merge time (instance-level dedup).
        """
        request = record.request
        chip = request["chip"]
        t0 = time.perf_counter()
        planner = ShardPlanner(
            int(chip.get("shards", 1)),
            halo_nm=chip.get("halo_nm"),
            snap_nm=chip.get("snap_nm"),
        )
        plan = planner.plan(
            region,
            window_nm=request["window_nm"],
            core_nm=request["core_nm"],
            step_nm=request["step_nm"],
        )
        n_shards = len(plan.shards)

        # instance dedup: group congruent shards, scan one per class
        replay_of: Dict[int, int] = {}
        to_scan: List[int] = []
        if bool(chip.get("instance_dedup", True)):
            fps = [region_fingerprint(layer, s.region) for s in plan.shards]
            canon: Dict[tuple, int] = {}
            for i, spec in enumerate(plan.shards):
                key = (fps[i], spec.scan_w, spec.scan_h)
                if key in canon:
                    replay_of[i] = canon[key]
                else:
                    canon[key] = i
                    to_scan.append(i)
        else:
            to_scan = list(range(n_shards))

        # idempotent child submission keyed on (parent job id, index)
        existing: Dict[int, JobRecord] = {}
        for rec in self.manager.list_jobs():
            sh = rec.request.get("shard")
            if isinstance(sh, dict) and sh.get("parent") == record.job_id:
                existing[int(sh["index"])] = rec
        plan_doc = plan.to_json()
        children: Dict[int, str] = {}
        for i in to_scan:
            prior = existing.get(i)
            if prior is not None and prior.state not in (
                JobState.FAILED,
                JobState.CANCELLED,
                JobState.QUARANTINED,
            ):
                children[i] = prior.job_id
                continue
            spec = plan.shards[i]
            child = {
                "schema": request["schema"],
                "layer": request["layer"],
                "region": [
                    spec.region.x1,
                    spec.region.y1,
                    spec.region.x2,
                    spec.region.y2,
                ],
                "window_nm": request["window_nm"],
                "core_nm": request["core_nm"],
                "step_nm": request["step_nm"],
                "engine": dict(request.get("engine") or {}),
                "shard": {
                    "plan": plan_doc,
                    "index": i,
                    "parent": record.job_id,
                },
            }
            children[i] = self.manager.submit(
                child, client=f"chip:{record.job_id}"
            ).job_id
            self.manager.count("job_shards_spawned")

        # wait for the children, renewing this coordinator's lease
        poll = max(self.poll_timeout_s, 0.02)
        while True:
            self._renew_lease(record)
            pending = 0
            for i, job_id in children.items():
                state = self.manager.status(job_id).state
                if state is JobState.SUCCEEDED:
                    continue
                if state in (
                    JobState.FAILED,
                    JobState.CANCELLED,
                    JobState.QUARANTINED,
                ):
                    raise RuntimeError(
                        f"shard job {job_id} (index {i}) settled "
                        f"{state.value}; chip job cannot merge"
                    )
                pending += 1
            if pending == 0:
                break
            time.sleep(poll)

        reports: List[Optional[ScanReport]] = [None] * n_shards
        for i, job_id in children.items():
            reports[i] = ScanReport.from_json(
                self.manager.result(job_id).document
            )
        for i in sorted(replay_of):
            src = reports[replay_of[i]]
            assert src is not None
            reports[i] = ShardRunner.replay_report(plan, plan.shards[i], src)
        done = [r for r in reports if r is not None]
        merged = merge_reports(
            plan, done, layer=layer, elapsed_s=time.perf_counter() - t0
        )
        tele = merged.telemetry
        assert tele is not None
        tele.count("shard_scans", len(to_scan))
        tele.count(
            "shard_windows_scanned",
            sum(plan.shards[i].n_windows for i in to_scan),
        )
        tele.count("shard_replays", len(replay_of))
        tele.count(
            "shard_windows_replayed",
            sum(plan.shards[i].n_windows for i in replay_of),
        )
        self.manager.count("job_chip_merged")
        return merged.to_json(), metrics_snapshot(merged)

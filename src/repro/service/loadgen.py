"""Closed-loop load generator for the scan service HTTP API.

``concurrency`` client threads each submit a job, poll it to a terminal
state, and fetch the result — then immediately submit the next, until
``jobs`` total have been pushed through.  Per-job latency is measured
submit-to-result-fetched (the full client experience, queue wait
included), so throughput and the latency percentiles in the resulting
:class:`LoadReport` are what an external caller would actually observe.

This is the engine behind ``scripts/service_loadgen.py`` and the
``benchmarks/test_service_throughput.py`` smoke that writes
``BENCH_service.json``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .client import ServiceClient, ServiceError

#: latency quantiles a LoadReport always carries
PERCENTILES: Tuple[float, ...] = (0.50, 0.90, 0.99)


def _percentile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolated quantile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


@dataclass
class LoadReport:
    """Aggregated outcome of one load-generator run.

    ``retries_429`` / ``retries_503`` sum the clients' automatic
    backoff retries (throttled vs load-shed/draining submissions), so a
    backpressure bench can report the shed rate the fleet imposed while
    still completing every job.
    """

    jobs: int
    concurrency: int
    succeeded: int
    failed: int
    elapsed_s: float
    latencies_s: List[float] = field(default_factory=list)
    retries_429: int = 0
    retries_503: int = 0

    @property
    def throughput_jobs_per_s(self) -> float:
        return self.succeeded / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def latency_summary(self) -> Dict[str, float]:
        ordered = sorted(self.latencies_s)
        summary = {
            "mean_s": (
                sum(ordered) / len(ordered) if ordered else 0.0
            ),
            "max_s": ordered[-1] if ordered else 0.0,
        }
        for q in PERCENTILES:
            summary[f"p{int(q * 100)}_s"] = _percentile(ordered, q)
        return summary

    @property
    def shed_rate(self) -> float:
        """503 retries per *completed* job (how hard the door pushed back)."""
        done = self.succeeded + self.failed
        return self.retries_503 / done if done > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "concurrency": self.concurrency,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "elapsed_s": self.elapsed_s,
            "throughput_jobs_per_s": self.throughput_jobs_per_s,
            "retries_429": self.retries_429,
            "retries_503": self.retries_503,
            "shed_rate": self.shed_rate,
            "latency": self.latency_summary(),
        }


class LoadGenerator:
    """Drive ``jobs`` identical requests through a service, closed-loop."""

    def __init__(
        self,
        base_url: str,
        request: Dict[str, object],
        jobs: int = 16,
        concurrency: int = 4,
        job_timeout_s: float = 300.0,
        poll_s: float = 0.02,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.base_url = base_url
        self.request = request
        self.jobs = jobs
        self.concurrency = min(concurrency, jobs)
        self.job_timeout_s = job_timeout_s
        self.poll_s = poll_s

    def run(self) -> LoadReport:
        remaining = [self.jobs]  # shared budget, guarded by lock
        lock = threading.Lock()
        latencies: List[float] = []
        failures = [0]
        retry_totals = {"retries_429": 0, "retries_503": 0}

        def client_loop(index: int) -> None:
            client = ServiceClient(
                self.base_url,
                client_id=f"loadgen-{index}",
                # generous retry budget: a backpressure bench WANTS the
                # clients to absorb 503s and finish every job anyway
                max_retries=50,
            )
            try:
                while True:
                    with lock:
                        if remaining[0] <= 0:
                            return
                        remaining[0] -= 1
                    started = time.monotonic()
                    try:
                        client.run(
                            self.request,
                            timeout_s=self.job_timeout_s,
                            poll_s=self.poll_s,
                        )
                    except (ServiceError, TimeoutError, OSError):
                        with lock:
                            failures[0] += 1
                        continue
                    elapsed = time.monotonic() - started
                    with lock:
                        latencies.append(elapsed)
            finally:
                with lock:
                    for key in retry_totals:
                        retry_totals[key] += client.stats.get(key, 0)

        threads = [
            threading.Thread(
                target=client_loop, args=(i,), name=f"loadgen-{i}", daemon=True
            )
            for i in range(self.concurrency)
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - started
        return LoadReport(
            jobs=self.jobs,
            concurrency=self.concurrency,
            succeeded=len(latencies),
            failed=failures[0],
            elapsed_s=elapsed,
            latencies_s=latencies,
            retries_429=retry_totals["retries_429"],
            retries_503=retry_totals["retries_503"],
        )

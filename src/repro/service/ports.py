"""The four ports the service logic is written against.

:class:`JobManager` and :class:`~repro.service.fleet.WorkerFleet` never
touch a concrete backend: they speak to a :class:`JobStore` (durable
record state), a :class:`JobQueue` (dispatch order), a
:class:`ResultStore` (finished report documents + metrics snapshots),
and a :class:`RateLimiter` (admission control).  The in-memory adapters
(:mod:`~repro.service.memory`) serve tests and single-process
deployments; the file-backed ones (:mod:`~repro.service.filestore`)
survive restarts; a Redis/SQS-class backend is one subclass per port
away and requires no change to the service logic.

Contract notes shared by all adapters:

* :meth:`JobStore.update` is the **only** mutation primitive — an
  atomic read-modify-write under the store's lock, so submit/cancel and
  claim/cancel races resolve to exactly one winner,
* :meth:`JobQueue.pop` blocks up to ``timeout`` and may return a stale
  id (the job was cancelled after being enqueued); consumers re-check
  state through the store's atomic update before running anything,
* every method is safe to call from multiple threads.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .jobs import JobRecord


class JobNotFound(KeyError):
    """No job with that id (or its result is gone)."""


class RateLimited(RuntimeError):
    """Submission refused by the rate limiter (HTTP 429).

    ``retry_after_s`` is the server's polite hint for when the refused
    client should try again; the HTTP layer surfaces it as a
    ``Retry-After`` header and :class:`~repro.service.client
    .ServiceClient` honours it in its retry backoff.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class QueueFull(RuntimeError):
    """Submission shed: the queue is at its admission cap (HTTP 503)."""

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceDraining(RuntimeError):
    """Submission refused: the service is draining for shutdown (503)."""

    def __init__(self, message: str, retry_after_s: float = 5.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


@dataclass(frozen=True)
class StoredResult:
    """What the result store keeps per finished job.

    ``document`` is the exact :meth:`ScanReport.to_json()
    <repro.runtime.ScanReport.to_json>` string the worker produced —
    stored verbatim so a fetched result round-trips byte-identically.
    ``metrics`` is the :func:`repro.runtime.metrics_snapshot` of the
    same report, aggregated by ``GET /metrics``.
    """

    job_id: str
    document: str
    metrics: Dict[str, object]


class JobStore(ABC):
    """Durable ``job_id -> JobRecord`` state."""

    @abstractmethod
    def put(self, record: JobRecord) -> None:
        """Create (or overwrite) a record."""

    @abstractmethod
    def get(self, job_id: str) -> Optional[JobRecord]:
        """The current record, or None."""

    @abstractmethod
    def update(
        self, job_id: str, mutate: Callable[[JobRecord], Optional[JobRecord]]
    ) -> Optional[JobRecord]:
        """Atomic read-modify-write.

        ``mutate`` receives the current record and returns the
        replacement, or ``None`` to leave the record unchanged (the
        conditional-claim idiom).  Returns what ``mutate`` returned;
        raises :class:`JobNotFound` for an unknown id.  The callback
        runs under the store lock — keep it cheap and side-effect-free.
        """

    @abstractmethod
    def list_records(self) -> List[JobRecord]:
        """Every record, ordered by submission ``seq``."""

    @abstractmethod
    def delete(self, job_id: str) -> bool:
        """Remove a record; True when something was removed."""


class JobQueue(ABC):
    """FIFO dispatch order for queued job ids."""

    @abstractmethod
    def push(self, job_id: str) -> None:
        """Append an id."""

    @abstractmethod
    def pop(self, timeout: Optional[float] = None) -> Optional[str]:
        """Pop the oldest id, blocking up to ``timeout`` seconds.

        ``None`` on timeout.  May hand back an id whose job has since
        been cancelled — consumers must re-check via the job store.
        """

    @abstractmethod
    def clear(self) -> None:
        """Drop every queued id (recovery rebuilds from the store)."""

    @abstractmethod
    def __len__(self) -> int:
        """Ids currently queued."""


class ResultStore(ABC):
    """Finished-report storage, keyed by job id."""

    @abstractmethod
    def put(self, result: StoredResult) -> None:
        """Persist a finished job's result."""

    @abstractmethod
    def get(self, job_id: str) -> Optional[StoredResult]:
        """The stored result, or None."""

    @abstractmethod
    def delete(self, job_id: str) -> bool:
        """Remove a result; True when something was removed."""


class RateLimiter(ABC):
    """Admission control for submissions, keyed per client."""

    @abstractmethod
    def allow(self, key: str) -> bool:
        """Consume one submission credit for ``key``; False = refuse."""

    def retry_after_s(self, key: str) -> float:
        """Seconds until ``key`` plausibly has credit again (a hint —
        surfaced as ``Retry-After``; adapters may refine it)."""
        return 1.0

"""File-backed adapters: crash-safe persistence for the service state.

One directory tree per service instance::

    <root>/jobs/<job_id>.json          job records (atomic writes)
    <root>/queue/<seq>-<job_id>.entry  pending dispatch order
    <root>/results/<job_id>.report.json + <job_id>.metrics.json

Durability rules, matching the PR-4 cache/checkpoint conventions:

* every write is **atomic** — tmp file in the same directory, then
  ``os.replace``; a crash mid-write never leaves a half-record visible,
* a truncated or corrupt entry found on read is **quarantined**
  (renamed ``*.quarantined`` via
  :func:`repro.runtime.quarantine_file`) and reported through the
  adapter's ``on_quarantine`` hook instead of crashing the fleet —
  evidence is preserved, service keeps running,
* queue entries are *hints*, not truth: :meth:`JobManager.recover
  <repro.service.manager.JobManager.recover>` rebuilds the queue from
  the job store after a restart, so a crash between queue-pop and
  job-claim loses nothing and duplicates nothing.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..runtime import quarantine_file
from .jobs import JobRecord
from .ports import (
    JobNotFound,
    JobQueue,
    JobStore,
    ResultStore,
    StoredResult,
)

PathLike = Union[str, Path]

#: signature of the corrupt-entry hook: (kind, quarantined_path)
QuarantineHook = Callable[[str, Path], None]


def _atomic_write_text(path: Path, text: str) -> None:
    """Write-then-rename so readers never observe a partial file."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


class FileJobStore(JobStore):
    """One JSON document per job under ``<root>/jobs/``."""

    def __init__(
        self, root: PathLike, on_quarantine: Optional[QuarantineHook] = None
    ) -> None:
        self.dir = Path(root) / "jobs"
        self.dir.mkdir(parents=True, exist_ok=True)
        self.on_quarantine = on_quarantine
        self._lock = threading.RLock()

    def _path(self, job_id: str) -> Path:
        return self.dir / f"{job_id}.json"

    def _read(self, path: Path) -> Optional[JobRecord]:
        """Parse one record file; quarantine instead of raising on junk."""
        try:
            return JobRecord.from_dict(
                json.loads(path.read_text(encoding="utf-8"))
            )
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            quarantined = quarantine_file(path)
            if self.on_quarantine is not None:
                self.on_quarantine("job", quarantined)
            return None

    def put(self, record: JobRecord) -> None:
        with self._lock:
            _atomic_write_text(
                self._path(record.job_id),
                json.dumps(record.to_dict(), sort_keys=True),
            )

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._read(self._path(job_id))

    def update(
        self, job_id: str, mutate: Callable[[JobRecord], Optional[JobRecord]]
    ) -> Optional[JobRecord]:
        with self._lock:
            record = self._read(self._path(job_id))
            if record is None:
                raise JobNotFound(job_id)
            replacement = mutate(record)
            if replacement is not None:
                self.put(replacement)
            return replacement

    def list_records(self) -> List[JobRecord]:
        with self._lock:
            records = []
            for path in sorted(self.dir.glob("*.json")):
                record = self._read(path)
                if record is not None:
                    records.append(record)
            return sorted(records, key=lambda r: r.seq)

    def delete(self, job_id: str) -> bool:
        with self._lock:
            path = self._path(job_id)
            if not path.exists():
                return False
            path.unlink()
            return True


class FileJobQueue(JobQueue):
    """Pending order as empty marker files under ``<root>/queue/``.

    Entry names are ``<seq>-<job_id>.entry`` with a strictly increasing
    zero-padded sequence (resumed past the largest on-disk entry at
    startup), so lexicographic order *is* FIFO order across restarts.
    ``pop`` unlinks the entry it returns — at-most-once dispatch from
    the queue's side; exactly-once execution is the job store's atomic
    claim, which tolerates both lost and duplicated queue entries.
    """

    _POLL_S = 0.05

    def __init__(self, root: PathLike) -> None:
        self.dir = Path(root) / "queue"
        self.dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Condition()
        existing = [
            int(p.name.split("-", 1)[0])
            for p in self.dir.glob("*.entry")
            if p.name.split("-", 1)[0].isdigit()
        ]
        self._seq = (max(existing) + 1) if existing else 0

    def _entries(self) -> List[Path]:
        return sorted(self.dir.glob("*.entry"))

    def push(self, job_id: str) -> None:
        with self._lock:
            path = self.dir / f"{self._seq:020d}-{job_id}.entry"
            self._seq += 1
            _atomic_write_text(path, "")
            self._lock.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[str]:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                entries = self._entries()
                if entries:
                    head = entries[0]
                    head.unlink()
                    name = head.name[: -len(".entry")]
                    return name.split("-", 1)[1]
                # wake on same-process pushes; poll for foreign writers
                if deadline is None:
                    self._lock.wait(self._POLL_S)
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._lock.wait(min(self._POLL_S, remaining))

    def clear(self) -> None:
        with self._lock:
            for path in self._entries():
                path.unlink()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries())


class FileResultStore(ResultStore):
    """Report document + metrics snapshot under ``<root>/results/``.

    The report is stored **verbatim** (the exact ``ScanReport.to_json``
    string) so a fetched result is byte-identical to what the worker
    produced; the metrics snapshot is a sibling JSON document.
    """

    def __init__(
        self, root: PathLike, on_quarantine: Optional[QuarantineHook] = None
    ) -> None:
        self.dir = Path(root) / "results"
        self.dir.mkdir(parents=True, exist_ok=True)
        self.on_quarantine = on_quarantine
        self._lock = threading.RLock()

    def _report_path(self, job_id: str) -> Path:
        return self.dir / f"{job_id}.report.json"

    def _metrics_path(self, job_id: str) -> Path:
        return self.dir / f"{job_id}.metrics.json"

    def put(self, result: StoredResult) -> None:
        with self._lock:
            _atomic_write_text(self._report_path(result.job_id), result.document)
            _atomic_write_text(
                self._metrics_path(result.job_id),
                json.dumps(result.metrics, sort_keys=True),
            )

    def get(self, job_id: str) -> Optional[StoredResult]:
        with self._lock:
            report_path = self._report_path(job_id)
            try:
                document = report_path.read_text(encoding="utf-8")
            except FileNotFoundError:
                return None
            metrics: Dict[str, object] = {}
            metrics_path = self._metrics_path(job_id)
            try:
                metrics = json.loads(metrics_path.read_text(encoding="utf-8"))
            except FileNotFoundError:
                pass
            except json.JSONDecodeError:
                quarantined = quarantine_file(metrics_path)
                if self.on_quarantine is not None:
                    self.on_quarantine("metrics", quarantined)
            # the report document must itself be valid JSON; a truncated
            # write (crash, disk-full) is quarantined like a bad cache
            try:
                json.loads(document)
            except json.JSONDecodeError:
                quarantined = quarantine_file(report_path)
                if self.on_quarantine is not None:
                    self.on_quarantine("result", quarantined)
                return None
            return StoredResult(job_id=job_id, document=document, metrics=metrics)

    def delete(self, job_id: str) -> bool:
        with self._lock:
            removed = False
            for path in (self._report_path(job_id), self._metrics_path(job_id)):
                if path.exists():
                    path.unlink()
                    removed = True
            return removed

"""In-memory adapters: the default single-process backends.

Everything lives in plain dicts/deques under locks — zero I/O, exactly
the semantics the ports promise, and fast enough that the test suite
and the load-generator bench run the full service stack in-process.
State dies with the process; use the file-backed adapters
(:mod:`~repro.service.filestore`) when jobs must survive a restart.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from .jobs import JobRecord
from .ports import (
    JobNotFound,
    JobQueue,
    JobStore,
    RateLimiter,
    ResultStore,
    StoredResult,
)


class InMemoryJobStore(JobStore):
    """Dict-backed record store; ``update`` runs under one lock."""

    def __init__(self) -> None:
        self._records: Dict[str, JobRecord] = {}
        self._lock = threading.RLock()

    def put(self, record: JobRecord) -> None:
        with self._lock:
            self._records[record.job_id] = record

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._records.get(job_id)

    def update(
        self, job_id: str, mutate: Callable[[JobRecord], Optional[JobRecord]]
    ) -> Optional[JobRecord]:
        with self._lock:
            record = self._records.get(job_id)
            if record is None:
                raise JobNotFound(job_id)
            replacement = mutate(record)
            if replacement is not None:
                self._records[job_id] = replacement
            return replacement

    def list_records(self) -> List[JobRecord]:
        with self._lock:
            return sorted(self._records.values(), key=lambda r: r.seq)

    def delete(self, job_id: str) -> bool:
        with self._lock:
            return self._records.pop(job_id, None) is not None


class InMemoryJobQueue(JobQueue):
    """Deque + condition variable: blocking FIFO for worker threads."""

    def __init__(self) -> None:
        self._ids: Deque[str] = deque()
        self._cond = threading.Condition()

    def push(self, job_id: str) -> None:
        with self._cond:
            self._ids.append(job_id)
            self._cond.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[str]:
        with self._cond:
            if not self._ids:
                self._cond.wait(timeout)
            if not self._ids:
                return None
            return self._ids.popleft()

    def clear(self) -> None:
        with self._cond:
            self._ids.clear()

    def __len__(self) -> int:
        with self._cond:
            return len(self._ids)


class InMemoryResultStore(ResultStore):
    """Dict-backed result storage."""

    def __init__(self) -> None:
        self._results: Dict[str, StoredResult] = {}
        self._lock = threading.RLock()

    def put(self, result: StoredResult) -> None:
        with self._lock:
            self._results[result.job_id] = result

    def get(self, job_id: str) -> Optional[StoredResult]:
        with self._lock:
            return self._results.get(job_id)

    def delete(self, job_id: str) -> bool:
        with self._lock:
            return self._results.pop(job_id, None) is not None


class TokenBucketRateLimiter(RateLimiter):
    """Classic token bucket, one bucket per client key.

    Each key accrues ``rate`` tokens/second up to ``burst``; a
    submission costs one token.  State is process-local by design — a
    distributed limiter is another adapter behind the same port.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0 tokens/second")
        self.rate = float(rate)
        self.burst = float(burst if burst is not None else max(1, int(rate)))
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens: Dict[str, float] = {}
        self._stamp: Dict[str, float] = {}

    def allow(self, key: str) -> bool:
        with self._lock:
            now = self._clock()
            tokens = self._tokens.get(key, self.burst)
            last = self._stamp.get(key, now)
            tokens = min(self.burst, tokens + (now - last) * self.rate)
            self._stamp[key] = now
            if tokens < 1.0:
                self._tokens[key] = tokens
                return False
            self._tokens[key] = tokens - 1.0
            return True

    def retry_after_s(self, key: str) -> float:
        """Seconds until ``key`` accrues its next whole token."""
        with self._lock:
            tokens = self._tokens.get(key, self.burst)
            if tokens >= 1.0:
                return 0.0
            return (1.0 - tokens) / self.rate


class NullRateLimiter(RateLimiter):
    """Admission control disabled: every submission is allowed."""

    def allow(self, key: str) -> bool:
        return True

"""Stdlib HTTP front door for the scan service.

Routes (JSON in, JSON out unless noted):

========  ========================  =========================================
method    path                      meaning
========  ========================  =========================================
POST      ``/jobs``                 submit a job request → 202 + job status;
                                    429 + ``Retry-After`` (rate limit) or
                                    503 + ``Retry-After`` (queue full /
                                    draining — load shed)
GET       ``/jobs/<id>``            job status document (error chain
                                    included for failed/quarantined jobs)
GET       ``/jobs/<id>/result``     the **verbatim** ``ScanReport.to_json()``
                                    document (409 while non-terminal)
GET       ``/jobs/<id>/metrics``    the job's scan metrics snapshot
DELETE    ``/jobs/<id>``            cancel (active) / delete (terminal)
DELETE    ``/drain``                begin a graceful drain → 202 (admission
                                    closes, in-flight attempts checkpoint
                                    and requeue, workers exit)
GET       ``/metrics``              Prometheus text: service counters,
                                    jobs-by-state gauges, aggregated scan
                                    counters over all completed jobs
GET       ``/healthz``              liveness + job/queue accounting
GET       ``/readyz``               readiness: 200 while accepting work,
                                    503 + ``Retry-After`` while draining or
                                    at the queue cap (load balancers route
                                    on this; liveness stays green)
========  ========================  =========================================

Everything is ``http.server`` from the standard library —
:class:`ThreadingHTTPServer` with one request per thread — because the
service must run where the scan runtime runs: no framework, no new
dependency.  The handler only *translates* (HTTP ↔ manager calls and
their exceptions); all state logic lives in
:class:`~repro.service.manager.JobManager`, which is what the unit
tests exercise directly.

The result route returns the stored report byte-for-byte: the string the
worker produced is the string the client receives, so the CI smoke can
assert canonical equality between an HTTP-fetched report and a direct
:class:`~repro.runtime.ScanEngine` run.
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from ..runtime import BASELINE_COUNTERS
from .fleet import WorkerFleet
from .manager import JobManager
from .ports import JobNotFound, QueueFull, RateLimited, ServiceDraining
from .wire import WireError

#: request body ceiling (a full-chip layer encodes to well under this)
MAX_BODY_BYTES = 64 * 1024 * 1024

#: counter families the service exposition includes (everything else in
#: BASELINE_COUNTERS is a per-scan engine counter)
_SERVICE_EVENT_PREFIXES = (
    "job_",
    "service_",
    "lease_",
    "fault_job_",
    "fault_worker_crash",
    "fault_lease_lost",
    "fault_deadline_exceeded",
)


def retry_after_header(seconds: float) -> str:
    """``Retry-After`` is whole seconds on the wire; round up, floor 1."""
    return str(max(1, int(math.ceil(seconds))))


def service_prometheus(manager: JobManager) -> str:
    """Render the service's aggregate state in Prometheus text exposition.

    Three families:

    * ``repro_service_events_total{event=...}`` — the ``job_*`` /
      ``lease_*`` / ``service_*`` counters (zero-seeded, so the key set
      is identical on a fresh and a busy service),
    * ``repro_service_jobs{state=...}`` + ``repro_service_queue_depth``
      — current job accounting,
    * ``repro_scan_events_total{event=...}`` — scan counters summed
      over every completed job (same names the per-scan snapshot uses).
    """
    lines = []
    events: Dict[str, int] = {
        name: 0
        for name in BASELINE_COUNTERS
        if name.startswith(_SERVICE_EVENT_PREFIXES)
    }
    events.update(manager.telemetry.counters)
    lines.append(
        "# HELP repro_service_events_total Service lifecycle counters."
    )
    lines.append("# TYPE repro_service_events_total counter")
    for name in sorted(events):
        lines.append(
            f'repro_service_events_total{{event="{name}"}} {events[name]}'
        )
    lines.append("# HELP repro_service_jobs Jobs currently in each state.")
    lines.append("# TYPE repro_service_jobs gauge")
    by_state = manager.jobs_by_state()
    for state in sorted(by_state):
        lines.append(f'repro_service_jobs{{state="{state}"}} {by_state[state]}')
    lines.append("# HELP repro_service_queue_depth Pending queue entries.")
    lines.append("# TYPE repro_service_queue_depth gauge")
    lines.append(f"repro_service_queue_depth {manager.queue_depth()}")
    scan = {name: 0 for name in BASELINE_COUNTERS}
    scan.update(manager.scan_aggregate())
    lines.append(
        "# HELP repro_scan_events_total Scan counters summed over all "
        "completed jobs."
    )
    lines.append("# TYPE repro_scan_events_total counter")
    for name in sorted(scan):
        lines.append(
            f'repro_scan_events_total{{event="{name}"}} {scan[name]}'
        )
    return "\n".join(lines) + "\n"


class _Handler(BaseHTTPRequestHandler):
    """One request: route, call the manager, translate the outcome."""

    # set per server by ScanService
    manager: JobManager = None  # type: ignore[assignment]
    service: Optional["ScanService"] = None
    quiet: bool = True
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        if status >= 400:
            self.manager.count("service_http_errors")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._send(
            status,
            json.dumps(payload, sort_keys=True).encode("utf-8"),
            headers=headers,
        )

    def _error(
        self,
        status: int,
        message: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._send_json(status, {"error": message}, headers=headers)

    def _shed(self, status: int, message: str, retry_after_s: float) -> None:
        """A load-shedding refusal: the client should back off and retry."""
        self._error(
            status,
            message,
            headers={"Retry-After": retry_after_header(retry_after_s)},
        )

    def _read_body(self) -> Optional[Dict[str, object]]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            self._error(400, "request body required")
            return None
        if length > MAX_BODY_BYTES:
            self._error(413, f"body exceeds {MAX_BODY_BYTES} bytes")
            return None
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._error(400, f"body is not valid JSON: {exc}")
            return None
        if not isinstance(payload, dict):
            self._error(400, "body must be a JSON object")
            return None
        return payload

    def _job_id(self) -> Tuple[Optional[str], Optional[str]]:
        """(job_id, subresource) parsed from ``/jobs/...`` paths."""
        parts = [p for p in self.path.split("/") if p]
        if len(parts) >= 2 and parts[0] == "jobs":
            return parts[1], parts[2] if len(parts) > 2 else None
        return None, None

    def _ready(self) -> Tuple[bool, str, float]:
        """(ready, reason, retry_after_s) for the readiness gate."""
        if self.manager.draining:
            return False, "draining", 5.0
        depth = self.manager.queue_depth()
        cap = self.manager.max_queue_depth
        if cap is not None and depth >= cap:
            return False, f"queue full ({depth}/{cap})", 1.0
        return True, "ok", 0.0

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def do_POST(self) -> None:
        self.manager.count("service_http_requests")
        if self.path.rstrip("/") != "/jobs":
            self._error(404, f"no such route: POST {self.path}")
            return
        payload = self._read_body()
        if payload is None:
            return
        client = self.headers.get("X-Client", self.client_address[0])
        try:
            record = self.manager.submit(payload, client=client)
        except WireError as exc:
            self._error(400, str(exc))
            return
        except RateLimited as exc:
            self._shed(429, str(exc), exc.retry_after_s)
            return
        except (QueueFull, ServiceDraining) as exc:
            self._shed(503, str(exc), exc.retry_after_s)
            return
        self._send_json(202, record.public_dict())

    def do_GET(self) -> None:
        self.manager.count("service_http_requests")
        if self.path.rstrip("/") == "/healthz":
            self._send_json(
                200,
                {
                    "status": "ok",
                    "draining": self.manager.draining,
                    "jobs": self.manager.jobs_by_state(),
                    "queue_depth": self.manager.queue_depth(),
                },
            )
            return
        if self.path.rstrip("/") == "/readyz":
            ready, reason, retry_after_s = self._ready()
            if ready:
                self._send_json(200, {"status": "ready"})
            else:
                self._send_json(
                    503,
                    {"status": "not_ready", "reason": reason},
                    headers={
                        "Retry-After": retry_after_header(retry_after_s)
                    },
                )
            return
        if self.path.rstrip("/") == "/metrics":
            self._send(
                200,
                service_prometheus(self.manager).encode("utf-8"),
                content_type="text/plain; version=0.0.4",
            )
            return
        job_id, sub = self._job_id()
        if job_id is None:
            self._error(404, f"no such route: GET {self.path}")
            return
        try:
            record = self.manager.status(job_id)
        except JobNotFound:
            self._error(404, f"no such job: {job_id}")
            return
        if sub is None:
            self._send_json(200, record.public_dict())
        elif sub in ("result", "metrics"):
            if not record.terminal:
                self._error(
                    409, f"job {job_id} is still {record.state.value}"
                )
                return
            try:
                stored = self.manager.result(job_id)
            except JobNotFound:
                self._error(
                    409,
                    f"job {job_id} finished {record.state.value} with no "
                    f"result ({record.error or 'no error recorded'})",
                )
                return
            if sub == "result":
                # verbatim bytes: exactly the worker's ScanReport.to_json()
                self._send(200, stored.document.encode("utf-8"))
            else:
                self._send_json(200, dict(stored.metrics))
        else:
            self._error(404, f"no such route: GET {self.path}")

    def do_DELETE(self) -> None:
        self.manager.count("service_http_requests")
        if self.path.rstrip("/") == "/drain":
            # 202 now; the drain itself runs off-thread because joining
            # the workers from a request handler would deadlock a
            # single-connection client waiting on this response
            if self.service is not None:
                threading.Thread(
                    target=self.service.drain,
                    name="repro-service-drain",
                    daemon=True,
                ).start()
            else:
                self.manager.begin_drain()
            self._send_json(202, {"status": "draining"})
            return
        job_id, sub = self._job_id()
        if job_id is None or sub is not None:
            self._error(404, f"no such route: DELETE {self.path}")
            return
        try:
            record = self.manager.delete(job_id)
        except JobNotFound:
            self._error(404, f"no such job: {job_id}")
            return
        self._send_json(200, record.public_dict())


class ScanService:
    """The assembled service: manager + optional fleet + HTTP server.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    :meth:`start`.  Usable as a context manager; :meth:`stop` shuts the
    HTTP listener down first (no new work) and then the fleet.

    :meth:`drain` is the graceful path (``SIGTERM`` / ``DELETE
    /drain``): admission closes, in-flight attempts checkpoint and
    requeue, workers exit — but the HTTP listener stays up so clients
    can keep polling statuses and fetching finished results; the process
    supervisor calls :meth:`stop` once :attr:`drained` is set.
    """

    def __init__(
        self,
        manager: JobManager,
        fleet: Optional[WorkerFleet] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        quiet: bool = True,
    ) -> None:
        self.manager = manager
        self.fleet = fleet
        self.host = host
        self.port = port
        self.quiet = quiet
        #: set once a drain has fully completed (workers exited)
        self.drained = threading.Event()
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise RuntimeError("service not started")
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ScanService":
        if self._server is not None:
            raise RuntimeError("service already started")
        self.drained.clear()
        handler = type(
            "BoundHandler",
            (_Handler,),
            {"manager": self.manager, "service": self, "quiet": self.quiet},
        )
        self._server = ThreadingHTTPServer((self.host, self.port), handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-scan-service",
            daemon=True,
        )
        self._thread.start()
        if self.fleet is not None:
            self.fleet.start()
        return self

    def drain(self, timeout: Optional[float] = 30.0) -> bool:
        """Graceful drain: close admission, requeue in-flight, keep
        serving reads.  Returns True when the workers exited in time."""
        self.manager.begin_drain()
        clean = True
        if self.fleet is not None:
            clean = self.fleet.drain(timeout)
        self.drained.set()
        return clean

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self.fleet is not None:
            self.fleet.stop()

    def __enter__(self) -> "ScanService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def serve(
    manager: JobManager,
    fleet: Optional[WorkerFleet] = None,
    host: str = "127.0.0.1",
    port: int = 8787,
    quiet: bool = False,
) -> ScanService:
    """Start a :class:`ScanService` and return it (already listening)."""
    return ScanService(
        manager, fleet=fleet, host=host, port=port, quiet=quiet
    ).start()

"""Shared cache counter-ledger consistency checking.

Both bounded LRU caches in the library — the score memoization map
(:class:`repro.runtime.cache.ScoreCache`) and the feature memoization
wrapper (:class:`repro.features.base.CachingExtractor`) — expose
hit/miss/eviction counters that dashboards and tests read.  Those
counters historically drifted from the cache contents: ``clear()``
emptied the map but left the counters standing, and a bulk reload
re-based some counters but not others, so ``evictions`` could end up
claiming more departures than entries that ever existed.

This module pins the counters to one **ledger invariant**:

    ``inserts - evictions - removed == size``

where ``inserts`` counts entries that entered the map (bulk loads
re-base it to the loaded size), ``evictions`` counts capacity-pressure
departures, and ``removed`` counts explicit departures (``clear()``).
Every mutation path on both caches maintains the identity, and
:func:`assert_counters_consistent` is the shared self-check both caches
and their tests call to prove it.
"""

from __future__ import annotations

from typing import Dict


class CounterDriftError(AssertionError):
    """A cache's counters no longer account for its contents."""


def counter_ledger(cache) -> Dict[str, int]:
    """The counter ledger of a cache as one plain dict.

    Works for any object exposing ``inserts``/``evictions``/``removed``
    integer attributes plus either ``__len__`` or ``cache_size()``.
    """
    if hasattr(cache, "__len__"):
        size = len(cache)
    else:
        size = cache.cache_size()
    return {
        "inserts": int(cache.inserts),
        "evictions": int(cache.evictions),
        "removed": int(cache.removed),
        "size": int(size),
    }


def assert_counters_consistent(cache, label: str = "cache") -> Dict[str, int]:
    """Verify the ledger invariant; returns the ledger on success.

    Raises :class:`CounterDriftError` naming the cache and showing the
    full ledger when ``inserts - evictions - removed != size`` — the
    signature of a mutation path that touched the map without updating
    its counters (or vice versa).
    """
    ledger = counter_ledger(cache)
    balance = ledger["inserts"] - ledger["evictions"] - ledger["removed"]
    if balance != ledger["size"]:
        raise CounterDriftError(
            f"{label}: counter ledger drifted from contents: "
            f"inserts({ledger['inserts']}) - evictions({ledger['evictions']})"
            f" - removed({ledger['removed']}) = {balance} "
            f"!= size({ledger['size']})"
        )
    return ledger

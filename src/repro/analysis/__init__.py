"""Static analysis tooling: the project-specific AST lint pass.

Exposed on the command line as ``repro-lhd lint``.  The engine and the
rule catalog are split — :mod:`.lint` owns walking, suppressions, and
formatting; :mod:`.rules` holds one class per project rule.
"""

from .lint import (
    FileContext,
    LintDiagnostic,
    LintRule,
    all_rules,
    format_findings,
    lint_paths,
    lint_source,
    register_rule,
)

__all__ = [
    "FileContext",
    "LintDiagnostic",
    "LintRule",
    "all_rules",
    "format_findings",
    "lint_paths",
    "lint_source",
    "register_rule",
]

"""Static analysis tooling: per-file lint plus the project-wide analyzer.

Exposed on the command line as ``repro-lhd lint``.  Four layers:

* :mod:`.lint` — the per-file engine: walking, suppressions, formatting;
* :mod:`.rules` — one class per per-file AST rule;
* :mod:`.project` — the whole-project index (symbol table, import
  graph, call facts, ``@shaped`` specs, counter increments) and the
  incremental :func:`analyze_paths` driver with its ``.lint_cache``;
* :mod:`.semantic_rules` — cross-file rules (contract flow, counter
  registry, concurrency discipline) over the index.

:mod:`.sarif` renders any finding list as SARIF 2.1.0 for CI upload.
"""

from .cache import LintCache
from .lint import (
    FileContext,
    LintDiagnostic,
    LintRule,
    all_rules,
    format_findings,
    lint_paths,
    lint_source,
    register_rule,
)
from .project import (
    AnalysisResult,
    AnalysisStats,
    ProjectIndex,
    analyze_paths,
    build_project_index,
    module_name_for,
)
from .sarif import format_sarif, sarif_document
from .semantic_rules import (
    SemanticRule,
    all_semantic_rules,
    register_semantic_rule,
)

__all__ = [
    "AnalysisResult",
    "AnalysisStats",
    "FileContext",
    "LintCache",
    "LintDiagnostic",
    "LintRule",
    "ProjectIndex",
    "SemanticRule",
    "all_rules",
    "all_semantic_rules",
    "analyze_paths",
    "build_project_index",
    "format_findings",
    "format_sarif",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "register_rule",
    "register_semantic_rule",
    "sarif_document",
]

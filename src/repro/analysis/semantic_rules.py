"""Cross-file semantic lint rules over the :class:`~.project.ProjectIndex`.

Per-file rules (:mod:`.rules`) see one module's AST; the rules here see
the whole project — the import graph, every ``@shaped`` spec, every
counter increment, every thread target.  Each rule declares a ``scope``
that tells the incremental driver what invalidates its results for a
given file:

* ``"cone"`` — the file plus its transitive import cone (contract flow,
  concurrency discipline: facts travel along imports),
* ``"package"`` — the file's whole top-level package (counter registry:
  an increment anywhere in the package can make a baseline key live).

Rules yield :class:`~.lint.LintDiagnostic` and respect the same
``# lint: disable=`` comments as per-file rules — a suppression is
expected to carry a reason in prose after the rule name.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple, Type

from ..contracts import SpecError, parse_spec, specs_compatible
from .lint import LintDiagnostic
from .project import _LOCKISH_RE, ProjectIndex

_SEMANTIC_RULES: Dict[str, Type["SemanticRule"]] = {}


def register_semantic_rule(cls: Type["SemanticRule"]) -> Type["SemanticRule"]:
    """Class decorator adding a semantic rule to the registry."""
    if not cls.name:
        raise ValueError(f"semantic rule {cls.__name__} has no name")
    if cls.name in _SEMANTIC_RULES:
        raise KeyError(f"semantic rule {cls.name!r} already registered")
    _SEMANTIC_RULES[cls.name] = cls
    return cls


def all_semantic_rules() -> Dict[str, Type["SemanticRule"]]:
    return dict(_SEMANTIC_RULES)


class SemanticRule:
    """Base class: subclass, set name/description/scope, implement check.

    ``check_file(summary, index)`` is called once per analyzed file and
    yields the diagnostics *anchored in that file* — a rule never
    reports into another file from here, which is what lets the driver
    cache results per file under the scope digest.
    """

    name: str = ""
    description: str = ""
    #: "cone" (file + transitive imports) or "package" (top-level package)
    scope: str = "cone"

    def check_file(
        self, summary: Dict[str, object], index: ProjectIndex
    ) -> Iterator[LintDiagnostic]:
        raise NotImplementedError

    def _diag(
        self, summary: Dict[str, object], line: int, col: int, message: str
    ) -> LintDiagnostic:
        return LintDiagnostic(
            path=str(summary["path"]),
            line=line,
            col=col,
            rule=self.name,
            message=message,
        )


def _parse(spec_text: str):
    """(Spec, None) or (None, error message)."""
    try:
        return parse_spec(spec_text), None
    except SpecError as exc:
        return None, str(exc)


# --------------------------------------------------------------------------
# contract flow
# --------------------------------------------------------------------------
@register_semantic_rule
class ContractFlowRule(SemanticRule):
    """``@shaped`` specs must be parseable and unify along the call graph.

    Three checks, all static: every spec string parses; a parameter of a
    ``@shaped`` function passed on to another ``@shaped`` callee must
    have a compatible argspec at that position (rank sets intersect,
    literal dims agree, dtype atom sets intersect); an override of a
    ``@shaped`` base method must stay compatible with the base contract.
    Named dims are independent wildcards, so only *definite* conflicts
    — specs that can never both hold for one array — are reported.
    """

    name = "contract-flow"
    description = (
        "@shaped specs must parse and stay compatible along calls and "
        "overrides"
    )
    scope = "cone"

    def check_file(self, summary, index):
        for fn in summary["functions"].values():
            yield from self._check_fn(summary, index, fn, None)
        for cls_name, cls in summary["classes"].items():
            for fn in cls["methods"].values():
                yield from self._check_fn(summary, index, fn, cls)
            yield from self._check_overrides(summary, index, cls_name, cls)

    # -- callee resolution ---------------------------------------------
    def _callee_spec(
        self,
        summary: Dict[str, object],
        index: ProjectIndex,
        cls: Optional[Dict[str, object]],
        callee: str,
    ) -> Optional[Tuple[str, str]]:
        """(spec text, display name) of a resolvable ``@shaped`` callee."""
        module = str(summary["module"])
        if callee.startswith("self."):
            method = callee[5:]
            if "." in method or cls is None:
                return None
            info = cls["methods"].get(method)
            if info is None:
                for _, _, base in index.iter_base_classes(module, cls):
                    info = base["methods"].get(method)
                    if info is not None:
                        break
            if info is None or info.get("spec") is None:
                return None
            return str(info["spec"]), callee
        resolved = (
            index.resolve(module, callee)
            if "." not in callee
            else index.resolve_dotted(module, callee)
        )
        if resolved is None or resolved[1] != "func":
            return None
        info = resolved[2]
        if info.get("spec") is None:
            return None
        return str(info["spec"]), callee

    # -- the checks ----------------------------------------------------
    def _check_fn(self, summary, index, fn, cls):
        spec_text = fn.get("spec")
        if spec_text is None:
            return
        line = int(fn.get("spec_line") or fn["line"])
        spec, error = _parse(str(spec_text))
        if error is not None:
            yield self._diag(
                summary, line, 0, f"@shaped spec does not parse: {error}"
            )
            return
        by_param = dict(zip(fn["params"], spec.inputs))
        for call in fn["calls"]:
            found = self._callee_spec(
                summary, index, cls, str(call["callee"])
            )
            if found is None:
                continue
            callee_text, display = found
            callee_spec, callee_error = _parse(callee_text)
            if callee_error is not None:
                continue  # flagged where the callee is defined
            for position, arg in enumerate(call["args"]):
                if arg is None or arg not in by_param:
                    continue
                if position >= len(callee_spec.inputs):
                    continue
                conflict = specs_compatible(
                    by_param[arg], callee_spec.inputs[position]
                )
                if conflict is not None:
                    yield self._diag(
                        summary,
                        int(call["line"]),
                        int(call["col"]),
                        f"argument {arg!r} of {spec.text!r} can never "
                        f"satisfy {display}() spec {callee_spec.text!r}: "
                        f"{conflict}",
                    )

    def _check_overrides(self, summary, index, cls_name, cls):
        module = str(summary["module"])
        bases = list(index.iter_base_classes(module, cls))
        if not bases:
            return
        for method_name, fn in cls["methods"].items():
            spec_text = fn.get("spec")
            if spec_text is None:
                continue
            spec, error = _parse(str(spec_text))
            if error is not None:
                continue  # already reported by _check_fn
            line = int(fn.get("spec_line") or fn["line"])
            for base_module, base_name, base in bases:
                base_fn = base["methods"].get(method_name)
                if base_fn is None or base_fn.get("spec") is None:
                    continue
                base_spec, base_error = _parse(str(base_fn["spec"]))
                if base_error is not None:
                    continue
                conflict = self._spec_conflict(spec, base_spec)
                if conflict is not None:
                    yield self._diag(
                        summary,
                        line,
                        0,
                        f"{cls_name}.{method_name} spec {spec.text!r} is "
                        f"incompatible with {base_module}.{base_name} base "
                        f"spec {base_spec.text!r}: {conflict}",
                    )
                break  # nearest base with a contract wins, as at runtime

    @staticmethod
    def _spec_conflict(spec, base_spec) -> Optional[str]:
        for position, (ours, theirs) in enumerate(
            zip(spec.inputs, base_spec.inputs)
        ):
            conflict = specs_compatible(ours, theirs)
            if conflict is not None:
                return f"input {position}: {conflict}"
        conflict = specs_compatible(spec.output, base_spec.output)
        if conflict is not None:
            return f"output: {conflict}"
        return None


# --------------------------------------------------------------------------
# counter registry
# --------------------------------------------------------------------------
@register_semantic_rule
class CounterRegistryRule(SemanticRule):
    """Every literal counter must be zero-seeded; no dead baseline keys.

    Applies to any top-level package that defines a
    ``BASELINE_COUNTERS`` registry (``repro`` does, via
    :mod:`repro.runtime.metrics`; packages without one opt out).  Both
    directions are checked: a string-literal ``*.count("name")``
    increment whose name is not in the statically-evaluated registry is
    flagged at the call site, and a registry key with *no* increment
    evidence anywhere in the package — literal, dynamic-prefix
    (``f"fault_{point}"``), or ``stats["name"] += `` subscript — is
    flagged at the registry definition.  If any registry fragment cannot
    be statically expanded, the dead-key direction stands down rather
    than guess.
    """

    name = "counter-registry"
    description = (
        "literal counter increments must be zero-seeded in "
        "BASELINE_COUNTERS, and baseline keys must be live"
    )
    scope = "package"

    def check_file(self, summary, index):
        registry = index.counter_registry(str(summary["package"]))
        if registry is None:
            return
        keys: Set[str] = set(registry["keys"])
        prefixes: Set[str] = set(registry["prefixes"])
        if registry["exact"]:
            for counter in summary["counters"]:
                name = counter.get("name")
                if name is None:
                    continue
                if name in keys:
                    continue
                if any(str(name).startswith(p) for p in prefixes):
                    continue
                yield self._diag(
                    summary,
                    int(counter["line"]),
                    int(counter["col"]),
                    f"counter {name!r} is incremented here but never "
                    f"zero-seeded in BASELINE_COUNTERS",
                )
        module = str(summary["module"])
        anchors = {m: line for m, line in registry["modules"]}
        if module in anchors and registry["exact"]:
            evidence = self._package_evidence(index, str(summary["package"]))
            for key in sorted(keys):
                if key in evidence["names"]:
                    continue
                if any(key.startswith(p) for p in evidence["prefixes"]):
                    continue
                yield self._diag(
                    summary,
                    anchors[module],
                    0,
                    f"BASELINE_COUNTERS key {key!r} is never incremented "
                    f"anywhere in the package (dead baseline key)",
                )

    @staticmethod
    def _package_evidence(
        index: ProjectIndex, package: str
    ) -> Dict[str, Set[str]]:
        names: Set[str] = set()
        prefixes: Set[str] = set()
        for module in index.package_modules(package):
            other = index.by_module[module]
            for counter in other["counters"]:
                if counter.get("name") is not None:
                    names.add(str(counter["name"]))
                elif counter.get("prefix") is not None:
                    prefixes.add(str(counter["prefix"]))
            names.update(str(n) for n in other["subscript_counters"])
        return {"names": names, "prefixes": prefixes}


# --------------------------------------------------------------------------
# concurrency discipline
# --------------------------------------------------------------------------
@register_semantic_rule
class UnlockedSharedMutationRule(SemanticRule):
    """Attributes mutated on thread-target paths need a lock (or a reason).

    A class that passes ``target=self.<method>`` to ``threading.Thread``
    runs that method concurrently with the spawning thread.  Every
    ``self.<attr> = ...`` reachable from a thread target through
    same-class ``self.<m>()`` calls must execute under a ``with
    self.<lock>`` where the lock attribute was created by a
    ``threading`` lock factory (or is named like one) — or be suppressed
    with ``# lint: disable=unlocked-shared-mutation`` plus a written
    reason.  Test modules are exempt: their threads exist to *provoke*
    races, not to survive them.
    """

    name = "unlocked-shared-mutation"
    description = (
        "self attributes mutated from thread-target call paths must be "
        "lock-guarded or suppressed with a reason"
    )
    scope = "cone"

    def check_file(self, summary, index):
        if str(summary["package"]) == "tests":
            return
        module = str(summary["module"])
        for cls_name, cls in summary["classes"].items():
            targets = set(cls["thread_targets"])
            if not targets:
                continue
            lock_attrs = set(cls["lock_attrs"])
            for _, _, base in index.iter_base_classes(module, cls):
                lock_attrs.update(base["lock_attrs"])
            reachable = self._thread_closure(cls, targets)
            for method_name in sorted(reachable):
                fn = cls["methods"].get(method_name)
                if fn is None:
                    continue
                for mutation in fn["mutations"]:
                    if self._guarded(mutation["guards"], lock_attrs):
                        continue
                    yield self._diag(
                        summary,
                        int(mutation["line"]),
                        int(mutation["col"]),
                        f"{cls_name}.{method_name} runs as a thread "
                        f"target and mutates self.{mutation['attr']} "
                        f"without holding a lock",
                    )

    @staticmethod
    def _thread_closure(
        cls: Dict[str, object], targets: Set[str]
    ) -> Set[str]:
        """Thread-entry methods plus everything they call on self."""
        reachable: Set[str] = set()
        stack: List[str] = [t for t in targets if t in cls["methods"]]
        while stack:
            name = stack.pop()
            if name in reachable:
                continue
            reachable.add(name)
            fn = cls["methods"].get(name)
            if fn is None:
                continue
            for call in fn["calls"]:
                callee = str(call["callee"])
                if callee.startswith("self."):
                    method = callee[5:]
                    if "." not in method and method in cls["methods"]:
                        stack.append(method)
        return reachable

    @staticmethod
    def _guarded(guards: List[str], lock_attrs: Set[str]) -> bool:
        return any(
            g in lock_attrs or _LOCKISH_RE.search(g) for g in guards
        )

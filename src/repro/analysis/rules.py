"""Built-in lint rules — the project's conventions, machine-checked.

One class per rule; registering is the :func:`~repro.analysis.lint.register_rule`
decorator.  Every rule is a heuristic: intentional exceptions carry a
``# lint: disable=<rule>`` comment with a reason on the flagged line.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator, Optional

from .lint import FileContext, LintDiagnostic, LintRule, register_rule

# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------
_UNIT_SUFFIX_RE = re.compile(r"_(nm|px)$")


def _dotted_name(node: ast.AST) -> Optional[str]:
    """'np.random.seed' for nested Attribute/Name chains, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _identifier(node: ast.AST) -> Optional[str]:
    """The variable-ish name of an operand (Name or trailing Attribute)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _unit_of(node: ast.AST) -> Optional[str]:
    """'nm' / 'px' when the operand's identifier carries a unit suffix."""
    name = _identifier(node)
    if name is None:
        return None
    match = _UNIT_SUFFIX_RE.search(name)
    return match.group(1) if match else None


# --------------------------------------------------------------------------
# rules
# --------------------------------------------------------------------------
@register_rule
class LegacyRandomRule(LintRule):
    """Ban numpy's legacy global-state RNG API.

    ``np.random.seed`` / ``np.random.rand`` / friends share one hidden
    global stream — scores then depend on call order and break the
    WorkerPool's byte-identical-across-workers guarantee.  Seeded
    ``np.random.default_rng`` Generators are the project convention.
    """

    name = "legacy-random"
    description = (
        "np.random.* global-state call; use a seeded np.random.default_rng"
    )

    _SAFE = {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }

    def check(
        self, tree: ast.Module, ctx: FileContext
    ) -> Iterator[LintDiagnostic]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            prefix = _dotted_name(node.value)
            if prefix not in ("np.random", "numpy.random"):
                continue
            if node.attr in self._SAFE:
                continue
            yield ctx.diag(
                node,
                self.name,
                f"legacy global-state RNG '{prefix}.{node.attr}'; "
                "use a seeded np.random.default_rng() Generator",
            )


@register_rule
class UnitMixRule(LintRule):
    """Flag nm/pixel unit mixing in additive arithmetic and comparisons.

    Geometry code keeps lengths in integer nanometres and raster indices
    in pixels; names carry ``_nm`` / ``_px`` suffixes.  Adding,
    subtracting, or comparing across the two units is always a bug —
    conversion is multiplication/division by the pixel pitch, which this
    rule deliberately leaves alone.
    """

    name = "unit-mix"
    description = "additive arithmetic or comparison between *_nm and *_px"

    _ADDITIVE = (ast.Add, ast.Sub)

    def _pair(self, left: ast.AST, right: ast.AST) -> bool:
        lu, ru = _unit_of(left), _unit_of(right)
        return lu is not None and ru is not None and lu != ru

    def check(
        self, tree: ast.Module, ctx: FileContext
    ) -> Iterator[LintDiagnostic]:
        for node in ast.walk(tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, self._ADDITIVE
            ):
                if self._pair(node.left, node.right):
                    yield ctx.diag(
                        node,
                        self.name,
                        f"'{_identifier(node.left)}' and "
                        f"'{_identifier(node.right)}' mix nm and px units",
                    )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, self._ADDITIVE
            ):
                if self._pair(node.target, node.value):
                    yield ctx.diag(
                        node,
                        self.name,
                        f"'{_identifier(node.target)}' and "
                        f"'{_identifier(node.value)}' mix nm and px units",
                    )
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for a, b in zip(operands, operands[1:]):
                    if self._pair(a, b):
                        yield ctx.diag(
                            node,
                            self.name,
                            f"comparison between '{_identifier(a)}' and "
                            f"'{_identifier(b)}' mixes nm and px units",
                        )


@register_rule
class FloatEqRule(LintRule):
    """Flag float-literal ``==`` / ``!=`` on geometry coordinates.

    Geometry lengths and coordinates are *integer* nanometres (or
    integer pixel indices) precisely so equality stays exact.  Comparing
    a ``*_nm`` / ``*_px`` name against a float literal means a float
    crept into the coordinate path — either a unit slip or a tolerance
    bug waiting for an accumulation error.
    """

    name = "float-eq"
    description = (
        "float-literal == / != on a *_nm / *_px geometry value; "
        "keep coordinates integral or use an explicit tolerance"
    )

    def check(
        self, tree: ast.Module, ctx: FileContext
    ) -> Iterator[LintDiagnostic]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            has_float_literal = any(
                isinstance(o, ast.Constant) and isinstance(o.value, float)
                for o in operands
            )
            unit_names = [
                _identifier(o) for o in operands if _unit_of(o) is not None
            ]
            if has_float_literal and unit_names:
                yield ctx.diag(
                    node,
                    self.name,
                    f"float-literal equality on '{unit_names[0]}'; "
                    "coordinates are integer nm/px — compare ints or use "
                    "an explicit tolerance",
                )


@register_rule
class BroadExceptRule(LintRule):
    """Flag bare and overbroad exception handlers.

    ``except:`` / ``except Exception:`` swallow contract violations and
    worker-pool faults that must surface.  A handler whose entire body is
    a bare ``raise`` is allowed (cleanup-and-reraise).
    """

    name = "broad-except"
    description = "bare 'except:' or 'except Exception/BaseException:'"

    _BROAD = {"Exception", "BaseException"}

    def _is_broad(self, node: Optional[ast.AST]) -> bool:
        if node is None:
            return True
        if isinstance(node, ast.Name):
            return node.id in self._BROAD
        if isinstance(node, ast.Tuple):
            return any(self._is_broad(el) for el in node.elts)
        return False

    def check(
        self, tree: ast.Module, ctx: FileContext
    ) -> Iterator[LintDiagnostic]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            body = node.body
            if (
                len(body) == 1
                and isinstance(body[0], ast.Raise)
                and body[0].exc is None
            ):
                continue  # cleanup-and-reraise keeps the error visible
            what = "bare 'except:'" if node.type is None else (
                f"overbroad 'except {ast.unparse(node.type)}:'"
            )
            yield ctx.diag(
                node,
                self.name,
                f"{what} hides contract violations; catch specific "
                "exceptions (or suppress with a reason)",
            )


@register_rule
class RasterParityRule(LintRule):
    """Detector subclasses overriding predict_proba need raster twins.

    A ``Detector`` subclass that overrides ``predict_proba`` without also
    defining ``predict_proba_rasters`` + ``raster_pixel_nm`` silently
    falls off the raster-plane fast path (and, worse, can drift from a
    raster implementation it inherits).  Geometry-only detectors are
    legitimate — suppress with a reason.
    """

    name = "raster-parity"
    description = (
        "Detector subclass overrides predict_proba without the raster "
        "counterparts"
    )

    def check(
        self, tree: ast.Module, ctx: FileContext
    ) -> Iterator[LintDiagnostic]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = [
                name
                for name in (_identifier(b) for b in node.bases)
                if name is not None
            ]
            if not any(name.endswith("Detector") for name in base_names):
                continue
            defined = set()
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    defined.add(stmt.name)
                elif isinstance(stmt, ast.Assign):  # raster_pixel_nm = 8
                    defined.update(
                        t.id for t in stmt.targets if isinstance(t, ast.Name)
                    )
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    defined.add(stmt.target.id)
            if "predict_proba" not in defined:
                continue
            if "predict_proba_rasters" not in defined:
                yield ctx.diag(
                    node,
                    self.name,
                    f"{node.name} overrides predict_proba without "
                    "predict_proba_rasters; the raster-plane scan will "
                    "silently fall back to the clip path",
                )
            elif "raster_pixel_nm" not in defined:
                yield ctx.diag(
                    node,
                    self.name,
                    f"{node.name} defines predict_proba_rasters but not "
                    "raster_pixel_nm; supports_raster_scan() will report "
                    "False",
                )


class _NoDeepImportRule(LintRule):
    """Shared machinery: keep a package's internals behind its facade.

    Parameterized by ``_PACKAGE`` (the subpackage of ``repro``) and
    ``_SUBMODULES`` (its module names — ``from repro.<pkg> import mod``
    binds the module object just like the dotted form does).  Files
    *inside* ``repro/<pkg>/`` are exempt; tests poking at private seams
    suppress with a reason.
    """

    _PACKAGE = ""  # subclasses set, e.g. "runtime"
    _SUBMODULES: frozenset = frozenset()

    def _inside_package(self, path: str) -> bool:
        parts = Path(path).parts
        return any(
            parts[i : i + 2] == ("repro", self._PACKAGE)
            for i in range(len(parts) - 1)
        )

    def _deep_target(self, node: ast.AST) -> Optional[str]:
        """The offending dotted module path, or None if the import is fine."""
        pkg = self._PACKAGE
        prefix = f"repro.{pkg}"
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith(prefix + "."):
                    return alias.name
            return None
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0:
                if module.startswith(prefix + "."):
                    return module
                if module == prefix:
                    deep = [
                        a.name
                        for a in node.names
                        if a.name in self._SUBMODULES
                    ]
                    if deep:
                        return f"{prefix}.{deep[0]}"
            else:
                # from ..<pkg>.engine import X  (any relative depth)
                head, _, rest = module.partition(".")
                if head == pkg and rest:
                    return f"<relative>.{pkg}.{rest}"
                if head == pkg and not rest:
                    deep = [
                        a.name
                        for a in node.names
                        if a.name in self._SUBMODULES
                    ]
                    if deep:
                        return f"<relative>.{pkg}.{deep[0]}"
        return None

    def check(
        self, tree: ast.Module, ctx: FileContext
    ) -> Iterator[LintDiagnostic]:
        if self._inside_package(ctx.path):
            return
        for node in ast.walk(tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            target = self._deep_target(node)
            if target is not None:
                yield ctx.diag(
                    node,
                    self.name,
                    f"deep {self._PACKAGE} import '{target}'; import from "
                    f"the repro.{self._PACKAGE} facade (or repro.api) "
                    "instead",
                )


@register_rule
class NoDeepRuntimeImportRule(_NoDeepImportRule):
    """Keep :mod:`repro.runtime` internals behind the package facade.

    Everything the rest of the codebase needs from the runtime is
    re-exported by ``repro.runtime`` (and surfaced again in
    ``repro.api``).  Importing a submodule directly —
    ``from repro.runtime.engine import ...`` — couples the caller to
    implementation layout that is free to change.
    """

    name = "no-deep-runtime-import"
    description = (
        "import of a repro.runtime submodule from outside repro/runtime/; "
        "use the repro.runtime (or repro.api) facade"
    )

    _PACKAGE = "runtime"
    _SUBMODULES = frozenset(
        {
            "cache",
            "cascade",
            "checkpoint",
            "config",
            "engine",
            "faults",
            "metrics",
            "pool",
            "shard",
            "telemetry",
            "trace",
        }
    )


@register_rule
class NoDeepServiceImportRule(_NoDeepImportRule):
    """Keep :mod:`repro.service` internals behind the package facade.

    The service package re-exports its whole public surface from
    ``repro.service`` (ports, adapters, manager, fleet, transport, wire
    helpers); reaching into ``repro.service.manager`` and friends
    couples callers to a module layout that is free to change.
    """

    name = "no-deep-service-import"
    description = (
        "import of a repro.service submodule from outside repro/service/; "
        "use the repro.service (or repro.api) facade"
    )

    _PACKAGE = "service"
    _SUBMODULES = frozenset(
        {
            "client",
            "filestore",
            "fleet",
            "http",
            "jobs",
            "loadgen",
            "manager",
            "memory",
            "ports",
            "wire",
        }
    )


@register_rule
class NoPerCallAllocInForwardRule(LintRule):
    """Flag fresh numpy allocations inside ``forward()`` methods.

    The fused inference backend exists because per-call ``np.zeros`` /
    ``np.empty`` in a hot forward path dominates small-batch latency
    (:mod:`repro.nn.infer` threads a persistent ``Workspace`` instead).
    A new allocation in any layer's ``forward()`` quietly reintroduces
    that cost on every raster batch.  Training-only paths (losses,
    dropout masks) are legitimate — suppress with a reason.
    """

    name = "no-per-call-alloc-in-forward"
    description = (
        "np.zeros/np.empty/np.ones/np.full allocation inside a forward() "
        "method; reuse a Workspace buffer or hoist the allocation"
    )

    _ALLOCATORS = {"zeros", "empty", "ones", "full"}

    def check(
        self, tree: ast.Module, ctx: FileContext
    ) -> Iterator[LintDiagnostic]:
        for cls in ast.walk(tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for method in cls.body:
                if (
                    not isinstance(
                        method, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    or method.name != "forward"
                ):
                    continue
                for node in ast.walk(method):
                    if not isinstance(node, ast.Call):
                        continue
                    dotted = _dotted_name(node.func)
                    if dotted is None:
                        continue
                    prefix, _, attr = dotted.rpartition(".")
                    if (
                        prefix in ("np", "numpy")
                        and attr in self._ALLOCATORS
                    ):
                        yield ctx.diag(
                            node,
                            self.name,
                            f"'{dotted}' allocates on every "
                            f"{cls.name}.forward() call; reuse a "
                            "Workspace buffer or hoist it (suppress "
                            "with a reason if this is a training-only "
                            "path)",
                        )


@register_rule
class MutableDefaultRule(LintRule):
    """Flag mutable default argument values.

    ``def f(x, acc=[])`` shares one list across every call — with the
    scan engine re-entering detectors across bands and workers, shared
    defaults are state leaks.  Use ``None`` and construct inside.
    """

    name = "mutable-default"
    description = "mutable default argument ([], {}, set(), list(), dict())"

    _FACTORY = {"list", "dict", "set", "bytearray"}

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._FACTORY
        )

    def check(
        self, tree: ast.Module, ctx: FileContext
    ) -> Iterator[LintDiagnostic]:
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    func = getattr(node, "name", "<lambda>")
                    yield ctx.diag(
                        default,
                        self.name,
                        f"mutable default in {func}(); use None and "
                        "construct inside the function",
                    )

"""Project-specific AST lint engine behind ``repro-lhd lint``.

The framework half: rule registration, file walking, suppression
comments, and diagnostic formatting.  The rules themselves live in
:mod:`repro.analysis.rules`, one class per rule, registered with the
:func:`register_rule` decorator — adding a rule is writing a class.

Suppressions:

* ``# lint: disable=rule-name[,other-rule]`` on a line silences those
  rules (or ``all``) for diagnostics anchored to that line,
* ``# lint: disable-file=rule-name[,other-rule]`` anywhere in a file
  silences the rules for the whole file.

Directories named ``fixtures`` (deliberately-broken lint test inputs)
are skipped when reached by directory walking, but lint them fine when
named explicitly on the command line — mirroring how mainstream linters
treat forced excludes.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Type

#: directory names never descended into while walking lint targets
_SKIP_DIRS = {
    "__pycache__",
    ".git",
    "build",
    "dist",
    "fixtures",
    ".bench_cache",
    ".lint_cache",
}

_SUPPRESS_RE = re.compile(
    r"#\s*lint:\s*(disable|disable-file)\s*=\s*"
    r"([A-Za-z0-9_-]+(?:\s*,\s*[A-Za-z0-9_-]+)*)"
)


@dataclass(frozen=True)
class LintDiagnostic:
    """One finding: ``path:line:col RULE message``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class FileContext:
    """Per-file state handed to rules: path, source, diagnostic helper."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source

    def diag(self, node: ast.AST, rule: str, message: str) -> LintDiagnostic:
        return LintDiagnostic(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        )


class LintRule:
    """Base class: subclass, set ``name``/``description``, implement check.

    ``check(tree, ctx)`` receives the parsed module and yields
    diagnostics; rules walk the tree however they like (most use
    ``ast.walk``).
    """

    #: kebab-case rule id used in output and suppressions
    name: str = ""
    #: one-line description for ``--list-rules``
    description: str = ""

    def check(
        self, tree: ast.Module, ctx: FileContext
    ) -> Iterator[LintDiagnostic]:
        raise NotImplementedError


_RULES: Dict[str, Type[LintRule]] = {}


def register_rule(cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a rule to the registry."""
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if cls.name in _RULES:
        raise KeyError(f"lint rule {cls.name!r} already registered")
    _RULES[cls.name] = cls
    return cls


def all_rules() -> Dict[str, Type[LintRule]]:
    """Registered rules by name (import :mod:`.rules` for the built-ins)."""
    from . import rules  # noqa: F401  (registers built-in rules on import)

    return dict(_RULES)


# --------------------------------------------------------------------------
# suppressions
# --------------------------------------------------------------------------
def _parse_suppressions(source: str):
    """(line -> {rules}, file-wide {rules}) from lint comments."""
    by_line: Dict[int, Set[str]] = {}
    file_wide: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            kind, names = match.groups()
            rules = {n.strip() for n in names.split(",") if n.strip()}
            if kind == "disable-file":
                file_wide |= rules
            else:
                by_line.setdefault(tok.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass  # an untokenizable file already fails as a parse error
    return by_line, file_wide


def _suppressed(
    diag: LintDiagnostic,
    by_line: Dict[int, Set[str]],
    file_wide: Set[str],
) -> bool:
    for rules in (file_wide, by_line.get(diag.line, ())):
        if diag.rule in rules or "all" in rules:
            return True
    return False


# --------------------------------------------------------------------------
# running
# --------------------------------------------------------------------------
def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
) -> List[LintDiagnostic]:
    """Lint one source string; returns sorted, suppression-filtered findings."""
    rules = all_rules()
    if select is not None:
        unknown = sorted(set(select) - set(rules))
        if unknown:
            raise KeyError(f"unknown lint rules: {unknown}")
        rules = {name: rules[name] for name in select}
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintDiagnostic(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="parse-error",
                message=f"cannot parse: {exc.msg}",
            )
        ]
    ctx = FileContext(path=path, source=source)
    by_line, file_wide = _parse_suppressions(source)
    findings = [
        diag
        for rule_cls in rules.values()
        for diag in rule_cls().check(tree, ctx)
        if not _suppressed(diag, by_line, file_wide)
    ]
    findings.sort(key=lambda d: (d.line, d.col, d.rule))
    return findings


def iter_target_files(paths: Sequence) -> Iterator[Path]:
    """Expand lint targets into .py files (skipping :data:`_SKIP_DIRS`).

    Explicitly named files/directories are always included — only the
    *descent* into a skipped directory is pruned.
    """
    seen = set()
    for raw in paths:
        target = Path(raw)
        if target.is_dir():
            candidates = sorted(
                p
                for p in target.rglob("*.py")
                if not (_SKIP_DIRS & set(p.relative_to(target).parts[:-1]))
            )
        else:
            candidates = [target]
        for path in candidates:
            if path not in seen:
                seen.add(path)
                yield path


def lint_paths(
    paths: Sequence, select: Optional[Sequence[str]] = None
) -> List[LintDiagnostic]:
    """Lint files/directories; returns all findings sorted by location."""
    findings: List[LintDiagnostic] = []
    for path in iter_target_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(
                LintDiagnostic(
                    path=str(path),
                    line=1,
                    col=0,
                    rule="read-error",
                    message=str(exc),
                )
            )
            continue
        findings.extend(lint_source(source, path=str(path), select=select))
    findings.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return findings


def format_findings(
    findings: Iterable[LintDiagnostic], fmt: str = "text"
) -> str:
    """Render findings as line-per-diagnostic text or a JSON array."""
    if fmt == "json":
        return json.dumps([d.as_dict() for d in findings], indent=2)
    if fmt != "text":
        raise ValueError(f"unknown format {fmt!r}")
    return "\n".join(d.format() for d in findings)

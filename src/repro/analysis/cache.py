"""Incremental lint cache: content-hash keyed per-file analysis results.

One JSON file under ``.lint_cache/`` holds everything.  Each entry is
keyed two ways:

* the **file sha** (blake2b of the file's bytes) keys the per-file
  layer — parse summary plus per-file rule diagnostics.  Editing a file
  invalidates only its own entry.
* the **cone/package digests** (blake2b over the shas of every module in
  the file's transitive import cone, or its whole top-level package) key
  the semantic layer.  Editing one module therefore transitively
  invalidates semantic results for exactly the files whose cone contains
  it — nothing else re-runs.

A **fingerprint** over the analyzer version and the full rule registry
guards the whole cache: registering a rule, renaming one, or bumping
:data:`~repro.analysis.project.ANALYZER_CACHE_VERSION` drops every
entry at once.  Corrupt or mismatched cache files are discarded, never
trusted; saves are atomic (tmp + rename) so a crashed run can't leave a
torn file behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

CACHE_SCHEMA = 1
_CACHE_NAME = "cache.json"


class LintCache:
    """Load/save wrapper over the single on-disk cache document."""

    def __init__(self, cache_dir, fingerprint: str) -> None:
        self.cache_dir = Path(cache_dir)
        self.path = self.cache_dir / _CACHE_NAME
        self.fingerprint = fingerprint
        self.files: Dict[str, Dict[str, object]] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(data, dict):
            return
        if data.get("schema") != CACHE_SCHEMA:
            return
        if data.get("fingerprint") != self.fingerprint:
            return
        files = data.get("files")
        if isinstance(files, dict):
            self.files = files

    # -- per-file layer -------------------------------------------------
    def get_file(
        self, path: str, sha: str
    ) -> Optional[Dict[str, object]]:
        """Cached ``{"summary", "diagnostics"}`` when content matches."""
        entry = self.files.get(path)
        if entry is None or entry.get("sha") != sha:
            return None
        return entry

    def put_file(
        self,
        path: str,
        sha: str,
        summary: Dict[str, object],
        diagnostics: List[Dict[str, object]],
    ) -> None:
        self.files[path] = {
            "sha": sha,
            "summary": summary,
            "diagnostics": diagnostics,
            "semantic": {},
        }
        self._dirty = True

    # -- semantic layer -------------------------------------------------
    def get_semantic(
        self, path: str, scope: str, digest: str
    ) -> Optional[List[Dict[str, object]]]:
        """Cached semantic findings when the cone/package digest matches."""
        entry = self.files.get(path)
        if entry is None:
            return None
        scoped = entry.get("semantic", {}).get(scope)
        if not isinstance(scoped, dict) or scoped.get("digest") != digest:
            return None
        findings = scoped.get("findings")
        return findings if isinstance(findings, list) else None

    def put_semantic(
        self,
        path: str,
        scope: str,
        digest: str,
        findings: List[Dict[str, object]],
    ) -> None:
        entry = self.files.get(path)
        if entry is None:
            return  # semantic results only attach to a cached file entry
        entry.setdefault("semantic", {})[scope] = {
            "digest": digest,
            "findings": findings,
        }
        self._dirty = True

    # -- persistence ----------------------------------------------------
    def save(self) -> None:
        if not self._dirty:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        document = {
            "schema": CACHE_SCHEMA,
            "fingerprint": self.fingerprint,
            "files": self.files,
        }
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(document), encoding="utf-8")
        os.replace(tmp, self.path)
        self._dirty = False

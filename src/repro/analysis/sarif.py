"""SARIF 2.1.0 rendering of lint findings for CI code-scanning upload.

One run, one tool (``repro-lhd-lint``), one result per diagnostic.
Rule metadata comes from both registries (per-file + semantic); rules
that only exist at runtime (``parse-error``, ``read-error``) are
appended on demand and reported at ``error`` level — everything else is
a ``warning``.  SARIF columns are 1-based while our diagnostics carry
0-based columns, hence the ``col + 1``.
"""

from __future__ import annotations

import json
from pathlib import PurePath
from typing import Dict, Iterable, List

from .lint import LintDiagnostic, all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
#: runtime-only rule ids that mark the file itself as broken
_ERROR_RULES = {"parse-error", "read-error"}


def _rule_catalog() -> List[Dict[str, object]]:
    from .semantic_rules import all_semantic_rules

    catalog: List[Dict[str, object]] = []
    for name, cls in sorted(all_rules().items()):
        catalog.append(
            {
                "id": name,
                "shortDescription": {"text": cls.description},
            }
        )
    for name, cls in sorted(all_semantic_rules().items()):
        catalog.append(
            {
                "id": name,
                "shortDescription": {"text": cls.description},
            }
        )
    return catalog


def sarif_document(findings: Iterable[LintDiagnostic]) -> Dict[str, object]:
    """Build the SARIF log dict for one lint run."""
    rules = _rule_catalog()
    rule_index = {str(rule["id"]): i for i, rule in enumerate(rules)}
    results: List[Dict[str, object]] = []
    for diag in findings:
        if diag.rule not in rule_index:
            rule_index[diag.rule] = len(rules)
            rules.append(
                {
                    "id": diag.rule,
                    "shortDescription": {"text": diag.rule},
                }
            )
        results.append(
            {
                "ruleId": diag.rule,
                "ruleIndex": rule_index[diag.rule],
                "level": "error" if diag.rule in _ERROR_RULES else "warning",
                "message": {"text": diag.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": PurePath(diag.path).as_posix(),
                            },
                            "region": {
                                "startLine": diag.line,
                                "startColumn": diag.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lhd-lint",
                        "informationUri": (
                            "https://github.com/repro-lhd/repro-lhd"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def format_sarif(findings: Iterable[LintDiagnostic]) -> str:
    return json.dumps(sarif_document(findings), indent=2)

"""Whole-project semantic index and the incremental analysis driver.

The per-file linter (:mod:`.lint` / :mod:`.rules`) sees one module at a
time; this layer parses the *full* target tree once into a
:class:`ProjectIndex` — module/symbol table, import graph, per-function
call lists, decorator metadata (``@shaped`` contract specs), counter
increments, thread-target/lock facts, and statically-evaluable constant
registries — and runs the cross-file rules from
:mod:`.semantic_rules` on top of it.

The driver (:func:`analyze_paths`) is incremental: per-file parse and
index results are cached under ``.lint_cache`` keyed by file content
hash, and semantic results are keyed by the digest of a file's
transitive import cone — editing one module re-analyzes only the files
whose cone contains it.  File summarization is a pure function of
``(path, module, source)``, so cache misses can be parsed in parallel
worker processes (``jobs > 1``).

Everything stored in a :class:`FileSummary` is plain JSON data:
summaries round-trip through the cache and through multiprocess workers
without custom serialization.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .lint import (
    LintDiagnostic,
    _parse_suppressions,
    all_rules,
    iter_target_files,
    lint_source,
)
from .rules import _dotted_name

#: bump when the summary layout or any rule's semantics change — the
#: cache fingerprint folds this in, so stale entries self-invalidate
ANALYZER_CACHE_VERSION = 1

_CONST_RE = re.compile(r"^[A-Z][A-Z0-9_]*$")
_LOCKISH_RE = re.compile(r"lock|cond|mutex", re.IGNORECASE)
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
#: final attribute of a receiver whose ``.count(...)`` is a telemetry API
_COUNTER_RECEIVERS = {"telemetry", "tele", "manager"}


def file_digest(data: bytes) -> str:
    """Content hash used for all cache keys (hex blake2b-128)."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def module_name_for(path: Path) -> str:
    """Dotted module name inferred from package ``__init__.py`` chains.

    ``src/repro/runtime/engine.py`` → ``repro.runtime.engine`` (``src``
    has no ``__init__.py``); a file outside any package is its own
    top-level module.
    """
    path = Path(path).resolve()
    parts = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    if not parts:
        parts = [path.parent.name or path.stem]
    return ".".join(parts)


# --------------------------------------------------------------------------
# constant mini-expressions (serializable slice of the AST)
# --------------------------------------------------------------------------
def _encode_fstring(node: ast.JoinedStr) -> Dict[str, object]:
    """``f"fault_{point}"`` → prefix + variable; anything fancier is lossy."""
    prefix = ""
    values = list(node.values)
    if values and isinstance(values[0], ast.Constant) and isinstance(
        values[0].value, str
    ):
        prefix = values[0].value
        values = values[1:]
    var: Optional[str] = None
    if (
        len(values) == 1
        and isinstance(values[0], ast.FormattedValue)
        and isinstance(values[0].value, ast.Name)
    ):
        var = values[0].value.id
    return {"k": "fstr", "prefix": prefix, "var": var}


def _encode_expr(node: ast.AST) -> Dict[str, object]:
    """Encode a module-level constant expression as JSON-able data.

    Covers the shapes counter registries are actually built from:
    string literals, tuples/lists, name references, ``+`` concatenation,
    ``tuple(...)``/``list(...)`` wrapping, f-strings, and single-``for``
    comprehensions.  Everything else becomes ``unknown`` — evaluation
    then degrades gracefully instead of guessing.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return {"k": "lit", "v": node.value}
    if isinstance(node, (ast.Tuple, ast.List)):
        return {"k": "seq", "items": [_encode_expr(e) for e in node.elts]}
    if isinstance(node, ast.Name):
        return {"k": "name", "id": node.id}
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return {
            "k": "concat",
            "items": [_encode_expr(node.left), _encode_expr(node.right)],
        }
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("tuple", "list")
        and len(node.args) == 1
        and not node.keywords
    ):
        return {"k": "call_seq", "arg": _encode_expr(node.args[0])}
    if isinstance(node, ast.JoinedStr):
        return _encode_fstring(node)
    if (
        isinstance(node, (ast.ListComp, ast.GeneratorExp))
        and len(node.generators) == 1
        and not node.generators[0].ifs
        and isinstance(node.generators[0].target, ast.Name)
    ):
        gen = node.generators[0]
        return {
            "k": "comp",
            "elt": _encode_expr(node.elt),
            "var": gen.target.id,
            "iter": _encode_expr(gen.iter),
        }
    return {"k": "unknown"}


# --------------------------------------------------------------------------
# the per-file summarizer
# --------------------------------------------------------------------------
def _self_attr(node: ast.AST) -> Optional[str]:
    """'x' when ``node`` is exactly ``self.x``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _FunctionScan:
    """Facts gathered from one function body."""

    def __init__(self) -> None:
        self.calls: List[Dict[str, object]] = []
        self.mutations: List[Dict[str, object]] = []
        self.thread_targets: List[str] = []
        self.lock_attrs: List[str] = []

    def scan(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._visit(stmt, ())

    def _record_call(self, node: ast.Call, guards: Tuple[str, ...]) -> None:
        callee = _dotted_name(node.func)
        if callee is None:
            return
        args = []
        for arg in node.args:
            args.append(arg.id if isinstance(arg, ast.Name) else None)
        self.calls.append(
            {
                "callee": callee,
                "args": args,
                "line": node.lineno,
                "col": node.col_offset,
            }
        )
        if callee.split(".")[-1] == "Thread":
            for kw in node.keywords:
                if kw.arg == "target":
                    target = _self_attr(kw.value)
                    if target is not None:
                        self.thread_targets.append(target)

    def _record_mutation(
        self, attr: str, node: ast.AST, guards: Tuple[str, ...]
    ) -> None:
        self.mutations.append(
            {
                "attr": attr,
                "line": node.lineno,
                "col": node.col_offset,
                "guards": list(guards),
            }
        )

    def _visit(self, node: ast.AST, guards: Tuple[str, ...]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = []
            for item in node.items:
                self._visit(item.context_expr, guards)
                expr = item.context_expr
                if isinstance(expr, ast.Call):  # with self._cond: vs .acquire()
                    expr = expr.func
                attr = _self_attr(expr)
                if attr is not None:
                    acquired.append(attr)
            inner = guards + tuple(acquired)
            for stmt in node.body:
                self._visit(stmt, inner)
            return
        if isinstance(node, ast.Call):
            self._record_call(node, guards)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    self._record_mutation(attr, node, guards)
                    value = node.value
                    if isinstance(value, ast.Call):
                        factory = _dotted_name(value.func)
                        if (
                            factory
                            and factory.split(".")[-1] in _LOCK_FACTORIES
                        ):
                            self.lock_attrs.append(attr)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            attr = _self_attr(node.target)
            if attr is not None:
                self._record_mutation(attr, node, guards)
        for child in ast.iter_child_nodes(node):
            self._visit(child, guards)


def _summarize_function(fn) -> Dict[str, object]:
    arg_nodes = list(fn.args.posonlyargs) + list(fn.args.args)
    params = [a.arg for a in arg_nodes if a.arg not in ("self", "cls")]
    spec = None
    spec_line = None
    for dec in fn.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        name = _dotted_name(dec.func)
        if (
            name
            and name.split(".")[-1] == "shaped"
            and dec.args
            and isinstance(dec.args[0], ast.Constant)
            and isinstance(dec.args[0].value, str)
        ):
            spec = dec.args[0].value
            spec_line = dec.args[0].lineno
    scan = _FunctionScan()
    scan.scan(fn.body)
    return {
        "line": fn.lineno,
        "params": params,
        "spec": spec,
        "spec_line": spec_line,
        "calls": scan.calls,
        "mutations": scan.mutations,
        "thread_targets": scan.thread_targets,
        "lock_attrs": scan.lock_attrs,
    }


def _summarize_class(node: ast.ClassDef) -> Dict[str, object]:
    bases = []
    for base in node.bases:
        dotted = _dotted_name(base)
        if dotted is not None:
            bases.append(dotted)
    methods: Dict[str, Dict[str, object]] = {}
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods[stmt.name] = _summarize_function(stmt)
    lock_attrs: Set[str] = set()
    thread_targets: Set[str] = set()
    for info in methods.values():
        lock_attrs.update(info.pop("lock_attrs"))
        thread_targets.update(info.pop("thread_targets"))
    return {
        "line": node.lineno,
        "bases": bases,
        "methods": methods,
        "lock_attrs": sorted(lock_attrs),
        "thread_targets": sorted(thread_targets),
    }


def _resolve_from_import(
    module: str, is_package: bool, node: ast.ImportFrom
) -> Optional[str]:
    """Absolute module targeted by a (possibly relative) from-import."""
    if node.level == 0:
        return node.module
    base = module if is_package else module.rpartition(".")[0]
    for _ in range(node.level - 1):
        if not base:
            return None
        base = base.rpartition(".")[0]
    if node.module:
        return f"{base}.{node.module}" if base else node.module
    return base or None


def _counter_name_parts(
    arg: ast.AST,
) -> Tuple[Optional[str], Optional[str]]:
    """(literal name, dynamic prefix) of a counter-name argument."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value, None
    if isinstance(arg, ast.JoinedStr):
        enc = _encode_fstring(arg)
        prefix = enc["prefix"]
        if prefix:
            return None, str(prefix)
    return None, None


def summarize_source(
    path: str, module: str, source: str, tree: Optional[ast.Module] = None
) -> Dict[str, object]:
    """Extract the :class:`ProjectIndex` facts for one parsed module."""
    if tree is None:
        tree = ast.parse(source, filename=path)
    is_package = Path(path).name == "__init__.py"
    imports: Set[str] = set()
    bindings: Dict[str, List[Optional[str]]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports.add(alias.name)
                bindings[alias.asname or alias.name.split(".")[0]] = [
                    alias.name if alias.asname else alias.name.split(".")[0],
                    None,
                ]
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_from_import(module, is_package, node)
            if target is None:
                continue
            imports.add(target)
            for alias in node.names:
                if alias.name == "*":
                    continue
                bindings[alias.asname or alias.name] = [target, alias.name]

    functions: Dict[str, Dict[str, object]] = {}
    classes: Dict[str, Dict[str, object]] = {}
    consts: Dict[str, Dict[str, object]] = {}
    const_lines: Dict[str, int] = {}
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = _summarize_function(stmt)
            info.pop("lock_attrs")
            info.pop("thread_targets")
            functions[stmt.name] = info
        elif isinstance(stmt, ast.ClassDef):
            classes[stmt.name] = _summarize_class(stmt)
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name) and _CONST_RE.match(target.id):
                consts[target.id] = _encode_expr(stmt.value)
                const_lines[target.id] = stmt.lineno
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name) and _CONST_RE.match(
                stmt.target.id
            ):
                consts[stmt.target.id] = _encode_expr(stmt.value)
                const_lines[stmt.target.id] = stmt.lineno

    counters: List[Dict[str, object]] = []
    subscript_counters: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr != "count" or not node.args:
                continue
            receiver = _dotted_name(node.func.value)
            if receiver is None:
                continue
            if receiver != "self" and (
                receiver.split(".")[-1] not in _COUNTER_RECEIVERS
            ):
                continue
            name, prefix = _counter_name_parts(node.args[0])
            counters.append(
                {
                    "name": name,
                    "prefix": prefix,
                    "line": node.lineno,
                    "col": node.col_offset,
                }
            )
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.target, ast.Subscript
        ):
            key = node.target.slice
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                subscript_counters.add(key.value)

    by_line, file_wide = _parse_suppressions(source)
    return {
        "path": path,
        "module": module,
        "package": module.split(".")[0],
        "imports": sorted(imports),
        "bindings": bindings,
        "functions": functions,
        "classes": classes,
        "consts": consts,
        "const_lines": const_lines,
        "counters": counters,
        "subscript_counters": sorted(subscript_counters),
        "suppress_lines": {
            str(line): sorted(rules) for line, rules in by_line.items()
        },
        "suppress_file": sorted(file_wide),
    }


def _stub_summary(path: str, module: str) -> Dict[str, object]:
    """Summary for an unparseable file: present in the index, no facts."""
    return {
        "path": path,
        "module": module,
        "package": module.split(".")[0],
        "imports": [],
        "bindings": {},
        "functions": {},
        "classes": {},
        "consts": {},
        "const_lines": {},
        "counters": [],
        "subscript_counters": [],
        "suppress_lines": {},
        "suppress_file": [],
    }


def _analyze_file(
    path: str, module: str, source: str, select: Optional[Sequence[str]]
) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """(summary, per-file diagnostics) for one source file — pure."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        diags = lint_source(source, path=path, select=select)
        return _stub_summary(path, module), [d.as_dict() for d in diags]
    diags = lint_source(source, path=path, select=select)
    summary = summarize_source(path, module, source, tree=tree)
    summary["sha"] = file_digest(source.encode("utf-8"))
    return summary, [d.as_dict() for d in diags]


def _analyze_worker(item: Tuple[str, str, str]):
    """Module-level (spawn-picklable) wrapper for parallel cache misses."""
    path, module, source = item
    summary, diags = _analyze_file(path, module, source, None)
    return path, summary, diags


# --------------------------------------------------------------------------
# the project index
# --------------------------------------------------------------------------
class ProjectIndex:
    """Symbol table + import graph over one analyzed file set.

    ``files`` maps path → summary; ``by_module`` maps dotted module name
    → summary.  The import graph contains only project-internal edges
    (imports of modules that are themselves in the index), including the
    parent packages a submodule import executes.
    """

    def __init__(self, summaries: Dict[str, Dict[str, object]]) -> None:
        self.files = summaries
        self.by_module: Dict[str, Dict[str, object]] = {}
        for summary in summaries.values():
            self.by_module.setdefault(str(summary["module"]), summary)
        self.import_graph: Dict[str, Set[str]] = {}
        for summary in summaries.values():
            module = str(summary["module"])
            edges = self.import_graph.setdefault(module, set())
            targets: Set[str] = set(summary["imports"])
            for bound in summary["bindings"].values():
                base, symbol = bound[0], bound[1]
                if symbol is not None:
                    targets.add(f"{base}.{symbol}")
            for target in targets:
                parts = str(target).split(".")
                for i in range(len(parts), 0, -1):
                    prefix = ".".join(parts[:i])
                    if prefix in self.by_module and prefix != module:
                        edges.add(prefix)
        self._cones: Dict[str, Set[str]] = {}
        self._registries: Dict[str, Optional[Dict[str, object]]] = {}

    # -- symbol resolution ---------------------------------------------
    def resolve(
        self, module: str, name: str, _seen: Optional[Set[Tuple[str, str]]] = None
    ) -> Optional[Tuple[str, str, Dict[str, object]]]:
        """(defining module, kind, info) for ``name`` seen from ``module``.

        Follows from-import chains through facades (PEP 562 re-exports
        resolve as far as static bindings go).  Kind is ``"func"``,
        ``"class"``, or ``"const"``; unresolvable names return None.
        """
        seen = _seen if _seen is not None else set()
        if (module, name) in seen:
            return None
        seen.add((module, name))
        summary = self.by_module.get(module)
        if summary is None:
            return None
        if name in summary["classes"]:
            return module, "class", summary["classes"][name]
        if name in summary["functions"]:
            return module, "func", summary["functions"][name]
        if name in summary["consts"]:
            return module, "const", summary["consts"][name]
        bound = summary["bindings"].get(name)
        if bound is not None:
            base, symbol = bound[0], bound[1]
            if symbol is None:
                return None  # a module object, not a value symbol
            return self.resolve(str(base), str(symbol), seen)
        return None

    def resolve_dotted(
        self, module: str, dotted: str
    ) -> Optional[Tuple[str, str, Dict[str, object]]]:
        """Resolve ``pkg.Name`` chains: module bindings then :meth:`resolve`."""
        parts = dotted.split(".")
        if len(parts) == 1:
            return self.resolve(module, parts[0])
        summary = self.by_module.get(module)
        if summary is None:
            return None
        bound = summary["bindings"].get(parts[0])
        if bound is not None and bound[1] is None:
            target = str(bound[0])
            if len(parts) == 2:
                return self.resolve(target, parts[1])
            return self.resolve_dotted(
                ".".join([target] + parts[1:-1]), parts[-1]
            )
        if len(parts) == 2 and bound is not None:
            # ``from repro.service import manager`` → manager.JobManager
            base, symbol = str(bound[0]), str(bound[1])
            return self.resolve(f"{base}.{symbol}", parts[1])
        return None

    def iter_base_classes(
        self, module: str, class_info: Dict[str, object]
    ) -> Iterator[Tuple[str, str, Dict[str, object]]]:
        """Depth-first walk of resolvable base classes (module, name, info)."""
        visited: Set[Tuple[str, str]] = set()
        stack = [(module, base) for base in class_info["bases"]]
        while stack:
            mod, dotted = stack.pop(0)
            resolved = self.resolve_dotted(mod, str(dotted))
            if resolved is None or resolved[1] != "class":
                continue
            def_module, _, info = resolved
            key = (def_module, str(dotted).split(".")[-1])
            if key in visited:
                continue
            visited.add(key)
            yield def_module, str(dotted).split(".")[-1], info
            stack.extend((def_module, b) for b in info["bases"])

    # -- import cones and digests --------------------------------------
    def cone_modules(self, module: str) -> Set[str]:
        """``module`` plus everything it transitively imports (in-index)."""
        cached = self._cones.get(module)
        if cached is not None:
            return cached
        cone: Set[str] = set()
        stack = [module]
        while stack:
            current = stack.pop()
            if current in cone:
                continue
            cone.add(current)
            stack.extend(self.import_graph.get(current, ()))
        self._cones[module] = cone
        return cone

    def _digest_of(self, modules: Sequence[str]) -> str:
        hasher = hashlib.blake2b(digest_size=16)
        for name in sorted(modules):
            summary = self.by_module.get(name)
            if summary is None:
                continue
            hasher.update(f"{name}:{summary.get('sha', '')}\n".encode())
        return hasher.hexdigest()

    def cone_digest(self, path: str) -> str:
        module = str(self.files[path]["module"])
        return self._digest_of(sorted(self.cone_modules(module)))

    def package_modules(self, package: str) -> List[str]:
        return sorted(
            m for m, s in self.by_module.items() if s["package"] == package
        )

    def package_digest(self, package: str) -> str:
        return self._digest_of(self.package_modules(package))

    # -- constant evaluation -------------------------------------------
    def eval_const_expr(
        self, module: str, expr: Dict[str, object]
    ) -> Tuple[List[str], List[str], bool]:
        """(keys, prefixes, exact) a registry expression denotes.

        ``exact`` is False as soon as any part could not be statically
        expanded — checks that need the complete key set (dead-key
        detection) then stand down rather than guess.
        """
        kind = expr["k"]
        if kind == "lit":
            return [str(expr["v"])], [], True
        if kind in ("seq", "concat"):
            keys: List[str] = []
            prefixes: List[str] = []
            exact = True
            for item in expr["items"]:
                k, p, e = self.eval_const_expr(module, item)
                keys += k
                prefixes += p
                exact = exact and e
            return keys, prefixes, exact
        if kind == "call_seq":
            return self.eval_const_expr(module, expr["arg"])
        if kind == "name":
            resolved = self.resolve(module, str(expr["id"]))
            if resolved is None or resolved[1] != "const":
                return [], [], False
            def_module, _, const_expr = resolved
            return self.eval_const_expr(def_module, const_expr)
        if kind == "fstr":
            prefix = str(expr["prefix"])
            return [], [prefix] if prefix else [], False
        if kind == "comp":
            elt = expr["elt"]
            var = expr["var"]
            keys, prefixes, exact = self.eval_const_expr(
                module, expr["iter"]
            )
            if elt.get("k") == "name" and elt.get("id") == var:
                return keys, prefixes, exact
            if elt.get("k") == "fstr" and elt.get("var") == var:
                prefix = str(elt["prefix"])
                if exact and not prefixes:
                    return [prefix + key for key in keys], [], True
                return [], [prefix] if prefix else [], False
            return [], [], False
        return [], [], False

    def counter_registry(self, package: str) -> Optional[Dict[str, object]]:
        """The evaluated ``BASELINE_COUNTERS`` registry of one package.

        Returns ``{"keys", "prefixes", "exact", "modules"}`` (modules is
        ``[(module, line)]`` of the defining assignments) or None when
        the package defines no registry — packages without one opt out
        of counter checking entirely.
        """
        if package in self._registries:
            return self._registries[package]
        keys: Set[str] = set()
        prefixes: Set[str] = set()
        exact = True
        defining: List[Tuple[str, int]] = []
        for module in self.package_modules(package):
            summary = self.by_module[module]
            expr = summary["consts"].get("BASELINE_COUNTERS")
            if expr is None:
                continue
            k, p, e = self.eval_const_expr(module, expr)
            keys.update(k)
            prefixes.update(p)
            exact = exact and e
            defining.append(
                (module, int(summary["const_lines"].get("BASELINE_COUNTERS", 1)))
            )
        result: Optional[Dict[str, object]] = None
        if defining:
            result = {
                "keys": keys,
                "prefixes": prefixes,
                "exact": exact,
                "modules": defining,
            }
        self._registries[package] = result
        return result


def build_project_index(
    paths: Sequence, jobs: int = 1
) -> "ProjectIndex":
    """Parse + summarize a target tree into a fresh index (no cache)."""
    result = analyze_paths(
        paths, semantic=False, cache_dir=None, jobs=jobs, _keep_index=True
    )
    assert result.index is not None
    return result.index


# --------------------------------------------------------------------------
# the incremental driver
# --------------------------------------------------------------------------
@dataclass
class AnalysisStats:
    """What one :func:`analyze_paths` run actually did (for tests/CI)."""

    files: int = 0
    parsed: List[str] = field(default_factory=list)
    file_cache_hits: int = 0
    semantic_cone_reanalyzed: List[str] = field(default_factory=list)
    semantic_package_reanalyzed: List[str] = field(default_factory=list)
    semantic_cache_hits: int = 0
    cache_enabled: bool = False
    seconds: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "files": self.files,
            "parsed": len(self.parsed),
            "file_cache_hits": self.file_cache_hits,
            "semantic_cone_reanalyzed": len(self.semantic_cone_reanalyzed),
            "semantic_package_reanalyzed": len(
                self.semantic_package_reanalyzed
            ),
            "semantic_cache_hits": self.semantic_cache_hits,
            "cache_enabled": self.cache_enabled,
            "seconds": self.seconds,
        }


@dataclass
class AnalysisResult:
    findings: List[LintDiagnostic]
    stats: AnalysisStats
    index: Optional[ProjectIndex] = None


def _diag_from_dict(data: Dict[str, object]) -> LintDiagnostic:
    return LintDiagnostic(
        path=str(data["path"]),
        line=int(data["line"]),
        col=int(data["col"]),
        rule=str(data["rule"]),
        message=str(data["message"]),
    )


def _semantic_suppressed(
    diag: LintDiagnostic, summary: Dict[str, object]
) -> bool:
    file_wide = set(summary["suppress_file"])
    line_rules = set(summary["suppress_lines"].get(str(diag.line), ()))
    for rules in (file_wide, line_rules):
        if diag.rule in rules or "all" in rules:
            return True
    return False


def _validated_select(select: Optional[Sequence[str]]):
    """Split a --select list into (per-file names, semantic names)."""
    from .semantic_rules import all_semantic_rules

    file_rules = all_rules()
    semantic_rules = all_semantic_rules()
    if select is None:
        return None, None
    unknown = sorted(set(select) - set(file_rules) - set(semantic_rules))
    if unknown:
        raise KeyError(f"unknown lint rules: {unknown}")
    return (
        [name for name in select if name in file_rules],
        [name for name in select if name in semantic_rules],
    )


def cache_fingerprint() -> str:
    """Identity of the rule set + analyzer version the cache was built by."""
    from .semantic_rules import all_semantic_rules

    payload = json.dumps(
        {
            "version": ANALYZER_CACHE_VERSION,
            "rules": sorted(all_rules()),
            "semantic": sorted(all_semantic_rules()),
        },
        sort_keys=True,
    )
    return file_digest(payload.encode())


def analyze_paths(
    paths: Sequence,
    select: Optional[Sequence[str]] = None,
    *,
    semantic: bool = True,
    cache_dir=None,
    jobs: int = 1,
    _keep_index: bool = False,
) -> AnalysisResult:
    """Full analysis driver: per-file rules + cross-file semantic rules.

    ``cache_dir`` (e.g. ``".lint_cache"``) enables the incremental
    cache; ``select`` narrows rules (and disables caching, which is
    keyed to the full rule set); ``jobs > 1`` parses cache misses in
    parallel worker processes.
    """
    from .cache import LintCache
    from .semantic_rules import all_semantic_rules

    t0 = time.perf_counter()
    file_select, semantic_select = _validated_select(select)
    stats = AnalysisStats()
    cache: Optional[LintCache] = None
    if cache_dir is not None and select is None:
        cache = LintCache(cache_dir, fingerprint=cache_fingerprint())
        stats.cache_enabled = True

    findings: List[LintDiagnostic] = []
    summaries: Dict[str, Dict[str, object]] = {}
    file_diags: Dict[str, List[Dict[str, object]]] = {}
    misses: List[Tuple[str, str, str]] = []
    for path in iter_target_files(paths):
        key = str(path)
        stats.files += 1
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(
                LintDiagnostic(
                    path=key, line=1, col=0, rule="read-error",
                    message=str(exc),
                )
            )
            continue
        sha = file_digest(source.encode("utf-8"))
        entry = cache.get_file(key, sha) if cache is not None else None
        if entry is not None:
            stats.file_cache_hits += 1
            summaries[key] = entry["summary"]
            file_diags[key] = entry["diagnostics"]
        else:
            misses.append((key, module_name_for(path), source))

    if misses:
        stats.parsed = [m[0] for m in misses]
        if jobs > 1 and len(misses) > 1:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                analyzed = list(pool.map(_analyze_worker, misses, chunksize=8))
        else:
            analyzed = [
                (key, *_analyze_file(key, module, source, file_select))
                for key, module, source in misses
            ]
        for key, summary, diags in analyzed:
            summaries[key] = summary
            file_diags[key] = diags
            if cache is not None:
                cache.put_file(
                    key, str(summary.get("sha", "")), summary, diags
                )

    for diags in file_diags.values():
        findings.extend(_diag_from_dict(d) for d in diags)

    index = ProjectIndex(summaries)
    if semantic:
        semantic_rules = all_semantic_rules()
        if semantic_select is not None:
            semantic_rules = {
                name: semantic_rules[name] for name in semantic_select
            }
        rules = [cls() for _, cls in sorted(semantic_rules.items())]
        cone_rules = [r for r in rules if r.scope == "cone"]
        package_rules = [r for r in rules if r.scope == "package"]
        for key, summary in summaries.items():
            for scope, scope_rules in (
                ("cone", cone_rules),
                ("package", package_rules),
            ):
                if not scope_rules:
                    continue
                if scope == "cone":
                    digest = index.cone_digest(key)
                else:
                    digest = index.package_digest(str(summary["package"]))
                cached = (
                    cache.get_semantic(key, scope, digest)
                    if cache is not None and select is None
                    else None
                )
                if cached is not None:
                    stats.semantic_cache_hits += 1
                    findings.extend(_diag_from_dict(d) for d in cached)
                    continue
                if scope == "cone":
                    stats.semantic_cone_reanalyzed.append(key)
                else:
                    stats.semantic_package_reanalyzed.append(key)
                produced = [
                    diag
                    for rule in scope_rules
                    for diag in rule.check_file(summary, index)
                    if not _semantic_suppressed(diag, summary)
                ]
                findings.extend(produced)
                if cache is not None and select is None:
                    cache.put_semantic(
                        key, scope, digest, [d.as_dict() for d in produced]
                    )

    if cache is not None:
        cache.save()
    findings.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    stats.seconds = time.perf_counter() - t0
    return AnalysisResult(
        findings=findings,
        stats=stats,
        index=index if _keep_index else None,
    )

"""Dataset persistence.

A dataset is stored as a clip text file (see
:mod:`repro.geometry.gdsio`) whose headers carry the labels, alongside a
small JSON manifest with the dataset name and counts.  Suites are cached
under a content key so regeneration is skipped when the recipe is
unchanged.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..geometry.gdsio import load_clips, save_clips
from .dataset import ClipDataset

PathLike = Union[str, Path]


def dataset_cache_key(name: str, seed: int, count: int, window_nm: int, core_nm: int) -> str:
    """A stable filesystem-safe key for a generated dataset."""
    blob = f"{name}|{seed}|{count}|{window_nm}|{core_nm}|v1"
    digest = hashlib.sha256(blob.encode()).hexdigest()[:12]
    safe = name.replace("/", "_")
    return f"{safe}-{digest}"


def save_dataset(dataset: ClipDataset, directory: PathLike, key: str) -> Path:
    """Write a dataset to ``directory/key.{clips,json}``; returns clip path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    clip_path = directory / f"{key}.clips"
    save_clips(dataset.clips, clip_path, labels=dataset.labels.tolist())
    manifest = {
        "name": dataset.name,
        "count": len(dataset),
        "hotspots": dataset.n_hotspots,
    }
    (directory / f"{key}.json").write_text(json.dumps(manifest, indent=1))
    return clip_path


def load_dataset(directory: PathLike, key: str) -> Optional[ClipDataset]:
    """Load a cached dataset, or None when absent or unlabeled."""
    directory = Path(directory)
    clip_path = directory / f"{key}.clips"
    manifest_path = directory / f"{key}.json"
    if not clip_path.exists() or not manifest_path.exists():
        return None
    manifest = json.loads(manifest_path.read_text())
    clips, labels = load_clips(clip_path)
    if any(lbl is None for lbl in labels):
        return None
    return ClipDataset(
        name=manifest["name"],
        clips=clips,
        labels=np.asarray(labels, dtype=np.int64),
    )

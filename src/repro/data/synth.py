"""Clip synthesis: pattern families -> labeled layout clips.

``make_clip`` instantiates one pattern family inside a fresh window and
cuts the clip; ``generate_clips`` draws a whole population from a mixture
of families.  Labeling against the :class:`~repro.litho.HotspotOracle`
happens in :mod:`repro.data.benchmarks` so that unlabeled populations can
also be produced (e.g. for runtime-scaling benches).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.layout import Clip, Layer, extract_clip
from ..geometry.rect import Rect
from .patterns import FAMILIES, GRID, PatternSpec, snap

DEFAULT_WINDOW_NM = 768
DEFAULT_CORE_NM = 256


@dataclass(frozen=True)
class FamilyMix:
    """A mixture over pattern families with per-family marginality.

    ``weights`` maps family name -> sampling weight; ``marginal_p`` maps
    family name -> probability of drawing boundary-straddling parameters
    (falls back to ``default_marginal_p``).
    """

    weights: Dict[str, float]
    marginal_p: Dict[str, float]
    default_marginal_p: float = 0.2

    def __post_init__(self) -> None:
        unknown = set(self.weights) - set(FAMILIES)
        if unknown:
            raise ValueError(f"unknown families: {sorted(unknown)}")
        if not self.weights or min(self.weights.values()) < 0:
            raise ValueError("weights must be a non-empty non-negative map")

    def sample_family(self, rng: np.random.Generator) -> str:
        names = sorted(self.weights)
        probs = np.array([self.weights[n] for n in names], dtype=float)
        probs /= probs.sum()
        return names[int(rng.choice(len(names), p=probs))]

    def marginality(self, family: str) -> float:
        return self.marginal_p.get(family, self.default_marginal_p)


def make_clip(
    rng: np.random.Generator,
    family: str,
    window_nm: int = DEFAULT_WINDOW_NM,
    core_nm: int = DEFAULT_CORE_NM,
    marginal_p: float = 0.2,
    tag: str = "",
) -> Tuple[Clip, PatternSpec]:
    """Instantiate one pattern family and cut its clip.

    The window is placed at a random grid-snapped absolute position so no
    two clips share coordinates (keeps pattern-matching honest about
    translation invariance).
    """
    if family not in FAMILIES:
        raise KeyError(f"unknown pattern family {family!r}")
    if window_nm % GRID or core_nm % GRID:
        raise ValueError("window/core must be grid-aligned")
    return _make_clip_with_marginality(
        rng, family, window_nm, core_nm, marginal_p, tag=tag or family
    )


def generate_clips(
    rng: np.random.Generator,
    mix: FamilyMix,
    count: int,
    window_nm: int = DEFAULT_WINDOW_NM,
    core_nm: int = DEFAULT_CORE_NM,
) -> Tuple[List[Clip], List[PatternSpec]]:
    """Draw ``count`` clips from the family mixture."""
    clips: List[Clip] = []
    specs: List[PatternSpec] = []
    for i in range(count):
        family = mix.sample_family(rng)
        clip, spec = _make_clip_with_marginality(
            rng, family, window_nm, core_nm, mix.marginality(family), tag=f"{family}#{i}"
        )
        clips.append(clip)
        specs.append(spec)
    return clips, specs


def _make_clip_with_marginality(
    rng: np.random.Generator,
    family: str,
    window_nm: int,
    core_nm: int,
    marginal_p: float,
    tag: str,
) -> Tuple[Clip, PatternSpec]:
    """Like make_clip but passes the marginality knob to the family."""
    ox = snap(int(rng.integers(0, 1_000_000)))
    oy = snap(int(rng.integers(0, 1_000_000)))
    window = Rect(ox, oy, ox + window_nm, oy + window_nm)
    spec = FAMILIES[family](window, rng, marginal_p=marginal_p)
    layer = Layer("metal1")
    layer.add_rects(list(spec.rects))
    center = (ox + window_nm // 2, oy + window_nm // 2)
    clip = extract_clip(layer, center, window_nm, core_nm, tag=tag)
    return clip, spec

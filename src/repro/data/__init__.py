"""Synthetic ICCAD-2012-style benchmark data.

* :mod:`~repro.data.patterns` — parametric pattern families,
* :mod:`~repro.data.synth` — clip synthesis from family mixtures,
* :mod:`~repro.data.dataset` — :class:`ClipDataset` / :class:`Benchmark`,
* :mod:`~repro.data.benchmarks` — the 5-benchmark suite generator,
* :mod:`~repro.data.imbalance` — up-sampling / mirroring / SMOTE,
* :mod:`~repro.data.io` — dataset caching on disk.
"""

from .benchmarks import (
    SUITE_CONFIGS,
    VIA_CONFIG,
    BenchmarkConfig,
    make_benchmark,
    make_iccad2012_suite,
    make_via_benchmark,
)
from .dataset import HOTSPOT, NON_HOTSPOT, Benchmark, ClipDataset
from .imbalance import (
    augment_all_orientations,
    class_weights,
    smote,
    upsample_minority,
)
from .io import dataset_cache_key, load_dataset, save_dataset
from .layouts import (
    RoutedBlockConfig,
    replicate_block,
    seeded_recall,
    synthesize_routed_block,
)
from .patterns import FAMILIES, GRID, PatternSpec
from .via_patterns import VIA_FAMILIES
from .synth import DEFAULT_CORE_NM, DEFAULT_WINDOW_NM, FamilyMix, generate_clips, make_clip

__all__ = [
    "ClipDataset",
    "Benchmark",
    "HOTSPOT",
    "NON_HOTSPOT",
    "FamilyMix",
    "generate_clips",
    "make_clip",
    "DEFAULT_WINDOW_NM",
    "DEFAULT_CORE_NM",
    "FAMILIES",
    "GRID",
    "PatternSpec",
    "BenchmarkConfig",
    "SUITE_CONFIGS",
    "make_benchmark",
    "make_via_benchmark",
    "VIA_CONFIG",
    "make_iccad2012_suite",
    "upsample_minority",
    "augment_all_orientations",
    "smote",
    "class_weights",
    "save_dataset",
    "load_dataset",
    "dataset_cache_key",
    "RoutedBlockConfig",
    "synthesize_routed_block",
    "replicate_block",
    "seeded_recall",
    "VIA_FAMILIES",
]

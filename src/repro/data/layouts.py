"""Full-layout synthesis: routed blocks for full-chip scanning.

While :mod:`repro.data.synth` builds *per-clip* neighborhoods (the
training distribution), this module builds whole routed blocks — the
deployment distribution that :func:`repro.core.scan.scan_layer` sweeps.
Blocks are mostly comfortable routing with a configurable number of
seeded marginal geometries whose positions are returned for scoring
scan results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..geometry.layout import Layer
from ..geometry.rect import Rect
from .patterns import snap


@dataclass(frozen=True)
class RoutedBlockConfig:
    """Knobs for routed-block synthesis (integer nm)."""

    track_widths: Tuple[int, ...] = (64, 72, 80)
    track_gaps: Tuple[int, ...] = (64, 72, 96, 128)
    segment_min_nm: int = 600
    segment_max_nm: int = 2400
    gap_min_nm: int = 96
    gap_max_nm: int = 256
    track_fill_p: float = 0.8
    n_marginal: int = 6
    marginal_width_nm: int = 48
    marginal_space_nm: int = 48
    marginal_len_nm: int = 800

    def __post_init__(self) -> None:
        if self.segment_min_nm > self.segment_max_nm:
            raise ValueError("segment_min must be <= segment_max")
        if self.n_marginal < 0:
            raise ValueError("n_marginal must be non-negative")


def synthesize_routed_block(
    rng: np.random.Generator,
    region: Rect,
    config: Optional[RoutedBlockConfig] = None,
) -> Tuple[Layer, List[Tuple[int, int]]]:
    """Build a routed block; returns (layer, seeded marginal centers).

    The routing is horizontal-track based (segments with random lengths
    and gaps).  ``n_marginal`` thin tight-spaced wire pairs are seeded at
    random interior positions — the ground-truth-ish hot locations a scan
    should find (the lithography oracle remains the arbiter).
    """
    config = config or RoutedBlockConfig()
    rects: List[Rect] = []
    y = region.y1 + 64
    while y < region.y2 - 64:
        width = int(rng.choice(config.track_widths))
        if rng.random() < config.track_fill_p:
            x = region.x1
            while x < region.x2:
                seg = snap(int(rng.integers(config.segment_min_nm, config.segment_max_nm + 1)))
                rects.append(Rect(x, y, min(x + seg, region.x2), y + width))
                x += seg + snap(int(rng.integers(config.gap_min_nm, config.gap_max_nm + 1)))
        y += width + int(rng.choice(config.track_gaps))

    seeded: List[Tuple[int, int]] = []
    margin = max(config.marginal_len_nm, 800)
    for _ in range(config.n_marginal):
        cx = snap(int(rng.integers(region.x1 + margin, region.x2 - margin)))
        cy = snap(int(rng.integers(region.y1 + margin, region.y2 - margin)))
        w = config.marginal_width_nm
        s = config.marginal_space_nm
        half = config.marginal_len_nm // 2
        rects.append(Rect(cx - half, cy, cx + half, cy + w))
        rects.append(Rect(cx - half, cy + w + s, cx + half, cy + 2 * w + s))
        seeded.append((cx, cy + w + s // 2))

    layer = Layer("metal1")
    layer.add_rects(rects)
    return layer, seeded


def replicate_block(
    layer: Layer,
    cell: Rect,
    nx: int,
    ny: int,
    pitch_x: Optional[int] = None,
    pitch_y: Optional[int] = None,
) -> Layer:
    """Tile a cell's geometry into an ``nx x ny`` array (new layer).

    Models the dominant structure of real chips — the same routed cell
    stamped out in rows — which is exactly the workload where the scan
    runtime's content-hash dedup pays off: windows in one cell interior
    are geometrically identical to the corresponding windows of every
    other copy.  Keep the pitch a multiple of the scan step so repeated
    windows land on congruent local geometry.
    """
    if nx < 1 or ny < 1:
        raise ValueError("nx/ny must be >= 1")
    pitch_x = cell.width if pitch_x is None else pitch_x
    pitch_y = cell.height if pitch_y is None else pitch_y
    cell_rects = [
        r
        for r in (rect.intersection(cell) for p in layer.polygons for rect in p.rects)
        if r is not None
    ]
    out = Layer(layer.name)
    rects: List[Rect] = []
    for iy in range(ny):
        for ix in range(nx):
            dx, dy = ix * pitch_x, iy * pitch_y
            rects.extend(r.translate(dx, dy) for r in cell_rects)
    out.add_rects(rects)
    return out


def seeded_recall(
    seeded: List[Tuple[int, int]],
    hotspot_regions: List[Rect],
) -> float:
    """Fraction of seeded marginal spots covered by reported regions."""
    if not seeded:
        return 0.0
    hits = sum(
        1
        for (cx, cy) in seeded
        if any(r.contains_point(cx, cy) for r in hotspot_regions)
    )
    return hits / len(seeded)

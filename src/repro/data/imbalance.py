"""Imbalance handling: minority up-sampling, mirroring, SMOTE.

Hotspots are a small minority of any realistic clip population, and a
classifier trained on the raw distribution learns to say "never" — high
accuracy, zero recall, useless.  The survey's deep-learning recipe fixes
this before training:

* **minority up-sampling** — replicate hotspot clips until the class ratio
  reaches a target,
* **mirror flipping** — replicated clips are pushed through random D4
  orientations so the copies are not byte-identical (lithography is
  D4-equivariant, so labels are preserved),
* **SMOTE** — for feature-vector models, synthesize minority points by
  interpolating between nearest minority neighbors.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..geometry.layout import Clip
from ..geometry.transform import D4_NAMES, transform_clip
from .dataset import HOTSPOT, ClipDataset


def upsample_minority(
    dataset: ClipDataset,
    rng: np.random.Generator,
    target_ratio: float = 0.5,
    mirror: bool = True,
) -> ClipDataset:
    """Replicate hotspot clips until ``n_hs / n_nhs >= target_ratio``.

    With ``mirror=True`` each replica is a random non-identity D4
    orientation of its source clip (mirror-flip augmentation); otherwise
    replicas are exact copies.
    """
    if not 0.0 < target_ratio <= 1.0:
        raise ValueError("target_ratio must be in (0, 1]")
    hs_idx = dataset.hotspot_indices()
    n_hs, n_nhs = len(hs_idx), dataset.n_non_hotspots
    if n_hs == 0:
        raise ValueError("cannot upsample: dataset has no hotspots")
    deficit = int(np.ceil(target_ratio * n_nhs)) - n_hs
    if deficit <= 0:
        return dataset
    extra_clips: List[Clip] = []
    non_identity = [name for name in D4_NAMES if name != "identity"]
    for k in range(deficit):
        src = dataset.clips[int(hs_idx[k % n_hs])]
        if mirror:
            name = non_identity[int(rng.integers(len(non_identity)))]
            src = transform_clip(src, name)
        extra_clips.append(src)
    return dataset.extend(extra_clips, [HOTSPOT] * deficit)


def augment_all_orientations(
    dataset: ClipDataset, minority_only: bool = True
) -> ClipDataset:
    """Append all 7 non-identity orientations of (minority) clips."""
    extra_clips: List[Clip] = []
    extra_labels: List[int] = []
    for clip, label in zip(dataset.clips, dataset.labels):
        if minority_only and label != HOTSPOT:
            continue
        for name in D4_NAMES:
            if name == "identity":
                continue
            extra_clips.append(transform_clip(clip, name))
            extra_labels.append(int(label))
    return dataset.extend(extra_clips, extra_labels)


def smote(
    features: np.ndarray,
    labels: np.ndarray,
    rng: np.random.Generator,
    n_new: int,
    k_neighbors: int = 5,
) -> Tuple[np.ndarray, np.ndarray]:
    """SMOTE over feature vectors: returns (new_features, new_labels).

    Each synthetic point lies on the segment between a random minority
    point and one of its ``k_neighbors`` nearest minority neighbors.
    """
    labels = np.asarray(labels)
    minority = features[labels == HOTSPOT]
    if len(minority) < 2:
        raise ValueError("SMOTE needs at least 2 minority samples")
    k = min(k_neighbors, len(minority) - 1)
    # pairwise distances within the minority class
    d2 = ((minority[:, None, :] - minority[None, :, :]) ** 2).sum(axis=2)
    np.fill_diagonal(d2, np.inf)
    neighbor_idx = np.argsort(d2, axis=1)[:, :k]
    out = np.empty((n_new, features.shape[1]), dtype=features.dtype)
    for i in range(n_new):
        a = int(rng.integers(len(minority)))
        b = int(neighbor_idx[a, int(rng.integers(k))])
        t = rng.random()
        out[i] = minority[a] + t * (minority[b] - minority[a])
    return out, np.full(n_new, HOTSPOT, dtype=np.int64)


def class_weights(labels: np.ndarray) -> Tuple[float, float]:
    """Inverse-frequency (w_nhs, w_hs) weights normalized to mean 1."""
    labels = np.asarray(labels)
    n = len(labels)
    n_hs = int(labels.sum())
    n_nhs = n - n_hs
    if n_hs == 0 or n_nhs == 0:
        return 1.0, 1.0
    w_nhs = n / (2.0 * n_nhs)
    w_hs = n / (2.0 * n_hs)
    return float(w_nhs), float(w_hs)

"""Parametric layout pattern families.

Each family is a generator of rect soups for one clip neighborhood,
parameterized by geometry knobs (width, pitch, gap, ...) whose sampled
ranges straddle the lithography process's failure boundaries:

* long-run spacing below ~56 nm risks bridging spots at the dose+ corner,
* isolated wire width below ~56 nm risks necking/opens at dose-/defocus,
* convex corner pairs and dense jogs concentrate intensity into spots,
* narrow line ends pull back beyond the cap budget in starved contexts.

All coordinates snap to the 8 nm pixel grid (``GRID``).  Every family
function takes the clip *window* rect it should fill (patterns may overhang;
the caller clips) and a ``numpy.random.Generator``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..geometry.rect import Rect

GRID = 8  # nm; must equal the litho pixel pitch


def snap(v: float) -> int:
    """Round a coordinate to the pixel grid."""
    return int(round(v / GRID)) * GRID


PLACE_GRID = 32  # nm; placement lattice for random offsets (coarse so that
                 # repeated parameter draws often produce identical patterns)


def snap_place(v: float) -> int:
    """Round a coordinate to the coarse placement lattice."""
    return int(round(v / PLACE_GRID)) * PLACE_GRID


def _choice(rng: np.random.Generator, values: Sequence[int]) -> int:
    return int(values[int(rng.integers(len(values)))])


@dataclass(frozen=True)
class PatternSpec:
    """A generated pattern: its rects plus bookkeeping for diagnostics."""

    family: str
    rects: Tuple[Rect, ...]
    params: Dict[str, float]


PatternFn = Callable[[Rect, np.random.Generator], PatternSpec]

# parameter pools (nm, grid-aligned)
COMFORT_WIDTHS = (64, 72, 80, 96)
MARGINAL_WIDTHS = (40, 48, 56)
COMFORT_SPACES = (64, 72, 80, 96, 128)
MARGINAL_SPACES = (40, 48, 56)
T2T_GAPS = (48, 64, 80, 96, 128)
MARGINAL_T2T = (24, 32, 40)


def _width(rng: np.random.Generator, marginal_p: float) -> int:
    pool = MARGINAL_WIDTHS if rng.random() < marginal_p else COMFORT_WIDTHS
    return _choice(rng, pool)


def _space(rng: np.random.Generator, marginal_p: float) -> int:
    pool = MARGINAL_SPACES if rng.random() < marginal_p else COMFORT_SPACES
    return _choice(rng, pool)


# ----------------------------------------------------------------------
# families
# ----------------------------------------------------------------------
def grating(
    window: Rect, rng: np.random.Generator, marginal_p: float = 0.15
) -> PatternSpec:
    """Parallel wires at constant pitch through the whole window."""
    width = _width(rng, marginal_p)
    space = _space(rng, marginal_p)
    vertical = bool(rng.integers(2))
    pitch = width + space
    offset = snap_place(rng.integers(0, pitch))
    rects: List[Rect] = []
    if vertical:
        x = window.x1 - pitch + offset
        while x < window.x2 + pitch:
            rects.append(Rect(x, window.y1 - 64, x + width, window.y2 + 64))
            x += pitch
    else:
        y = window.y1 - pitch + offset
        while y < window.y2 + pitch:
            rects.append(Rect(window.x1 - 64, y, window.x2 + 64, y + width))
            y += pitch
    return PatternSpec(
        "grating",
        tuple(rects),
        {"width": width, "space": space, "vertical": float(vertical)},
    )


def comb(
    window: Rect, rng: np.random.Generator, marginal_p: float = 0.2
) -> PatternSpec:
    """Interdigitated fingers: alternating wires end inside the window."""
    width = _width(rng, marginal_p)
    space = _space(rng, marginal_p)
    pitch = width + space
    spine_w = _choice(rng, COMFORT_WIDTHS)
    gap = (
        _choice(rng, MARGINAL_T2T)
        if rng.random() < marginal_p
        else _choice(rng, T2T_GAPS)
    )
    cy = snap((window.y1 + window.y2) / 2)
    rects: List[Rect] = [
        Rect(window.x1 - 64, window.y1 - 64, window.x2 + 64, window.y1 - 64 + spine_w),
        Rect(window.x1 - 64, window.y2 + 64 - spine_w, window.x2 + 64, window.y2 + 64),
    ]
    x = window.x1 - pitch + snap_place(rng.integers(0, pitch))
    k = 0
    while x < window.x2 + pitch:
        if k % 2 == 0:  # finger from the bottom spine, tip below center
            rects.append(Rect(x, window.y1 - 64, x + width, cy - gap // 2))
        else:  # finger from the top spine, tip above center
            rects.append(Rect(x, cy + gap - gap // 2, x + width, window.y2 + 64))
        x += pitch
        k += 1
    return PatternSpec(
        "comb",
        tuple(rects),
        {"width": width, "space": space, "gap": gap},
    )


def tip_pair(
    window: Rect, rng: np.random.Generator, marginal_p: float = 0.25
) -> PatternSpec:
    """Two collinear wires facing tip-to-tip near the window center."""
    width = _width(rng, marginal_p)
    gap = (
        _choice(rng, MARGINAL_T2T)
        if rng.random() < marginal_p
        else _choice(rng, T2T_GAPS)
    )
    cx = snap_place((window.x1 + window.x2) / 2 + rng.integers(-48, 49))
    cy = snap_place((window.y1 + window.y2) / 2 + rng.integers(-48, 49))
    rects = [
        Rect(window.x1 - 64, cy, cx - gap // 2, cy + width),
        Rect(cx + gap - gap // 2, cy, window.x2 + 64, cy + width),
    ]
    # optional flanking context wires
    n_flank = int(rng.integers(0, 3))
    space = _space(rng, marginal_p / 2)
    for i in range(n_flank):
        off = (i + 1) * (width + space)
        rects.append(
            Rect(window.x1 - 64, cy - off, window.x2 + 64, cy - off + width)
        )
        rects.append(
            Rect(window.x1 - 64, cy + off, window.x2 + 64, cy + off + width)
        )
    return PatternSpec(
        "tip_pair",
        tuple(rects),
        {"width": width, "gap": gap, "flank": float(n_flank), "space": space},
    )


def l_corners(
    window: Rect, rng: np.random.Generator, marginal_p: float = 0.25
) -> PatternSpec:
    """Nested L-bends: concentric corner wires with a shared spacing."""
    width = _width(rng, marginal_p / 2)
    space = _space(rng, marginal_p)
    n = int(rng.integers(2, 5))
    cx = snap_place((window.x1 + window.x2) / 2 + rng.integers(-64, 65))
    cy = snap_place((window.y1 + window.y2) / 2 + rng.integers(-64, 65))
    rects: List[Rect] = []
    # each L: horizontal arm going left from (cx, cy+k*d), vertical arm down
    for k in range(n):
        d = k * (width + space)
        rects.append(Rect(window.x1 - 64, cy + d, cx + d + width, cy + d + width))
        rects.append(Rect(cx + d, window.y1 - 64, cx + d + width, cy + d + width))
    return PatternSpec(
        "l_corners",
        tuple(rects),
        {"width": width, "space": space, "n": float(n)},
    )


def jog_wires(
    window: Rect, rng: np.random.Generator, marginal_p: float = 0.2
) -> PatternSpec:
    """Parallel wires where one wire takes a lateral jog mid-window."""
    width = _width(rng, marginal_p)
    space = _space(rng, marginal_p)
    pitch = width + space
    jog = _choice(rng, (pitch // 2 // GRID * GRID, pitch))
    cy = snap_place((window.y1 + window.y2) / 2 + rng.integers(-64, 65))
    rects: List[Rect] = []
    x = window.x1 - pitch
    lane = 0
    jog_lane = int(rng.integers(1, 4))
    while x < window.x2 + pitch:
        if lane == jog_lane:
            # lower half in this lane; upper half shifted right by `jog`
            # into the gap left by skipping the next lane
            rects.append(Rect(x, window.y1 - 64, x + width, cy + width))
            rects.append(Rect(x + jog, cy, x + jog + width, window.y2 + 64))
            rects.append(Rect(x, cy, x + jog + width, cy + width))
        elif lane == jog_lane + 1:
            # the lane the jog lands in carries only a lower-half wire,
            # ending below the jog with a tip-to-side gap
            rects.append(
                Rect(x, window.y1 - 64, x + width, cy - space)
            )
        else:
            rects.append(Rect(x, window.y1 - 64, x + width, window.y2 + 64))
        x += pitch
        lane += 1
    return PatternSpec(
        "jog_wires",
        tuple(rects),
        {"width": width, "space": space, "jog": float(jog)},
    )


def random_routing(
    window: Rect, rng: np.random.Generator, marginal_p: float = 0.15
) -> PatternSpec:
    """Random Manhattan route segments on a coarse track grid.

    The closest analogue of real routed metal: segments of random length on
    horizontal/vertical tracks, occasionally connected by short stubs.
    """
    width = _width(rng, marginal_p)
    space = _space(rng, marginal_p)
    pitch = width + space
    rects: List[Rect] = []
    tracks: List[List[Tuple[int, int]]] = []  # per-track (x1, x2) segments
    n_tracks = max(2, (window.height + 128) // pitch)
    for t in range(n_tracks):
        y = window.y1 - 64 + t * pitch
        segments: List[Tuple[int, int]] = []
        x = window.x1 - 64
        while x < window.x2 + 64:
            if rng.random() < 0.7:  # draw a segment
                seg = snap(rng.integers(160, max(161, window.width)))
                x2 = min(x + seg, window.x2 + 64)
                rects.append(Rect(x, y, x2, y + width))
                segments.append((x, x2))
                x += seg + snap(rng.integers(space, 3 * space + 1))
            else:
                x += snap(rng.integers(pitch, 3 * pitch))
        tracks.append(segments)
    # vertical stubs joining adjacent tracks, placed only where both tracks
    # carry metal with clearance `space` from either segment's ends (no
    # accidental slivers at segment tips)
    n_stubs = int(rng.integers(0, 3))
    for _ in range(n_stubs):
        t = int(rng.integers(0, n_tracks - 1))
        spots = [
            (max(a1, b1) + space, min(a2, b2) - space - width)
            for a1, a2 in tracks[t]
            for b1, b2 in tracks[t + 1]
            if min(a2, b2) - max(a1, b1) > 2 * space + width
        ]
        if not spots:
            continue
        lo, hi = spots[int(rng.integers(len(spots)))]
        x = snap(rng.integers(lo, hi + 1))
        y = window.y1 - 64 + t * pitch
        rects.append(Rect(x, y, x + width, y + pitch + width))
    return PatternSpec(
        "random_routing",
        tuple(rects),
        {"width": width, "space": space},
    )


def isolated_wire(
    window: Rect, rng: np.random.Generator, marginal_p: float = 0.3
) -> PatternSpec:
    """A lone wire (optionally short) crossing the window center."""
    width = _width(rng, marginal_p)
    vertical = bool(rng.integers(2))
    offset = int(rng.integers(-64, 65))
    full = rng.random() < 0.7
    rects: List[Rect] = []
    if vertical:
        c = snap_place((window.x1 + window.x2) / 2 + offset)
        y1 = window.y1 - 64 if full else snap(rng.integers(window.y1, window.y1 + 200))
        y2 = window.y2 + 64 if full else snap(rng.integers(window.y2 - 200, window.y2))
        rects.append(Rect(c, y1, c + width, y2))
    else:
        c = snap_place((window.y1 + window.y2) / 2 + offset)
        x1 = window.x1 - 64 if full else snap(rng.integers(window.x1, window.x1 + 200))
        x2 = window.x2 + 64 if full else snap(rng.integers(window.x2 - 200, window.x2))
        rects.append(Rect(x1, c, x2, c + width))
    return PatternSpec(
        "isolated_wire",
        tuple(rects),
        {"width": width, "full": float(full)},
    )


def dense_block(
    window: Rect, rng: np.random.Generator, marginal_p: float = 0.2
) -> PatternSpec:
    """A dense grating block meeting a sparse region (density transition)."""
    width = _width(rng, marginal_p)
    space = _space(rng, marginal_p)
    pitch = width + space
    boundary = snap_place((window.x1 + window.x2) / 2 + rng.integers(-96, 97))
    rects: List[Rect] = []
    x = window.x1 - pitch
    while x + width <= boundary:
        rects.append(Rect(x, window.y1 - 64, x + width, window.y2 + 64))
        x += pitch
    # one lonely wire out in the sparse region
    lone = boundary + _choice(rng, (128, 192, 256))
    lone_w = _width(rng, marginal_p)
    rects.append(Rect(lone, window.y1 - 64, lone + lone_w, window.y2 + 64))
    return PatternSpec(
        "dense_block",
        tuple(rects),
        {"width": width, "space": space, "lone_width": lone_w},
    )


FAMILIES: Dict[str, PatternFn] = {
    "grating": grating,
    "comb": comb,
    "tip_pair": tip_pair,
    "l_corners": l_corners,
    "jog_wires": jog_wires,
    "random_routing": random_routing,
    "isolated_wire": isolated_wire,
    "dense_block": dense_block,
}

"""Dataset container for labeled clips.

``ClipDataset`` is the currency between the data layer and the detectors:
an ordered collection of clips with 0/1 hotspot labels, plus the statistics
and slicing operations the training loops and the contest-style tables
need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.layout import Clip

HOTSPOT = 1
NON_HOTSPOT = 0


@dataclass
class ClipDataset:
    """Labeled clips.  ``labels[i]`` is 1 (hotspot) or 0 for ``clips[i]``."""

    name: str
    clips: List[Clip]
    labels: np.ndarray

    def __post_init__(self) -> None:
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.labels.ndim != 1 or len(self.labels) != len(self.clips):
            raise ValueError("labels must be a 1-D array matching clips")
        bad = set(np.unique(self.labels)) - {0, 1}
        if bad:
            raise ValueError(f"labels must be 0/1, found {sorted(bad)}")

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.clips)

    def __getitem__(self, i: int) -> Tuple[Clip, int]:
        return self.clips[i], int(self.labels[i])

    @property
    def n_hotspots(self) -> int:
        return int(self.labels.sum())

    @property
    def n_non_hotspots(self) -> int:
        return len(self) - self.n_hotspots

    @property
    def hotspot_fraction(self) -> float:
        return self.n_hotspots / len(self) if len(self) else 0.0

    def hotspot_indices(self) -> np.ndarray:
        return np.nonzero(self.labels == HOTSPOT)[0]

    def non_hotspot_indices(self) -> np.ndarray:
        return np.nonzero(self.labels == NON_HOTSPOT)[0]

    # ------------------------------------------------------------------
    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "ClipDataset":
        idx = np.asarray(indices, dtype=np.int64)
        return ClipDataset(
            name=name or self.name,
            clips=[self.clips[i] for i in idx],
            labels=self.labels[idx],
        )

    def shuffled(self, rng: np.random.Generator) -> "ClipDataset":
        perm = rng.permutation(len(self))
        return self.subset(perm)

    def split(
        self, test_fraction: float, rng: np.random.Generator
    ) -> Tuple["ClipDataset", "ClipDataset"]:
        """Stratified train/test split preserving the hotspot fraction."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        train_idx: List[int] = []
        test_idx: List[int] = []
        for group in (self.hotspot_indices(), self.non_hotspot_indices()):
            group = group[rng.permutation(len(group))]
            n_test = int(round(len(group) * test_fraction))
            test_idx.extend(group[:n_test].tolist())
            train_idx.extend(group[n_test:].tolist())
        return (
            self.subset(sorted(train_idx), name=f"{self.name}/train"),
            self.subset(sorted(test_idx), name=f"{self.name}/test"),
        )

    def extend(self, clips: Sequence[Clip], labels: Sequence[int]) -> "ClipDataset":
        """A new dataset with extra samples appended."""
        return ClipDataset(
            name=self.name,
            clips=list(self.clips) + list(clips),
            labels=np.concatenate([self.labels, np.asarray(labels, dtype=np.int64)]),
        )

    def batches(
        self, batch_size: int, rng: Optional[np.random.Generator] = None
    ) -> Iterator[Tuple[List[Clip], np.ndarray]]:
        """Yield (clips, labels) mini-batches, optionally shuffled."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        order = (
            rng.permutation(len(self)) if rng is not None else np.arange(len(self))
        )
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield [self.clips[i] for i in idx], self.labels[idx]

    def summary(self) -> str:
        return (
            f"{self.name}: {len(self)} clips, "
            f"{self.n_hotspots} HS / {self.n_non_hotspots} NHS "
            f"({100 * self.hotspot_fraction:.1f}% hotspots)"
        )


@dataclass(frozen=True)
class Benchmark:
    """A contest-style benchmark: disjoint train and test populations."""

    name: str
    train: ClipDataset
    test: ClipDataset
    description: str = ""

    def summary(self) -> str:
        return f"[{self.name}] train {self.train.summary()} | test {self.test.summary()}"

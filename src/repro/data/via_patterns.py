"""Via-layer pattern families (the ICCAD-2020-style extension benchmark).

Vias are small squares — the hardest shapes to print.  Under this repo's
process, an isolated via needs ~96 nm to open reliably; down at 72–88 nm
printability depends on the *neighborhood* (dense arrays share light,
sparse ones starve), which is exactly the context-sensitivity a learned
detector must capture.  Families:

* ``via_array``   — regular s-at-pitch-p grids (the workhorse),
* ``via_row``     — a single row (less mutual support than a grid),
* ``isolated_via``— one via, sink-or-swim by size,
* ``via_cluster`` — random via placements at legal spacing,
* ``via_pair``    — two vias at a parameterized gap (redundant-via motif).

Same conventions as :mod:`repro.data.patterns` (8 nm grid, window-filling,
``marginal_p`` steers parameters toward the process boundary).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..geometry.rect import Rect
from .patterns import FAMILIES, PatternFn, PatternSpec, _choice, snap, snap_place

COMFORT_VIA_SIZES = (96, 104, 112)
MARGINAL_VIA_SIZES = (72, 80, 88)
VIA_PITCH_FACTORS = (2.0, 2.25, 2.5, 3.0)  # pitch = factor * size, snapped


def _via_size(rng: np.random.Generator, marginal_p: float) -> int:
    pool = MARGINAL_VIA_SIZES if rng.random() < marginal_p else COMFORT_VIA_SIZES
    return _choice(rng, pool)


def _pitch(rng: np.random.Generator, size: int) -> int:
    factor = VIA_PITCH_FACTORS[int(rng.integers(len(VIA_PITCH_FACTORS)))]
    return snap(size * factor)


def _via(cx: int, cy: int, size: int) -> Rect:
    # snap the lower-left corner so every edge stays on the 8 nm grid even
    # for sizes whose half is off-grid (e.g. 72/2 = 36)
    x1 = snap(cx - size / 2)
    y1 = snap(cy - size / 2)
    return Rect(x1, y1, x1 + size, y1 + size)


def via_array(
    window: Rect, rng: np.random.Generator, marginal_p: float = 0.2
) -> PatternSpec:
    """A regular grid of vias covering the window."""
    size = _via_size(rng, marginal_p)
    pitch = _pitch(rng, size)
    ox = snap_place(window.x1 + rng.integers(0, pitch))
    oy = snap_place(window.y1 + rng.integers(0, pitch))
    rects: List[Rect] = []
    y = oy - pitch
    while y < window.y2 + pitch:
        x = ox - pitch
        while x < window.x2 + pitch:
            rects.append(_via(x, y, size))
            x += pitch
        y += pitch
    return PatternSpec(
        "via_array", tuple(rects), {"size": size, "pitch": pitch}
    )


def via_row(
    window: Rect, rng: np.random.Generator, marginal_p: float = 0.25
) -> PatternSpec:
    """A single horizontal or vertical row of vias through the center."""
    size = _via_size(rng, marginal_p)
    pitch = _pitch(rng, size)
    vertical = bool(rng.integers(2))
    offset = int(rng.integers(-64, 65))
    if vertical:  # the row's fixed coordinate is x
        c = snap_place((window.x1 + window.x2) / 2 + offset)
    else:  # horizontal row: fixed coordinate is y
        c = snap_place((window.y1 + window.y2) / 2 + offset)
    rects: List[Rect] = []
    t = (window.y1 if vertical else window.x1) - pitch
    end = (window.y2 if vertical else window.x2) + pitch
    while t < end:
        if vertical:
            rects.append(_via(c, snap(t), size))
        else:
            rects.append(_via(snap(t), c, size))
        t += pitch
    return PatternSpec(
        "via_row",
        tuple(rects),
        {"size": size, "pitch": pitch, "vertical": float(vertical)},
    )


def isolated_via(
    window: Rect, rng: np.random.Generator, marginal_p: float = 0.35
) -> PatternSpec:
    """One lonely via near the core: prints iff its size carries it."""
    size = _via_size(rng, marginal_p)
    cx = snap_place((window.x1 + window.x2) / 2 + rng.integers(-64, 65))
    cy = snap_place((window.y1 + window.y2) / 2 + rng.integers(-64, 65))
    return PatternSpec("isolated_via", (_via(cx, cy, size),), {"size": size})


def via_cluster(
    window: Rect, rng: np.random.Generator, marginal_p: float = 0.2
) -> PatternSpec:
    """Random legal via placements on a coarse lattice (router-like)."""
    size = _via_size(rng, marginal_p)
    lattice = snap(size * 2.5)
    rects: List[Rect] = []
    n_cols = window.width // lattice + 2
    n_rows = window.height // lattice + 2
    fill = 0.15 + 0.5 * rng.random()
    for i in range(n_rows):
        for j in range(n_cols):
            if rng.random() < fill:
                cx = window.x1 + j * lattice
                cy = window.y1 + i * lattice
                rects.append(_via(snap(cx), snap(cy), size))
    if not rects:  # guarantee at least one via near the center
        rects.append(
            _via(
                snap((window.x1 + window.x2) / 2),
                snap((window.y1 + window.y2) / 2),
                size,
            )
        )
    return PatternSpec(
        "via_cluster", tuple(rects), {"size": size, "fill": fill}
    )


def via_pair(
    window: Rect, rng: np.random.Generator, marginal_p: float = 0.3
) -> PatternSpec:
    """Two adjacent vias (the redundant-via motif) at a sampled gap."""
    size = _via_size(rng, marginal_p)
    gap = _choice(rng, (48, 64, 80, 96, 128))
    cx = snap_place((window.x1 + window.x2) / 2 + rng.integers(-48, 49))
    cy = snap_place((window.y1 + window.y2) / 2 + rng.integers(-48, 49))
    left = _via(cx - (size + gap) // 2, cy, size)
    right = _via(cx + (size + gap) // 2, cy, size)
    return PatternSpec(
        "via_pair", (left, right), {"size": size, "gap": gap}
    )


VIA_FAMILIES: Dict[str, PatternFn] = {
    "via_array": via_array,
    "via_row": via_row,
    "isolated_via": isolated_via,
    "via_cluster": via_cluster,
    "via_pair": via_pair,
}

# join the shared family registry on import so FamilyMix recipes can
# reference via families by name
FAMILIES.update(VIA_FAMILIES)

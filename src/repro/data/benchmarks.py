"""ICCAD-2012-style benchmark suite.

Five benchmarks with the contest's *shape*: disjoint train/test clip
populations, heavy class imbalance, and increasing difficulty — B1 is a
small, pattern-poor benchmark where matching-based detectors do well; B5
mixes families so the test set contains configurations the train set never
shows.  Labels come from the lithography oracle, making them a physical
(not arbitrary) function of the geometry.

Because labeling is simulation, suites are cached on disk after first
generation (see :mod:`repro.data.io`).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..litho.hotspot import HotspotOracle
from .dataset import Benchmark, ClipDataset
from .io import dataset_cache_key, load_dataset, save_dataset
from .synth import DEFAULT_CORE_NM, DEFAULT_WINDOW_NM, FamilyMix, generate_clips
from . import via_patterns  # noqa: F401  (registers via families)


@dataclass(frozen=True)
class BenchmarkConfig:
    """Generation recipe for one benchmark."""

    name: str
    n_train: int
    n_test: int
    mix: FamilyMix
    test_mix: Optional[FamilyMix] = None  # defaults to `mix`
    description: str = ""

    def resolved_test_mix(self) -> FamilyMix:
        return self.test_mix if self.test_mix is not None else self.mix


def _mix(weights: Dict[str, float], marginal: float, **per_family: float) -> FamilyMix:
    return FamilyMix(
        weights=weights, marginal_p=dict(per_family), default_marginal_p=marginal
    )


#: The five benchmark recipes.  Scaled-down clip counts keep full-suite
#: generation tractable on one CPU while preserving the contest's ratios:
#: a couple of small benchmarks, larger imbalanced ones, and a hard mixed
#: benchmark whose test distribution departs from train.
SUITE_CONFIGS: Tuple[BenchmarkConfig, ...] = (
    BenchmarkConfig(
        name="B1",
        n_train=500,
        n_test=700,
        mix=_mix({"grating": 2.0, "tip_pair": 2.0, "isolated_wire": 1.0}, 0.22),
        test_mix=_mix({"grating": 2.0, "tip_pair": 2.0, "isolated_wire": 1.0}, 0.10),
        description="small, pattern-poor: gratings, facing tips, isolated wires",
    ),
    BenchmarkConfig(
        name="B2",
        n_train=900,
        n_test=1200,
        mix=_mix(
            {"grating": 2.0, "comb": 2.0, "jog_wires": 1.5, "isolated_wire": 1.0},
            0.08,
        ),
        test_mix=_mix(
            {"grating": 2.0, "comb": 2.0, "jog_wires": 1.5, "isolated_wire": 1.0},
            0.04,
        ),
        description="medium, line-end rich: combs and jogs added",
    ),
    BenchmarkConfig(
        name="B3",
        n_train=1200,
        n_test=1600,
        mix=_mix(
            {
                "grating": 1.5,
                "comb": 1.5,
                "l_corners": 2.0,
                "dense_block": 1.5,
                "random_routing": 1.0,
            },
            0.14,
        ),
        test_mix=_mix(
            {
                "grating": 1.5,
                "comb": 1.5,
                "l_corners": 2.0,
                "dense_block": 1.5,
                "random_routing": 1.0,
            },
            0.08,
        ),
        description="largest: corners and density transitions dominate",
    ),
    BenchmarkConfig(
        name="B4",
        n_train=900,
        n_test=1300,
        mix=_mix(
            {
                "grating": 2.5,
                "random_routing": 2.0,
                "jog_wires": 1.0,
                "dense_block": 1.0,
            },
            0.03,
        ),
        test_mix=_mix(
            {
                "grating": 2.5,
                "random_routing": 2.0,
                "jog_wires": 1.0,
                "dense_block": 1.0,
            },
            0.015,
        ),
        description="most imbalanced: mostly comfortable routing, few marginal",
    ),
    BenchmarkConfig(
        name="B5",
        n_train=700,
        n_test=1000,
        mix=_mix(
            {"grating": 2.0, "comb": 1.0, "jog_wires": 1.0, "isolated_wire": 1.0},
            0.10,
        ),
        test_mix=_mix(
            {
                "l_corners": 1.5,
                "tip_pair": 1.5,
                "dense_block": 1.0,
                "random_routing": 1.0,
                "comb": 1.0,
            },
            0.06,
        ),
        description="distribution shift: test families differ from train",
    ),
)


#: The via-layer extension benchmark (ICCAD-2020-style): small squares
#: whose printability depends on neighborhood support.  Harder than the
#: metal suite — the failure boundary is size x context, not just spacing.
VIA_CONFIG = BenchmarkConfig(
    name="BV",
    n_train=700,
    n_test=1000,
    mix=_mix(
        {
            "via_array": 2.0,
            "via_row": 1.5,
            "via_cluster": 1.5,
            "isolated_via": 1.0,
            "via_pair": 1.0,
        },
        0.18,
    ),
    test_mix=_mix(
        {
            "via_array": 2.0,
            "via_row": 1.5,
            "via_cluster": 1.5,
            "isolated_via": 1.0,
            "via_pair": 1.0,
        },
        0.10,
    ),
    description="via layer: printability set by size x neighborhood support",
)


def make_via_benchmark(
    seed: int = 2020,
    oracle: Optional[HotspotOracle] = None,
    cache_dir: Optional[Path] = None,
    scale: float = 1.0,
) -> Benchmark:
    """The via-layer extension benchmark ('BV')."""
    config = VIA_CONFIG
    if scale != 1.0:
        config = BenchmarkConfig(
            name=config.name,
            n_train=max(20, int(config.n_train * scale)),
            n_test=max(20, int(config.n_test * scale)),
            mix=config.mix,
            test_mix=config.test_mix,
            description=config.description,
        )
    return make_benchmark(config, seed=seed, oracle=oracle, cache_dir=cache_dir)


def make_benchmark(
    config: BenchmarkConfig,
    seed: int,
    oracle: Optional[HotspotOracle] = None,
    window_nm: int = DEFAULT_WINDOW_NM,
    core_nm: int = DEFAULT_CORE_NM,
    cache_dir: Optional[Path] = None,
) -> Benchmark:
    """Generate (or load from cache) one labeled benchmark."""
    oracle = oracle or HotspotOracle()
    datasets: List[ClipDataset] = []
    for split, n, mix, sub_seed in (
        ("train", config.n_train, config.mix, seed),
        ("test", config.n_test, config.resolved_test_mix(), seed + 7919),
    ):
        name = f"{config.name}/{split}"
        key = dataset_cache_key(name, sub_seed, n, window_nm, core_nm)
        if cache_dir is not None:
            cached = load_dataset(cache_dir, key)
            if cached is not None:
                datasets.append(cached)
                continue
        rng = np.random.default_rng(sub_seed)
        clips, _specs = generate_clips(rng, mix, n, window_nm, core_nm)
        labels = oracle.label_many(clips)
        ds = ClipDataset(name=name, clips=clips, labels=labels)
        if cache_dir is not None:
            save_dataset(ds, cache_dir, key)
        datasets.append(ds)
    train, test = datasets
    return Benchmark(
        name=config.name, train=train, test=test, description=config.description
    )


def make_iccad2012_suite(
    seed: int = 2012,
    oracle: Optional[HotspotOracle] = None,
    cache_dir: Optional[Path] = None,
    configs: Sequence[BenchmarkConfig] = SUITE_CONFIGS,
    scale: float = 1.0,
) -> List[Benchmark]:
    """The full 5-benchmark suite.

    ``scale`` multiplies every clip count (e.g. ``scale=0.1`` for quick
    tests).  Each benchmark gets a distinct seed derived from ``seed``.
    """
    suite: List[Benchmark] = []
    for i, config in enumerate(configs):
        if scale != 1.0:
            config = BenchmarkConfig(
                name=config.name,
                n_train=max(20, int(config.n_train * scale)),
                n_test=max(20, int(config.n_test * scale)),
                mix=config.mix,
                test_mix=config.test_mix,
                description=config.description,
            )
        suite.append(
            make_benchmark(
                config, seed=seed + 1000 * i, oracle=oracle, cache_dir=cache_dir
            )
        )
    return suite

"""Runtime shape/dtype/unit contracts for the detection stack.

Two halves:

* **decorators** — ``@shaped("(n,h,w)->(n,):float64")`` declares a
  function's array contract in a tiny spec mini-language (named dims,
  literals, ``*``, ``...``, dtype classes; see
  :mod:`repro.contracts.spec`).  Checking is off by default and
  process-wide switchable via :func:`enable` / :func:`disable` /
  :func:`checking` or ``REPRO_CONTRACTS=1``; disabled contracts cost one
  global read per call.
* **conformance** — :func:`check_detector` / :func:`check_extractor`
  probe an object against the cross-detector interface rules (float64
  ``(n,)`` scores, batch/scalar parity, raster-path parity, ``(0, ...)``
  empty-input returns) and report structured diagnostics;
  :func:`check_registered_detectors` / :func:`check_registered_extractors`
  sweep the registries and back the ``repro-lhd check`` CI gate.

The conformance half is imported lazily (PEP 562) so low-level modules
can use ``@shaped`` without creating import cycles.
"""

from __future__ import annotations

from .decorators import (
    checking,
    disable,
    enable,
    enabled,
    require,
    require_scores,
    shaped,
)
from .spec import (
    ArgSpec,
    ArraySpec,
    ContractViolation,
    SeqSpec,
    SkipSpec,
    Spec,
    SpecError,
    dtypes_compatible,
    parse_spec,
    specs_compatible,
)

__all__ = [
    "shaped",
    "require",
    "require_scores",
    "enable",
    "disable",
    "enabled",
    "checking",
    "parse_spec",
    "specs_compatible",
    "dtypes_compatible",
    "Spec",
    "ArgSpec",
    "ArraySpec",
    "SeqSpec",
    "SkipSpec",
    "SpecError",
    "ContractViolation",
    "Diagnostic",
    "ConformanceReport",
    "check_detector",
    "check_extractor",
    "check_registered_detectors",
    "check_registered_extractors",
    "probe_clips",
    "probe_dataset",
]

_CONFORMANCE_NAMES = {
    "Diagnostic",
    "ConformanceReport",
    "check_detector",
    "check_extractor",
    "check_registered_detectors",
    "check_registered_extractors",
    "probe_clips",
    "probe_dataset",
}


def __getattr__(name: str):
    if name in _CONFORMANCE_NAMES:
        from . import conformance

        return getattr(conformance, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

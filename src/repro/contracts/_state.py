"""Shared on/off switch for runtime contract checking.

Kept in its own module so the decorator fast path is a single attribute
read on a plain module global — no function call, no indirection — which
is what keeps disabled contracts unmeasurable on the scan hot path.
"""

from __future__ import annotations

import os

#: True when contract checking is live.  Mutated only via
#: :func:`repro.contracts.enable` / :func:`repro.contracts.disable`.
active: bool = os.environ.get("REPRO_CONTRACTS", "").lower() in (
    "1",
    "true",
    "on",
    "yes",
)

"""The shape/dtype contract mini-language.

A spec string describes what a function consumes and returns::

    "(n,gh,gw)->(n,):float64"     # array in, float64 vector out
    "[n]->(n,):float"             # sequence in, same-length float vector out
    "(n,h,w),(n,)->(n,)"          # two positional arrays in
    "_->(*,):float64"             # first argument unchecked
    "(n,...)->(n,)"               # leading dim checked, rest free

Grammar (whitespace is ignored)::

    spec     := inputs ( '->' argspec )?
    inputs   := argspec ( ',' argspec )*      -- top-level commas only
    argspec  := '_' | '[' dim ']' | shape ( ':' DTYPE )?
    shape    := '*' | '(' dim ( ',' dim )* ','? ')' | '()'
    dim      := NAME | INT | '*' | '...'

Semantics:

* ``NAME`` dims bind on first use and must agree everywhere else in the
  same call — ``(n,h,w)->(n,)`` asserts the output length equals the
  batch size.
* ``INT`` dims must match exactly; ``*`` matches any single dim.
* ``...`` (at most once per shape) matches any run of dims, including an
  empty one — the broadcasting escape hatch for "(n, <whatever the
  feature shape is>)".
* ``[n]`` matches any sized object (list, tuple, ndarray) and binds the
  dim to ``len(value)`` — how ``predict_proba(clips)`` ties its output
  length to the clip count.
* ``_`` skips the argument (or the return value) entirely.
* ``:DTYPE`` constrains the array dtype by *class*: ``float`` (any
  floating), ``int`` (any integer), ``num`` (any number), ``bool``,
  ``any``, or an exact name (``float64``, ``float32``, ``int64``).

Specs are parsed once (cached) at decoration time; matching is a few
tuple comparisons per call when contracts are enabled.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Tuple, Union

import numpy as np


class SpecError(ValueError):
    """Raised at decoration time for a malformed contract spec."""


class ContractViolation(AssertionError):
    """A value broke its declared shape/dtype contract.

    Subclasses ``AssertionError`` because a violation is a programming
    error in the caller or implementation, never expected control flow.
    """

    def __init__(
        self,
        func: str,
        arg: str,
        spec: str,
        message: str,
    ) -> None:
        self.func = func
        self.arg = arg
        self.spec = spec
        self.message = message
        super().__init__(
            f"{func}: {arg} violates contract {spec!r}: {message}"
        )


# --------------------------------------------------------------------------
# parsed representation
# --------------------------------------------------------------------------
_ANY = "*"
_ELLIPSIS = "..."
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

#: dim is an int (literal), a str name, "*" or "..."
DimT = Union[int, str]


@dataclass(frozen=True)
class SkipSpec:
    """``_`` — the value is not checked."""


@dataclass(frozen=True)
class SeqSpec:
    """``[n]`` — any sized object; binds ``dim`` to its length."""

    dim: DimT


@dataclass(frozen=True)
class ArraySpec:
    """An ndarray constraint: dims (None = any shape) plus dtype class."""

    dims: Optional[Tuple[DimT, ...]]
    dtype: Optional[str]


ArgSpec = Union[SkipSpec, SeqSpec, ArraySpec]


@dataclass(frozen=True)
class Spec:
    """A fully parsed contract: input arg specs and an output spec."""

    text: str
    inputs: Tuple[ArgSpec, ...]
    output: Optional[ArgSpec]


_DTYPE_CLASSES = ("float", "int", "num", "bool", "any")
_DTYPE_EXACT = ("float64", "float32", "int64", "int32", "uint8")


def _split_top_level(text: str, sep: str) -> list:
    """Split on ``sep`` outside any bracket nesting."""
    parts = []
    depth = 0
    current = []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
            if depth < 0:
                raise SpecError(f"unbalanced brackets in {text!r}")
        if ch == sep and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if depth != 0:
        raise SpecError(f"unbalanced brackets in {text!r}")
    parts.append("".join(current))
    return parts


def _parse_dim(token: str, spec_text: str) -> DimT:
    if token == _ANY or token == _ELLIPSIS:
        return token
    if re.fullmatch(r"\d+", token):
        return int(token)
    if _NAME_RE.match(token):
        return token
    raise SpecError(f"bad dim {token!r} in spec {spec_text!r}")


def _parse_argspec(token: str, spec_text: str) -> ArgSpec:
    token = token.strip()
    if not token:
        raise SpecError(f"empty arg spec in {spec_text!r}")
    if token == "_":
        return SkipSpec()
    if token.startswith("["):
        if not token.endswith("]"):
            raise SpecError(f"unterminated sequence spec in {spec_text!r}")
        inner = token[1:-1].strip()
        dim = _parse_dim(inner, spec_text)
        if dim == _ELLIPSIS:
            raise SpecError(f"'...' is not a sequence length in {spec_text!r}")
        return SeqSpec(dim)
    dtype: Optional[str] = None
    shape_part = token
    if ":" in token:
        shape_part, _, dtype = token.rpartition(":")
        dtype = dtype.strip()
        shape_part = shape_part.strip()
        if dtype not in _DTYPE_CLASSES and dtype not in _DTYPE_EXACT:
            raise SpecError(
                f"unknown dtype class {dtype!r} in spec {spec_text!r}; "
                f"expected one of {_DTYPE_CLASSES + _DTYPE_EXACT}"
            )
    if shape_part == _ANY:
        return ArraySpec(dims=None, dtype=dtype)
    if not (shape_part.startswith("(") and shape_part.endswith(")")):
        raise SpecError(f"bad shape {shape_part!r} in spec {spec_text!r}")
    inner = shape_part[1:-1].strip()
    if not inner:
        return ArraySpec(dims=(), dtype=dtype)
    tokens = [t.strip() for t in inner.split(",")]
    if tokens and tokens[-1] == "":  # trailing comma: "(n,)"
        tokens.pop()
    dims = tuple(_parse_dim(t, spec_text) for t in tokens)
    if dims.count(_ELLIPSIS) > 1:
        raise SpecError(f"at most one '...' per shape in {spec_text!r}")
    return ArraySpec(dims=dims, dtype=dtype)


@lru_cache(maxsize=None)
def parse_spec(text: str) -> Spec:
    """Parse a contract spec string (cached; raises :class:`SpecError`)."""
    compact = re.sub(r"\s+", "", text)
    if not compact:
        raise SpecError("empty contract spec")
    halves = compact.split("->")
    if len(halves) > 2:
        raise SpecError(f"more than one '->' in spec {text!r}")
    inputs_text = halves[0]
    output: Optional[ArgSpec] = None
    if len(halves) == 2:
        output = _parse_argspec(halves[1], text)
    inputs: Tuple[ArgSpec, ...] = ()
    if inputs_text:
        inputs = tuple(
            _parse_argspec(tok, text)
            for tok in _split_top_level(inputs_text, ",")
        )
    return Spec(text=text, inputs=inputs, output=output)


# --------------------------------------------------------------------------
# static compatibility (spec-vs-spec unification, no values involved)
# --------------------------------------------------------------------------
# Finite atom model of the dtype-class lattice: each constraint denotes a
# set of concrete dtypes; two constraints are compatible iff the sets
# intersect.  The "float?"/"int?"/"num?" atoms stand for the open tail of
# each class (float16, int8, ...) so ``float`` and ``num`` overlap even
# outside the exactly-nameable dtypes.
_DTYPE_ATOMS: Dict[str, frozenset] = {
    "float64": frozenset({"float64"}),
    "float32": frozenset({"float32"}),
    "int64": frozenset({"int64"}),
    "int32": frozenset({"int32"}),
    "uint8": frozenset({"uint8"}),
    "bool": frozenset({"bool"}),
    "float": frozenset({"float64", "float32", "float?"}),
    "int": frozenset({"int64", "int32", "uint8", "int?"}),
}
_DTYPE_ATOMS["num"] = _DTYPE_ATOMS["float"] | _DTYPE_ATOMS["int"] | frozenset({"num?"})


def dtypes_compatible(a: Optional[str], b: Optional[str]) -> bool:
    """Can some concrete dtype satisfy both constraints?

    ``None`` and ``"any"`` are unconstrained.  Used by the static
    contract-flow analyzer; runtime matching goes through
    :func:`match_argspec` instead.
    """
    if a in (None, "any") or b in (None, "any"):
        return True
    return bool(_DTYPE_ATOMS[a] & _DTYPE_ATOMS[b])


def _rank_bounds(dims: Optional[Tuple[DimT, ...]]) -> Tuple[int, Optional[int]]:
    """(min_rank, max_rank) a dims tuple can match; max None = unbounded."""
    if dims is None:
        return 0, None
    if _ELLIPSIS in dims:
        return len(dims) - 1, None
    return len(dims), len(dims)


def _split_ellipsis(
    dims: Tuple[DimT, ...]
) -> Tuple[Tuple[DimT, ...], Tuple[DimT, ...]]:
    """(head, tail) around '...'; tail empty when there is no ellipsis."""
    if _ELLIPSIS not in dims:
        return dims, ()
    i = dims.index(_ELLIPSIS)
    return dims[:i], dims[i + 1 :]


def _literal_conflict(a: DimT, b: DimT) -> bool:
    """Two dim tokens that can never describe the same size."""
    return isinstance(a, int) and isinstance(b, int) and a != b


def _array_dims_compatible(
    a: Tuple[DimT, ...], b: Tuple[DimT, ...]
) -> Optional[str]:
    a_min, a_max = _rank_bounds(a)
    b_min, b_max = _rank_bounds(b)
    if (a_max is not None and a_max < b_min) or (
        b_max is not None and b_max < a_min
    ):
        return f"rank conflict: {a} can never match {b}"
    a_head, a_tail = _split_ellipsis(a)
    b_head, b_tail = _split_ellipsis(b)
    if _ELLIPSIS not in a and _ELLIPSIS not in b:
        pairs = list(zip(a, b))
    else:
        pairs = list(zip(a_head, b_head))
        if a_tail and b_tail:
            pairs += list(zip(reversed(a_tail), reversed(b_tail)))
        elif a_tail and _ELLIPSIS not in b:
            pairs += list(zip(reversed(a_tail), reversed(b)))
        elif b_tail and _ELLIPSIS not in a:
            pairs += list(zip(reversed(b_tail), reversed(a)))
    for da, db in pairs:
        if _literal_conflict(da, db):
            return f"dim conflict: literal {da} can never equal {db}"
    return None


def specs_compatible(a: ArgSpec, b: ArgSpec) -> Optional[str]:
    """Could *some* value satisfy both arg specs?  None, or the reason not.

    The static unification behind the ``contract-flow`` semantic lint
    rule: named dims are treated as independent wildcards (cross-spec
    name identity carries no constraint), so only definite conflicts —
    disjoint rank sets, clashing literal dims, disjoint dtype classes —
    are reported.  Compatibility is reflexive and symmetric; it is *not*
    transitive (``*`` is compatible with everything).
    """
    if isinstance(a, SkipSpec) or isinstance(b, SkipSpec):
        return None
    if isinstance(a, SeqSpec) and isinstance(b, SeqSpec):
        if _literal_conflict(a.dim, b.dim):
            return (
                f"sequence length conflict: [{a.dim}] can never match [{b.dim}]"
            )
        return None
    if isinstance(a, SeqSpec) or isinstance(b, SeqSpec):
        seq, arr = (a, b) if isinstance(a, SeqSpec) else (b, a)
        assert isinstance(arr, ArraySpec)
        if arr.dims is None:
            return None
        _, arr_max = _rank_bounds(arr.dims)
        if arr_max == 0:
            return "a rank-0 array is never a sized sequence"
        lead = arr.dims[0] if arr.dims and arr.dims[0] != _ELLIPSIS else None
        if lead is not None and _literal_conflict(seq.dim, lead):
            return (
                f"sequence length [{seq.dim}] can never match leading "
                f"dim {lead}"
            )
        return None
    assert isinstance(a, ArraySpec) and isinstance(b, ArraySpec)
    if not dtypes_compatible(a.dtype, b.dtype):
        return f"dtype conflict: {a.dtype} is disjoint from {b.dtype}"
    if a.dims is None or b.dims is None:
        return None
    return _array_dims_compatible(a.dims, b.dims)


# --------------------------------------------------------------------------
# matching
# --------------------------------------------------------------------------
def _bind_dim(
    dim: DimT, size: int, env: Dict[str, int]
) -> Optional[str]:
    """Match one dim; returns an error string or None."""
    if dim == _ANY:
        return None
    if isinstance(dim, int):
        if size != dim:
            return f"dim expected {dim}, got {size}"
        return None
    bound = env.get(dim)
    if bound is None:
        env[dim] = size
        return None
    if bound != size:
        return f"dim {dim!r} bound to {bound}, got {size}"
    return None


def _check_dtype(dtype_class: str, dtype: np.dtype) -> Optional[str]:
    if dtype_class == "any":
        return None
    if dtype_class == "float":
        ok = np.issubdtype(dtype, np.floating)
    elif dtype_class == "int":
        ok = np.issubdtype(dtype, np.integer)
    elif dtype_class == "num":
        ok = np.issubdtype(dtype, np.number)
    elif dtype_class == "bool":
        ok = dtype == np.bool_
    else:  # exact dtype name
        ok = dtype == np.dtype(dtype_class)
    if not ok:
        return f"dtype expected {dtype_class}, got {dtype}"
    return None


def match_argspec(
    argspec: ArgSpec, value, env: Dict[str, int]
) -> Optional[str]:
    """Match ``value`` against ``argspec`` under dim bindings ``env``.

    Returns an error message, or None on success.  ``env`` accumulates
    named-dim bindings across the arguments of one call.
    """
    if isinstance(argspec, SkipSpec):
        return None
    if isinstance(argspec, SeqSpec):
        try:
            n = len(value)
        except TypeError:
            return f"expected a sized sequence, got {type(value).__name__}"
        return _bind_dim(argspec.dim, n, env)
    if not isinstance(value, np.ndarray):
        return f"expected ndarray, got {type(value).__name__}"
    if argspec.dtype is not None:
        err = _check_dtype(argspec.dtype, value.dtype)
        if err is not None:
            return err
    if argspec.dims is None:
        return None
    shape = value.shape
    dims = argspec.dims
    if _ELLIPSIS in dims:
        i = dims.index(_ELLIPSIS)
        head, tail = dims[:i], dims[i + 1 :]
        if len(shape) < len(head) + len(tail):
            return f"shape {shape} too short for spec dims {dims}"
        pairs = list(zip(head, shape[: len(head)]))
        if tail:
            pairs += list(zip(tail, shape[-len(tail) :]))
    else:
        if len(shape) != len(dims):
            return (
                f"rank expected {len(dims)} {tuple(dims)}, "
                f"got {len(shape)} {shape}"
            )
        pairs = list(zip(dims, shape))
    for dim, size in pairs:
        err = _bind_dim(dim, size, env)
        if err is not None:
            return f"shape {shape}: {err}"
    return None

"""The ``@shaped`` decorator family and the functional ``require`` check.

``@shaped("(n,h,w)->(n,):float64")`` declares a function's array
contract.  When contracts are disabled (the default) the wrapper is a
single module-global read and a tail call — unmeasurable next to any
numpy work; when enabled (:func:`enable`, the :func:`checking` context
manager, or ``REPRO_CONTRACTS=1`` in the environment, which ``spawn``-ed
worker processes inherit) every decorated call validates its inputs and
return value and raises :class:`~repro.contracts.spec.ContractViolation`
on the first mismatch.

Input specs map positionally onto the function's parameters (``self`` /
``cls`` are skipped automatically); extra parameters beyond the declared
specs are simply unchecked.
"""

from __future__ import annotations

import contextlib
import functools
import inspect
from typing import Dict, Iterator

import numpy as np

from . import _state
from .spec import ContractViolation, SpecError, match_argspec, parse_spec


def enable() -> None:
    """Turn runtime contract checking on (process-wide)."""
    _state.active = True


def disable() -> None:
    """Turn runtime contract checking off (process-wide)."""
    _state.active = False


def enabled() -> bool:
    """True when contract checking is currently live."""
    return _state.active


@contextlib.contextmanager
def checking(on: bool = True) -> Iterator[None]:
    """Context manager scoping the contracts switch::

        with contracts.checking():
            engine.scan(...)
    """
    previous = _state.active
    _state.active = on
    try:
        yield
    finally:
        _state.active = previous


def shaped(spec_text: str):
    """Declare a shape/dtype contract on a function or method.

    The spec is parsed at decoration time (``SpecError`` on a bad spec,
    so typos fail at import, not first call).  The parsed spec is
    attached as ``__contract__`` for tooling.
    """
    spec = parse_spec(spec_text)

    def decorate(fn):
        sig = inspect.signature(fn)
        params = [
            name for name in sig.parameters if name not in ("self", "cls")
        ]
        if len(spec.inputs) > len(params):
            raise SpecError(
                f"{fn.__qualname__}: spec {spec_text!r} declares "
                f"{len(spec.inputs)} inputs but the function has only "
                f"{len(params)} checkable parameters"
            )
        checked = [
            (pname, argspec)
            for pname, argspec in zip(params, spec.inputs)
        ]
        qualname = fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _state.active:
                return fn(*args, **kwargs)
            env: Dict[str, int] = {}
            bound = sig.bind(*args, **kwargs)
            for pname, argspec in checked:
                if pname not in bound.arguments:
                    continue  # defaulted-out argument: nothing to check
                err = match_argspec(argspec, bound.arguments[pname], env)
                if err is not None:
                    raise ContractViolation(qualname, pname, spec_text, err)
            result = fn(*args, **kwargs)
            if spec.output is not None:
                err = match_argspec(spec.output, result, env)
                if err is not None:
                    raise ContractViolation(
                        qualname, "return", spec_text, err
                    )
            return result

        wrapper.__contract__ = spec
        return wrapper

    return decorate


def require(spec_text: str, *values, func: str = "require", **dims) -> None:
    """Check values against arg specs in place (no-op when disabled).

    For call sites where a decorator doesn't fit — e.g. validating the
    assembled score array inside :meth:`ScanEngine.scan`::

        contracts.require("(n,):float64", scores, n=len(centers))

    ``spec_text`` holds one comma-separated arg spec per value (no
    ``->``); keyword arguments pre-bind named dims.
    """
    if not _state.active:
        return
    spec = parse_spec(spec_text)
    if spec.output is not None:
        raise SpecError(f"require() spec {spec_text!r} must not use '->'")
    if len(spec.inputs) != len(values):
        raise SpecError(
            f"require() got {len(values)} values for "
            f"{len(spec.inputs)} specs in {spec_text!r}"
        )
    env: Dict[str, int] = dict(dims)
    for i, (argspec, value) in enumerate(zip(spec.inputs, values)):
        err = match_argspec(argspec, value, env)
        if err is not None:
            raise ContractViolation(func, f"value[{i}]", spec_text, err)


def require_scores(scores, *, func: str = "require_scores") -> None:
    """Always-on guard for detector score arrays: float64, finite, in [0, 1].

    Unlike :func:`require`, this check is **not** gated by the contracts
    switch: it is the runtime validation barrier the scan supervision
    layer (:class:`repro.runtime.pool.WorkerPool`) relies on to detect a
    misbehaving or fault-injected scorer — a NaN that slips through here
    silently un-flags a window, so the check must hold in production,
    not just under ``REPRO_CONTRACTS=1``.  Raises
    :class:`~repro.contracts.spec.ContractViolation` with the first
    violation found.
    """
    arr = np.asarray(scores)
    spec_text = "(n,):float64 finite in [0,1]"
    if arr.dtype != np.float64:
        raise ContractViolation(
            func, "scores", spec_text, f"dtype {arr.dtype}, expected float64"
        )
    if arr.ndim != 1:
        raise ContractViolation(
            func, "scores", spec_text, f"ndim {arr.ndim}, expected 1"
        )
    if arr.size == 0:
        return
    if not np.isfinite(arr).all():
        bad = int(np.flatnonzero(~np.isfinite(arr))[0])
        raise ContractViolation(
            func, "scores", spec_text,
            f"non-finite score {arr[bad]} at index {bad}",
        )
    lo = float(arr.min())
    hi = float(arr.max())
    if lo < 0.0 or hi > 1.0:
        raise ContractViolation(
            func, "scores", spec_text,
            f"scores outside [0, 1]: min={lo}, max={hi}",
        )

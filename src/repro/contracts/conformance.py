"""Conformance harness: probe detectors/extractors against the API contract.

The scan stack rests on cross-detector interface uniformity: every
``predict_proba*`` returns ``float64 (n,)`` scores in [0, 1], every
extractor's batch APIs agree with its scalar API, and every entry point
accepts empty input and returns a ``(0, ...)`` array.  The harness makes
those rules machine-checked: :func:`check_detector` / :func:`check_extractor`
probe one object and return a :class:`ConformanceReport` of structured
:class:`Diagnostic` entries; :func:`check_registered_detectors` /
:func:`check_registered_extractors` sweep the registries (the CI gate).

Probes run the real methods on small deterministic inputs — a violation
is reported, never raised, so one broken detector can't hide the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..data.dataset import ClipDataset
from ..geometry.layout import Clip, Layer, extract_clip
from ..geometry.rect import Rect

PROBE_WINDOW_NM = 768
PROBE_CORE_NM = 256


@dataclass(frozen=True)
class Diagnostic:
    """One conformance violation, attributable and greppable."""

    subject: str  #: detector/extractor name
    check: str  #: dotted check id, e.g. "predict_proba.empty"
    message: str

    def __str__(self) -> str:
        return f"{self.subject}: [{self.check}] {self.message}"


@dataclass
class ConformanceReport:
    """All diagnostics from probing one subject."""

    subject: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.diagnostics)} violation(s)"
        lines = [f"{self.subject}: {self.checks_run} checks, {status}"]
        lines.extend(f"  {d}" for d in self.diagnostics)
        return "\n".join(lines)


class _Probe:
    """Collects diagnostics; runs one check guarded against crashes."""

    def __init__(self, subject: str) -> None:
        self.report = ConformanceReport(subject=subject)

    def run(self, check: str, fn: Callable[[], Optional[str]]) -> None:
        self.report.checks_run += 1
        try:
            err = fn()
        # the harness must survive and report arbitrary subject failures
        except Exception as exc:  # lint: disable=broad-except
            err = f"raised {type(exc).__name__}: {exc}"
        if err:
            self.report.diagnostics.append(
                Diagnostic(self.report.subject, check, err)
            )


# --------------------------------------------------------------------------
# deterministic probe inputs
# --------------------------------------------------------------------------
def _grating_clip(pitch: int, offset: int = 0, tag: str = "probe") -> Clip:
    layer = Layer("metal1")
    layer.add_rects(
        [
            Rect(offset + 100 + k * pitch, 100, offset + 164 + k * pitch, 1100)
            for k in range(10)
        ]
    )
    return extract_clip(
        layer, (600, 600), PROBE_WINDOW_NM, PROBE_CORE_NM, tag=tag
    )


def probe_clips() -> List[Clip]:
    """Small deterministic clip set covering dense/sparse/asymmetric/empty."""
    clips = [
        _grating_clip(112, tag="dense"),
        _grating_clip(192, tag="sparse"),
        _grating_clip(144, offset=64, tag="offset"),
    ]
    empty_window = Rect(0, 0, PROBE_WINDOW_NM, PROBE_WINDOW_NM)
    empty_core = Rect.from_center(
        PROBE_WINDOW_NM // 2, PROBE_WINDOW_NM // 2, PROBE_CORE_NM, PROBE_CORE_NM
    )
    clips.append(Clip(window=empty_window, core=empty_core, rects=(), tag="blank"))
    return clips


def probe_dataset(n: int = 24, seed: int = 0) -> ClipDataset:
    """Separable labeled gratings (dense = hot) for harness-side fitting."""
    rng = np.random.default_rng(seed)
    clips, labels = [], []
    for i in range(n):
        hot = bool(rng.integers(2))
        pitch = 64 + (48 if hot else 128)
        offset = int(rng.integers(0, 4)) * 32
        clips.append(_grating_clip(pitch, offset=offset, tag=f"probe{i}"))
        labels.append(int(hot))
    return ClipDataset(
        name="conformance-probe",
        clips=clips,
        labels=np.asarray(labels, dtype=np.int64),
    )


def _rasterize(clips: Sequence[Clip], pixel_nm: int) -> np.ndarray:
    from ..geometry.rasterize import rasterize_clip

    return np.stack(
        [rasterize_clip(c, pixel_nm, antialias=True) for c in clips]
    )


# --------------------------------------------------------------------------
# extractor conformance
# --------------------------------------------------------------------------
def check_extractor(
    extractor, clips: Optional[Sequence[Clip]] = None
) -> ConformanceReport:
    """Probe a :class:`~repro.features.base.FeatureExtractor` for conformance.

    Checks: ``extract`` returns a finite ndarray and is deterministic;
    ``extract_many`` agrees element-wise with ``extract`` and returns a
    ``(0, ...)`` array on empty input; ``feature_shape`` (when declared)
    matches reality; and for raster-capable extractors, ``extract_raster``
    reproduces ``extract`` on the clip's own raster while ``extract_batch``
    agrees with ``extract_raster`` row-wise, including the ``(0, H, W)``
    empty stack.
    """
    clips = list(clips) if clips is not None else probe_clips()
    probe = _Probe(getattr(extractor, "name", type(extractor).__name__))
    singles: List[np.ndarray] = []

    def check_extract() -> Optional[str]:
        for clip in clips:
            feat = extractor.extract(clip)
            if not isinstance(feat, np.ndarray):
                return f"extract returned {type(feat).__name__}, not ndarray"
            if not np.all(np.isfinite(feat)):
                return f"extract({clip.tag}) produced non-finite values"
            singles.append(feat)
        return None

    probe.run("extract.returns_ndarray", check_extract)
    if not singles:
        return probe.report

    def check_deterministic() -> Optional[str]:
        again = extractor.extract(clips[0])
        if not np.array_equal(again, singles[0]):
            return "extract is not deterministic for identical input"
        return None

    probe.run("extract.deterministic", check_deterministic)

    def check_many_parity() -> Optional[str]:
        stacked = extractor.extract_many(clips)
        if not isinstance(stacked, np.ndarray):
            return f"extract_many returned {type(stacked).__name__}"
        if stacked.shape[0] != len(clips):
            return f"extract_many shape {stacked.shape} for {len(clips)} clips"
        for i, single in enumerate(singles):
            if not np.array_equal(stacked[i], single):
                return f"extract_many[{i}] != extract(clips[{i}])"
        return None

    probe.run("extract_many.parity", check_many_parity)

    def check_many_empty() -> Optional[str]:
        empty = extractor.extract_many([])
        if not isinstance(empty, np.ndarray):
            return f"extract_many([]) returned {type(empty).__name__}"
        if empty.ndim < 1 or empty.shape[0] != 0:
            return f"extract_many([]) shape {empty.shape}, want (0, ...)"
        return None

    probe.run("extract_many.empty", check_many_empty)

    def check_feature_shape() -> Optional[str]:
        try:
            declared = tuple(extractor.feature_shape)
        except NotImplementedError:
            return None  # shape depends on the clip; nothing to cross-check
        if singles[0].shape != declared:
            return (
                f"feature_shape declares {declared} but extract "
                f"returned {singles[0].shape}"
            )
        return None

    probe.run("feature_shape.consistent", check_feature_shape)

    if not getattr(extractor, "supports_rasters", False):
        return probe.report

    pixel = getattr(extractor, "pixel_nm", None)
    rasters: List[np.ndarray] = []

    def check_pixel() -> Optional[str]:
        if not isinstance(pixel, int) or isinstance(pixel, bool) or pixel <= 0:
            return f"supports_rasters but pixel_nm is {pixel!r}"
        return None

    probe.run("raster.pixel_nm", check_pixel)
    if not isinstance(pixel, int) or isinstance(pixel, bool) or pixel <= 0:
        return probe.report

    def check_raster_parity() -> Optional[str]:
        stack = _rasterize(clips, pixel)
        for i, clip in enumerate(clips):
            feat = extractor.extract_raster(stack[i])
            rasters.append(feat)
            if not np.allclose(feat, singles[i], rtol=1e-9, atol=1e-12):
                return f"extract_raster(raster[{i}]) != extract(clips[{i}])"
        return None

    probe.run("extract_raster.parity", check_raster_parity)

    def check_batch_parity() -> Optional[str]:
        stack = _rasterize(clips, pixel)
        batched = extractor.extract_batch(stack)
        if not isinstance(batched, np.ndarray):
            return f"extract_batch returned {type(batched).__name__}"
        if batched.shape[0] != len(clips):
            return f"extract_batch shape {batched.shape} for {len(clips)} rasters"
        for i in range(len(clips)):
            single = extractor.extract_raster(stack[i])
            if not np.allclose(batched[i], single, rtol=1e-9, atol=1e-12):
                return f"extract_batch[{i}] != extract_raster(rasters[{i}])"
        return None

    probe.run("extract_batch.parity", check_batch_parity)

    def check_batch_empty() -> Optional[str]:
        side = PROBE_WINDOW_NM // pixel
        empty = extractor.extract_batch(np.zeros((0, side, side)))
        if not isinstance(empty, np.ndarray):
            return f"extract_batch(empty) returned {type(empty).__name__}"
        if empty.ndim < 1 or empty.shape[0] != 0:
            return f"extract_batch(empty) shape {empty.shape}, want (0, ...)"
        return None

    probe.run("extract_batch.empty", check_batch_empty)
    return probe.report


# --------------------------------------------------------------------------
# detector conformance
# --------------------------------------------------------------------------
def check_detector(
    detector,
    clips: Optional[Sequence[Clip]] = None,
    train: Optional[ClipDataset] = None,
    fit: bool = True,
    seed: int = 0,
) -> ConformanceReport:
    """Probe a detector (or duck-typed matcher) for API conformance.

    Checks: ``name``/``threshold`` attributes; ``predict_proba`` returns
    finite ``float64 (n,)`` scores in [0, 1], deterministically, and
    ``(0,)`` on empty input; ``predict`` returns 0/1 integer decisions
    consistent with ``threshold``; the detector survives a
    ``to_state``/``from_state`` round trip with identical scores (the
    worker-pool contract); and, when
    :func:`~repro.core.detector.supports_raster_scan` reports raster
    support, ``predict_proba_rasters`` agrees with ``predict_proba`` on
    the clips' own rasters (including the ``(0, H, W)`` empty stack) and
    ``raster_pixel_nm`` is a positive int.
    """
    from ..core.detector import (
        detector_from_state,
        detector_to_state,
        supports_raster_scan,
    )

    clips = list(clips) if clips is not None else probe_clips()
    probe = _Probe(getattr(detector, "name", type(detector).__name__))

    def check_attrs() -> Optional[str]:
        name = getattr(detector, "name", None)
        if not isinstance(name, str) or not name:
            return f"name must be a non-empty str, got {name!r}"
        threshold = getattr(detector, "threshold", None)
        if not isinstance(threshold, (int, float)) or isinstance(
            threshold, bool
        ):
            return f"threshold must be a float, got {threshold!r}"
        if not 0.0 <= float(threshold) <= 1.0:
            return f"threshold {threshold} outside [0, 1]"
        return None

    probe.run("attrs", check_attrs)

    if fit:

        def check_fit() -> Optional[str]:
            dataset = train if train is not None else probe_dataset(seed=seed)
            detector.fit(dataset, rng=np.random.default_rng(seed))
            return None

        probe.run("fit", check_fit)

    scores_holder: List[np.ndarray] = []

    def check_scores() -> Optional[str]:
        scores = detector.predict_proba(clips)
        if not isinstance(scores, np.ndarray):
            return f"predict_proba returned {type(scores).__name__}"
        if scores.shape != (len(clips),):
            return f"predict_proba shape {scores.shape}, want ({len(clips)},)"
        if scores.dtype != np.float64:
            return f"predict_proba dtype {scores.dtype}, want float64"
        if not np.all(np.isfinite(scores)):
            return "predict_proba produced non-finite scores"
        if scores.min() < 0.0 or scores.max() > 1.0:
            return (
                f"scores outside [0, 1]: min={scores.min()}, "
                f"max={scores.max()}"
            )
        scores_holder.append(scores)
        return None

    probe.run("predict_proba.scores", check_scores)

    def check_deterministic() -> Optional[str]:
        if not scores_holder:
            return None
        again = detector.predict_proba(clips)
        if not np.array_equal(again, scores_holder[0]):
            return "predict_proba is not deterministic across calls"
        return None

    probe.run("predict_proba.deterministic", check_deterministic)

    def check_empty() -> Optional[str]:
        empty = detector.predict_proba([])
        if not isinstance(empty, np.ndarray) or empty.shape != (0,):
            return (
                "predict_proba([]) must return a (0,) array, got "
                f"{getattr(empty, 'shape', type(empty).__name__)}"
            )
        if empty.dtype != np.float64:
            return f"predict_proba([]) dtype {empty.dtype}, want float64"
        return None

    probe.run("predict_proba.empty", check_empty)

    def check_predict() -> Optional[str]:
        decisions = detector.predict(clips)
        if not isinstance(decisions, np.ndarray):
            return f"predict returned {type(decisions).__name__}"
        if decisions.shape != (len(clips),):
            return f"predict shape {decisions.shape}, want ({len(clips)},)"
        if not np.issubdtype(decisions.dtype, np.integer):
            return f"predict dtype {decisions.dtype}, want an integer dtype"
        if not np.isin(decisions, (0, 1)).all():
            return f"predict values outside {{0, 1}}: {np.unique(decisions)}"
        if scores_holder:
            expected = (scores_holder[0] >= detector.threshold).astype(
                decisions.dtype
            )
            if not np.array_equal(decisions, expected):
                return "predict disagrees with predict_proba >= threshold"
        empty = detector.predict([])
        if not isinstance(empty, np.ndarray) or empty.shape != (0,):
            return "predict([]) must return a (0,) array"
        return None

    probe.run("predict.decisions", check_predict)

    def check_state_roundtrip() -> Optional[str]:
        if not scores_holder:
            return None
        clone = detector_from_state(detector_to_state(detector))
        again = clone.predict_proba(clips)
        if not np.array_equal(again, scores_holder[0]):
            return "to_state/from_state round trip changed scores"
        return None

    probe.run("state.roundtrip", check_state_roundtrip)

    if not supports_raster_scan(detector):
        return probe.report

    pixel = detector.raster_pixel_nm

    def check_raster_scores() -> Optional[str]:
        if PROBE_WINDOW_NM % pixel:
            return (
                f"raster_pixel_nm {pixel} does not divide the "
                f"{PROBE_WINDOW_NM} nm probe window"
            )
        stack = _rasterize(clips, pixel)
        scores = detector.predict_proba_rasters(stack)
        if not isinstance(scores, np.ndarray):
            return f"predict_proba_rasters returned {type(scores).__name__}"
        if scores.shape != (len(clips),):
            return (
                f"predict_proba_rasters shape {scores.shape}, "
                f"want ({len(clips)},)"
            )
        if scores.dtype != np.float64:
            return f"predict_proba_rasters dtype {scores.dtype}, want float64"
        if scores_holder and not np.allclose(
            scores, scores_holder[0], rtol=1e-7, atol=1e-9
        ):
            return (
                "raster-path scores diverge from clip-path scores: "
                f"{scores} vs {scores_holder[0]}"
            )
        return None

    probe.run("predict_proba_rasters.parity", check_raster_scores)

    def check_raster_empty() -> Optional[str]:
        side = PROBE_WINDOW_NM // pixel
        empty = detector.predict_proba_rasters(np.zeros((0, side, side)))
        if not isinstance(empty, np.ndarray) or empty.shape != (0,):
            return (
                "predict_proba_rasters(empty stack) must return (0,), got "
                f"{getattr(empty, 'shape', type(empty).__name__)}"
            )
        if empty.dtype != np.float64:
            return (
                f"predict_proba_rasters(empty) dtype {empty.dtype}, "
                "want float64"
            )
        return None

    probe.run("predict_proba_rasters.empty", check_raster_empty)
    return probe.report


# --------------------------------------------------------------------------
# registry sweeps (the CI gate)
# --------------------------------------------------------------------------
def _fast_detector(name: str):
    """Instantiate a registry detector configured for cheap harness fits."""
    from ..core.registry import create

    if name in ("cnn-dct", "bnn-dct"):
        from ..nn.detector import CNNDetectorConfig

        return create(
            name,
            config=CNNDetectorConfig(
                epochs=2, biased_epsilon=None, calibrate=None, width=8
            ),
        )
    if name == "cnn-raster":
        from ..nn.detector import RasterCNNDetectorConfig

        return create(
            name, config=RasterCNNDetectorConfig(epochs=1, width=4)
        )
    return create(name)


def check_registered_detectors(
    names: Optional[Sequence[str]] = None, seed: int = 0
) -> Dict[str, ConformanceReport]:
    """Run :func:`check_detector` for every registry entry (or ``names``)."""
    import repro.nn.detector  # noqa: F401  (registers the cnn family)
    import repro.shallow  # noqa: F401  (registers the shallow family)

    from ..core.registry import available

    reports: Dict[str, ConformanceReport] = {}
    train = probe_dataset(seed=seed)
    clips = probe_clips()
    for name in names if names is not None else available():
        try:
            detector = _fast_detector(name)
        # a broken factory must land as a diagnostic, not abort the sweep
        except Exception as exc:  # lint: disable=broad-except
            report = ConformanceReport(subject=name, checks_run=1)
            report.diagnostics.append(
                Diagnostic(
                    name, "factory", f"raised {type(exc).__name__}: {exc}"
                )
            )
            reports[name] = report
            continue
        reports[name] = check_detector(
            detector, clips=clips, train=train, seed=seed
        )
    return reports


def check_registered_extractors(
    names: Optional[Sequence[str]] = None,
) -> Dict[str, ConformanceReport]:
    """Run :func:`check_extractor` for every registered extractor."""
    from ..features.registry import available_extractors, create_extractor

    reports: Dict[str, ConformanceReport] = {}
    clips = probe_clips()
    for name in names if names is not None else available_extractors():
        reports[name] = check_extractor(create_extractor(name), clips=clips)
    return reports

"""High-level lithography simulation facade.

``LithoSimulator`` bundles the optics, resist and pixel pitch into one
object that can image clips and report printed rasters / contours — the
convenience layer the examples and the process-window sweeps use.  The
hotspot verdict itself lives in :class:`repro.litho.hotspot.HotspotOracle`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..geometry.layout import Clip
from ..geometry.rasterize import rasterize_clip
from .hotspot import calibrate_threshold
from .kernels import OpticalSystem
from .optics import ImagingSettings, aerial_image
from .resist import ResistModel, printed_components


@dataclass
class LithoSimulator:
    """End-to-end clip imaging: design raster -> aerial image -> print."""

    optics: OpticalSystem = field(default_factory=OpticalSystem)
    pixel_nm: int = 8
    resist: Optional[ResistModel] = None
    reference_width_nm: int = 64
    reference_pitch_nm: int = 192  # matches HotspotOracle's calibration

    def __post_init__(self) -> None:
        if self.resist is None:
            self.resist = ResistModel(
                threshold=calibrate_threshold(
                    self.optics,
                    self.pixel_nm,
                    self.reference_width_nm,
                    self.reference_pitch_nm,
                )
            )

    def image(
        self, clip: Clip, dose: float = 1.0, defocus_nm: float = 0.0
    ) -> np.ndarray:
        """Aerial intensity image of a clip at the given condition."""
        design = rasterize_clip(clip, self.pixel_nm, antialias=True)
        settings = ImagingSettings(
            pixel_nm=self.pixel_nm, dose=dose, defocus_nm=defocus_nm
        )
        return aerial_image(design, self.optics, settings)

    def print_clip(
        self, clip: Clip, dose: float = 1.0, defocus_nm: float = 0.0
    ) -> np.ndarray:
        """Boolean printed raster of a clip."""
        return self.resist.develop(self.image(clip, dose, defocus_nm))  # type: ignore[union-attr]

    def printed_component_count(
        self, clip: Clip, dose: float = 1.0, defocus_nm: float = 0.0
    ) -> int:
        """Number of printed connected components (topology probe)."""
        _, count = printed_components(self.print_clip(clip, dose, defocus_nm))
        return count

    def process_window(
        self,
        clip: Clip,
        doses: Tuple[float, ...] = (0.9, 0.95, 1.0, 1.05, 1.1),
        defocus_values_nm: Tuple[float, ...] = (0.0, 20.0, 40.0),
    ) -> List[Tuple[float, float, np.ndarray]]:
        """Printed rasters over a dose x defocus grid.

        Returns ``[(dose, defocus_nm, printed), ...]`` in sweep order; the
        process-variation band is the pixelwise disagreement across entries.
        """
        out: List[Tuple[float, float, np.ndarray]] = []
        for defocus in defocus_values_nm:
            for dose in doses:
                out.append((dose, defocus, self.print_clip(clip, dose, defocus)))
        return out

    def pv_band(
        self,
        clip: Clip,
        doses: Tuple[float, ...] = (0.9, 0.95, 1.0, 1.05, 1.1),
        defocus_values_nm: Tuple[float, ...] = (0.0, 20.0, 40.0),
    ) -> np.ndarray:
        """Process-variation band: pixels printed at some corners, not all."""
        prints = [
            printed
            for _, _, printed in self.process_window(clip, doses, defocus_values_nm)
        ]
        stack = np.stack(prints)
        return stack.any(axis=0) & ~stack.all(axis=0)

"""Optical kernels for approximate partially-coherent imaging.

Real lithography simulators expand the Hopkins partially-coherent imaging
equation into a sum of coherent systems (SOCS): the aerial intensity is
``I(x) = sum_k w_k |(m * h_k)(x)|^2`` for optical kernels ``h_k`` derived
from the source/pupil.  For a deep-UV system the dominant kernel is a
low-pass function whose width scales with ``lambda / NA``.

We model each kernel as an isotropic Gaussian (a classic compact
approximation of the diffraction-limited PSF) and build a small SOCS stack:
the first kernel carries most of the energy, higher kernels are wider and
weaker, standing in for the partial-coherence tail.  Defocus widens every
kernel; dose scales the developed threshold (handled in ``resist``).

The kernels are separable, so the convolution in :mod:`repro.litho.optics`
runs as two 1-D FFT passes per kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class OpticalSystem:
    """Parameters of the (approximated) projection optics.

    ``wavelength_nm`` and ``numerical_aperture`` set the diffraction-limited
    resolution scale ``k1 * lambda / NA``; ``sigma_scale`` converts that to
    the Gaussian PSF sigma.  ``n_kernels`` controls the SOCS expansion depth.
    """

    wavelength_nm: float = 193.0
    numerical_aperture: float = 1.35
    sigma_scale: float = 0.20
    n_kernels: int = 3
    kernel_spread: float = 1.6  # width ratio between successive kernels
    kernel_decay: float = 0.28  # weight ratio between successive kernels

    def __post_init__(self) -> None:
        if self.wavelength_nm <= 0 or self.numerical_aperture <= 0:
            raise ValueError("wavelength and NA must be positive")
        if not 1 <= self.n_kernels <= 8:
            raise ValueError("n_kernels must be in 1..8")
        if self.kernel_spread <= 1.0:
            raise ValueError("kernel_spread must exceed 1")
        if not 0.0 < self.kernel_decay < 1.0:
            raise ValueError("kernel_decay must be in (0, 1)")

    @property
    def base_sigma_nm(self) -> float:
        """Gaussian sigma of the principal kernel at best focus, in nm."""
        return self.sigma_scale * self.wavelength_nm / self.numerical_aperture

    def kernel_stack(self, defocus_nm: float = 0.0) -> List[Tuple[float, float]]:
        """SOCS stack as ``[(weight, sigma_nm), ...]``, weights summing to 1.

        Defocus broadens each kernel in quadrature: a defocus of ``d`` adds
        ``defocus_blur_frac * |d|`` of blur, the standard thin-lens small-
        defocus approximation.
        """
        blur = _DEFOCUS_BLUR_FRAC * abs(defocus_nm)
        weights = np.array(
            [self.kernel_decay**k for k in range(self.n_kernels)], dtype=float
        )
        weights /= weights.sum()
        sigmas = [
            float(np.hypot(self.base_sigma_nm * self.kernel_spread**k, blur))
            for k in range(self.n_kernels)
        ]
        return list(zip(weights.tolist(), sigmas))


_DEFOCUS_BLUR_FRAC = 0.55  # nm of added Gaussian blur per nm of defocus


def gaussian_1d(sigma_px: float, radius_px: int) -> np.ndarray:
    """A normalized 1-D Gaussian taps array of length ``2*radius_px + 1``."""
    if sigma_px <= 0:
        raise ValueError("sigma must be positive")
    xs = np.arange(-radius_px, radius_px + 1, dtype=np.float64)
    taps = np.exp(-0.5 * (xs / sigma_px) ** 2)
    taps /= taps.sum()
    return taps


def kernel_radius_px(sigma_px: float, truncate: float = 4.0) -> int:
    """Support radius (in pixels) that captures ``truncate`` sigmas."""
    return max(1, int(np.ceil(truncate * sigma_px)))

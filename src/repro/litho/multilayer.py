"""Cross-layer printability: metal-to-via failures.

The multi-layer defect class (ASP-DAC'19 thread): a via can be DRC-clean
and print fine, yet the *printed* metal above retreats (line-end
shortening, necking) until it no longer covers the printed via — an open
contact on silicon.  ``analyze_metal_via`` prints both layers through the
shared process model and measures printed coverage per via.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np
from scipy import ndimage

from ..geometry.multilayer import MultiLayerClip
from ..geometry.rasterize import core_slice, rasterize_clip
from .hotspot import HotspotOracle
from .optics import aerial_image
from .resist import printed_components

_STRUCTURE4 = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]], dtype=bool)


@dataclass(frozen=True)
class ViaCoverage:
    """Printed-coverage report for one via."""

    row: int  # centroid, pixels
    col: int
    via_area_px: int  # printed via pixels
    covered_px: int  # printed via pixels under printed metal
    in_core: bool

    @property
    def coverage(self) -> float:
        return self.covered_px / self.via_area_px if self.via_area_px else 0.0


@dataclass(frozen=True)
class MetalViaAnalysis:
    """Cross-layer verdict for one multi-layer clip."""

    coverages: Tuple[ViaCoverage, ...]
    missing_vias: int  # designed vias that did not print at all (in core)
    min_coverage_nm2_ratio: float
    is_hotspot: bool


def analyze_metal_via(
    ml_clip: MultiLayerClip,
    oracle: Optional[HotspotOracle] = None,
    metal_layer: str = "metal1",
    via_layer: str = "via1",
    min_coverage: float = 0.7,
    dose: float = 0.96,
    defocus_nm: float = 32.0,
) -> MetalViaAnalysis:
    """Print both layers at a stressed corner and check via coverage.

    A clip is a metal-to-via hotspot when, inside the core, a designed via
    fails to print, or prints with less than ``min_coverage`` of its area
    under printed metal.
    """
    oracle = oracle or HotspotOracle()
    metal_clip = ml_clip.layer(metal_layer)
    via_clip = ml_clip.layer(via_layer)
    p = oracle.pixel_nm

    def printed(clip):
        design = rasterize_clip(clip, p, antialias=True)
        from .optics import ImagingSettings

        intensity = aerial_image(
            design, oracle.optics,
            ImagingSettings(pixel_nm=p, dose=dose, defocus_nm=defocus_nm),
        )
        return design, oracle.resist.develop(intensity)

    metal_design, metal_print = printed(metal_clip)
    via_design, via_print = printed(via_clip)

    rs, cs = core_slice(metal_clip, p)
    r1, r2, c1, c2 = rs.start, rs.stop, cs.start, cs.stop

    # printed vias and their coverage by printed metal
    via_labels, n_vias = printed_components(via_print)
    coverages: List[ViaCoverage] = []
    for k in range(1, n_vias + 1):
        mask = via_labels == k
        rows, cols = np.nonzero(mask)
        rc, cc = int(round(rows.mean())), int(round(cols.mean()))
        coverages.append(
            ViaCoverage(
                row=rc,
                col=cc,
                via_area_px=int(mask.sum()),
                covered_px=int((mask & metal_print).sum()),
                in_core=(r1 <= rc < r2 and c1 <= cc < c2),
            )
        )

    # designed vias that never printed (opens on the via layer)
    design_labels, n_designed = ndimage.label(
        via_design >= 0.5, structure=_STRUCTURE4
    )
    missing = 0
    for k in range(1, n_designed + 1):
        mask = design_labels == k
        rows, cols = np.nonzero(mask)
        rc, cc = int(round(rows.mean())), int(round(cols.mean()))
        if not (r1 <= rc < r2 and c1 <= cc < c2):
            continue
        if not (mask & via_print).any():
            missing += 1

    core_covs = [c.coverage for c in coverages if c.in_core]
    min_cov = min(core_covs) if core_covs else 1.0
    is_hotspot = missing > 0 or min_cov < min_coverage
    return MetalViaAnalysis(
        coverages=tuple(coverages),
        missing_vias=missing,
        min_coverage_nm2_ratio=float(min_cov),
        is_hotspot=is_hotspot,
    )

"""Aerial image computation.

The mask raster (coverage fractions in [0, 1]) is imaged through the SOCS
kernel stack of :class:`repro.litho.kernels.OpticalSystem`:

``I = sum_k w_k (m * g_k)^2``

where ``g_k`` is a separable Gaussian.  Squaring the *amplitude* (the
convolved field) rather than blurring the intensity reproduces the key
nonlinearity of partially coherent imaging — isolated small features lose
peak intensity faster than dense ones, which is exactly the effect that
makes some DRC-clean patterns hotspots.

Convolution runs per-axis with `scipy.ndimage.correlate1d` in *reflect*
mode so clip borders behave as if the pattern continued (the contest clips
include a guard band around the core for the same reason).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from .kernels import OpticalSystem, gaussian_1d, kernel_radius_px


@dataclass(frozen=True)
class ImagingSettings:
    """Pixel pitch plus the process knobs of one exposure condition."""

    pixel_nm: int = 8
    dose: float = 1.0  # multiplies the effective intensity
    defocus_nm: float = 0.0

    def __post_init__(self) -> None:
        if self.pixel_nm <= 0:
            raise ValueError("pixel_nm must be positive")
        if self.dose <= 0:
            raise ValueError("dose must be positive")


def aerial_image(
    mask: np.ndarray,
    optics: OpticalSystem,
    settings: ImagingSettings,
) -> np.ndarray:
    """Aerial intensity image of a mask raster, same shape as ``mask``.

    Output values are intensities normalized so that a large clear field
    images to ~``dose`` (i.e. a fully-dense mask region saturates to the
    dose level).
    """
    if mask.ndim != 2:
        raise ValueError("mask raster must be 2-D")
    field = np.asarray(mask, dtype=np.float64)
    intensity = np.zeros_like(field)
    for weight, sigma_nm in optics.kernel_stack(settings.defocus_nm):
        sigma_px = sigma_nm / settings.pixel_nm
        radius = kernel_radius_px(sigma_px)
        taps = gaussian_1d(sigma_px, radius)
        amplitude = ndimage.correlate1d(field, taps, axis=0, mode="reflect")
        amplitude = ndimage.correlate1d(amplitude, taps, axis=1, mode="reflect")
        intensity += weight * amplitude**2
    return settings.dose * intensity

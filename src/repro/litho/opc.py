"""Rule-based optical proximity correction (OPC).

The survey's forward pointer: once a hotspot is found, the layout is
*corrected*.  This module implements the classic rule-based RET moves on
clip geometry:

* **edge biasing** — widen wires whose printed CD falls short (isolated
  lines get positive bias),
* **line-end hammerheads** — widen wire tips to fight pullback,
* **serifs** — small squares on convex corners against corner rounding.

The corrections are pure geometry -> geometry; verifying them closes the
loop through the simulator (see ``examples``/the ablation bench).  Rules
are deliberately simple — the goal is the *flow* (detect -> correct ->
re-verify), not a production OPC engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..geometry.layout import Clip
from ..geometry.rect import Rect


@dataclass(frozen=True)
class OPCRules:
    """Knobs of the rule-based correction (integer nm, grid-aligned)."""

    iso_bias_nm: int = 8  # half-bias added to each side of isolated wires
    iso_space_nm: int = 160  # a wire is isolated when neighbors are farther
    hammer_extend_nm: int = 16  # how far a hammerhead extends past the tip
    hammer_overhang_nm: int = 16  # how far it overhangs each side
    min_tip_width_nm: int = 40  # only tips at least this wide get heads
    serif_size_nm: int = 24

    def __post_init__(self) -> None:
        for value in (
            self.iso_bias_nm,
            self.hammer_extend_nm,
            self.hammer_overhang_nm,
            self.serif_size_nm,
        ):
            if value < 0:
                raise ValueError("OPC rule values must be non-negative")


def _is_isolated(rect: Rect, others: Sequence[Rect], iso_space: int) -> bool:
    """No other shape within ``iso_space`` (L-inf) of this rect."""
    return all(
        rect.manhattan_gap(o) >= iso_space for o in others if o is not rect
    )


def bias_isolated_wires(
    rects: Sequence[Rect], rules: OPCRules
) -> List[Rect]:
    """Widen isolated wires across their thin axis by ``iso_bias_nm``/side."""
    out: List[Rect] = []
    rect_list = list(rects)
    for rect in rect_list:
        if not _is_isolated(rect, rect_list, rules.iso_space_nm):
            out.append(rect)
            continue
        if rect.width <= rect.height:  # vertical wire: widen in x
            out.append(
                Rect(
                    rect.x1 - rules.iso_bias_nm,
                    rect.y1,
                    rect.x2 + rules.iso_bias_nm,
                    rect.y2,
                )
            )
        else:
            out.append(
                Rect(
                    rect.x1,
                    rect.y1 - rules.iso_bias_nm,
                    rect.x2,
                    rect.y2 + rules.iso_bias_nm,
                )
            )
    return out


def _cap_edges(rect: Rect, union: Sequence[Rect]) -> List[str]:
    """Which of this rect's edges are exposed line-end caps.

    An edge is a cap when it is the short edge of an elongated rect and no
    other rect touches it from the outside.
    """
    caps: List[str] = []
    candidates: List[Tuple[str, Rect]] = []
    if rect.height > 1.25 * rect.width:  # vertical wire: caps top/bottom
        candidates = [
            ("bottom", Rect(rect.x1, rect.y1 - 1, rect.x2, rect.y1)),
            ("top", Rect(rect.x1, rect.y2, rect.x2, rect.y2 + 1)),
        ]
    elif rect.width > 1.25 * rect.height:  # horizontal: caps left/right
        candidates = [
            ("left", Rect(rect.x1 - 1, rect.y1, rect.x1, rect.y2)),
            ("right", Rect(rect.x2, rect.y1, rect.x2 + 1, rect.y2)),
        ]
    for name, probe in candidates:
        if not any(o is not rect and o.intersects(probe) for o in union):
            caps.append(name)
    return caps


def add_hammerheads(rects: Sequence[Rect], rules: OPCRules) -> List[Rect]:
    """Attach hammerhead rectangles to exposed wire tips."""
    rect_list = list(rects)
    out = list(rect_list)
    for rect in rect_list:
        thin = min(rect.width, rect.height)
        if thin < rules.min_tip_width_nm:
            continue
        for cap in _cap_edges(rect, rect_list):
            e, o = rules.hammer_extend_nm, rules.hammer_overhang_nm
            if cap == "top":
                head = Rect(rect.x1 - o, rect.y2, rect.x2 + o, rect.y2 + e)
            elif cap == "bottom":
                head = Rect(rect.x1 - o, rect.y1 - e, rect.x2 + o, rect.y1)
            elif cap == "right":
                head = Rect(rect.x2, rect.y1 - o, rect.x2 + e, rect.y2 + o)
            else:  # left
                head = Rect(rect.x1 - e, rect.y1 - o, rect.x1, rect.y2 + o)
            if not head.empty():
                out.append(head)
    return out


def correct_clip(clip: Clip, rules: Optional[OPCRules] = None) -> Clip:
    """Apply the rule-based OPC moves to a clip's geometry.

    Corrections may push shapes slightly past the original window; they
    are clipped back so the result is a valid clip over the same window.
    """
    rules = rules or OPCRules()
    rects = bias_isolated_wires(clip.rects, rules)
    rects = add_hammerheads(rects, rules)
    clipped = []
    for r in rects:
        inter = r.intersection(clip.window)
        if inter is not None:
            clipped.append(inter)
    # merge duplicates while keeping determinism
    unique = sorted(set(clipped))
    return Clip(
        window=clip.window,
        core=clip.core,
        rects=tuple(unique),
        layer_name=clip.layer_name,
        tag=f"{clip.tag}/opc" if clip.tag else "opc",
    )

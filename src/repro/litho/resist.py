"""Resist development model and printed-contour extraction.

A constant-threshold resist (CTR) model develops every pixel whose aerial
intensity exceeds ``threshold``: the printed pattern is simply
``I >= threshold``.  This is the standard compact model in the hotspot
literature and captures the failure modes we label:

* **necking / opens** — a wire's intensity dips below threshold where the
  neighborhood starves it of light,
* **bridging / shorts** — the space between two wires rises above threshold
  where diffraction tails overlap.

``print_image`` returns the boolean printed raster; ``printed_components``
labels its connected components (scipy) for bridge analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import ndimage


@dataclass(frozen=True)
class ResistModel:
    """Constant-threshold resist; ``threshold`` in normalized intensity."""

    threshold: float = 0.35

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 2.0:
            raise ValueError("resist threshold out of range")

    def develop(self, intensity: np.ndarray) -> np.ndarray:
        """Boolean printed raster: True where resist prints."""
        return np.asarray(intensity) >= self.threshold


def print_image(intensity: np.ndarray, resist: ResistModel) -> np.ndarray:
    return resist.develop(intensity)


def printed_components(printed: np.ndarray) -> Tuple[np.ndarray, int]:
    """Label 4-connected components of the printed raster.

    Returns the (H, W) int label grid (0 = background) and the number of
    components.  4-connectivity matches Manhattan wire topology: corner-only
    contact does not short two wires.
    """
    structure = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]], dtype=bool)
    labels, count = ndimage.label(printed, structure=structure)
    return labels, int(count)

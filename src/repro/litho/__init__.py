"""Approximate lithography simulation: the golden labeling substrate.

The stack mirrors a production flow in miniature:

1. :class:`OpticalSystem` (:mod:`~repro.litho.kernels`) — SOCS-style
   Gaussian kernel mixture approximating partially coherent imaging,
2. :func:`aerial_image` (:mod:`~repro.litho.optics`) — mask raster to
   intensity,
3. :class:`ResistModel` (:mod:`~repro.litho.resist`) — constant-threshold
   development,
4. :mod:`~repro.litho.analysis` — bridge / open / neck / EPE measurement,
5. :class:`HotspotOracle` (:mod:`~repro.litho.hotspot`) — per-clip hotspot
   verdicts across process corners; labels the benchmarks,
6. :class:`LithoSimulator` (:mod:`~repro.litho.simulator`) — convenience
   facade for imaging, printing and process-window sweeps.
"""

from .analysis import (
    Defect,
    EdgeSite,
    design_components,
    find_bridges,
    find_epe_defects,
    find_necks,
    find_opens,
    find_spots,
    measure_epe,
)
from .hotspot import ClipAnalysis, HotspotOracle, calibrate_threshold, edge_sites_for_clip
from .kernels import OpticalSystem
from .optics import ImagingSettings, aerial_image
from .opc import OPCRules, add_hammerheads, bias_isolated_wires, correct_clip
from .resist import ResistModel, print_image, printed_components
from .simulator import LithoSimulator
from .multilayer import MetalViaAnalysis, ViaCoverage, analyze_metal_via
from .window import ProcessWindow, process_window, severity_score

__all__ = [
    "OpticalSystem",
    "ImagingSettings",
    "aerial_image",
    "ResistModel",
    "print_image",
    "printed_components",
    "Defect",
    "EdgeSite",
    "design_components",
    "find_bridges",
    "find_opens",
    "find_necks",
    "find_spots",
    "find_epe_defects",
    "measure_epe",
    "HotspotOracle",
    "ClipAnalysis",
    "calibrate_threshold",
    "edge_sites_for_clip",
    "LithoSimulator",
    "OPCRules",
    "correct_clip",
    "bias_isolated_wires",
    "add_hammerheads",
    "ProcessWindow",
    "process_window",
    "severity_score",
    "MetalViaAnalysis",
    "ViaCoverage",
    "analyze_metal_via",
]

"""The golden hotspot oracle: full lithography analysis of a clip.

``HotspotOracle`` is generation 0 of the survey's detector lineup — the
slow, accurate reference that every learned detector is compared against,
and the engine that labels the synthetic benchmarks.

A clip is a **hotspot** iff at any process corner (nominal plus dose and
defocus excursions) the printed pattern exhibits a bridge, open, neck, or
out-of-limit EPE whose defect marker falls inside the clip's *core* region.
Defects outside the core belong to neighboring clips (the contest's
attribution rule) and do not make this clip a hotspot.

Line ends need special treatment: diffraction pulls every wire tip back
(line-end shortening), so tips are judged by a looser *pullback* budget at
their cap edge, side-edge EPE sites inside the tip zone are skipped (the
contour there is the rounded tip, not a displaced side wall), and the neck
detector ignores tip zones (tip rounding is not a neck).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import ndimage

from ..geometry.layout import Clip
from ..geometry.rasterize import core_slice, rasterize_clip
from ..geometry.rect import Rect
from .analysis import (
    Defect,
    EdgeSite,
    design_components,
    find_bridges,
    find_epe_defects,
    find_necks,
    find_opens,
    find_spots,
)
from .kernels import OpticalSystem, gaussian_1d, kernel_radius_px
from .optics import ImagingSettings, aerial_image
from .resist import ResistModel


def calibrate_threshold(
    optics: OpticalSystem,
    pixel_nm: int,
    line_width_nm: int,
    pitch_nm: int,
    defocus_nm: float = 0.0,
) -> float:
    """Resist threshold that prints a reference dense grating at size.

    Images an infinite 1-D line/space grating (``line_width_nm`` lines at
    ``pitch_nm`` pitch) and returns the aerial intensity exactly at the
    designed line edge.  With this threshold the reference grating prints
    with zero EPE, anchoring the process so that deviations measured on
    arbitrary patterns are meaningful.
    """
    if pitch_nm % pixel_nm or line_width_nm % pixel_nm:
        raise ValueError("grating dims must be multiples of the pixel pitch")
    period_px = pitch_nm // pixel_nm
    width_px = line_width_nm // pixel_nm
    n_periods = 32
    mask = np.zeros(period_px * n_periods, dtype=np.float64)
    for k in range(n_periods):
        start = k * period_px
        mask[start : start + width_px] = 1.0
    intensity = np.zeros_like(mask)
    for weight, sigma_nm in optics.kernel_stack(defocus_nm):
        sigma_px = sigma_nm / pixel_nm
        taps = gaussian_1d(sigma_px, kernel_radius_px(sigma_px))
        amplitude = ndimage.correlate1d(mask, taps, mode="wrap")
        intensity += weight * amplitude**2
    # intensity at the line edge of a mid-array line, interpolated between
    # the last inside pixel and first outside pixel
    line_start = (n_periods // 2) * period_px
    edge = line_start + width_px  # design edge in px (pixel boundary)
    return float(0.5 * (intensity[edge - 1] + intensity[edge]))


# ----------------------------------------------------------------------
# tip zones and edge sites
# ----------------------------------------------------------------------
_EDGE_SPECS = (
    # (orientation, which coordinate is fixed, outward normal (drow, dcol))
    ("bottom", "h", (-1.0, 0.0)),
    ("top", "h", (1.0, 0.0)),
    ("left", "v", (0.0, -1.0)),
    ("right", "v", (0.0, 1.0)),
)


def _rect_edges(rect: Rect):
    """Yield (name, fixed_nm, lo_nm, hi_nm, normal) for a rect's 4 edges."""
    yield ("bottom", rect.y1, rect.x1, rect.x2, (-1.0, 0.0))
    yield ("top", rect.y2, rect.x1, rect.x2, (1.0, 0.0))
    yield ("left", rect.x1, rect.y1, rect.y2, (0.0, -1.0))
    yield ("right", rect.x2, rect.y1, rect.y2, (0.0, 1.0))


def _outside_pixel(
    fixed_nm: float, t_nm: float, orientation: str, sign: float, pixel_nm: int
) -> Tuple[int, int]:
    """Pixel index of the first *fully outside* pixel next to an edge point.

    ``orientation`` is "h" for horizontal edges (fixed y) and "v" for
    vertical (fixed x); ``sign`` is the outward normal direction along the
    fixed axis (+1 or -1).  Integer math keeps this exact even when the
    edge lies mid-pixel.
    """
    e = int(fixed_nm)
    p = pixel_nm
    along = int(t_nm) // p
    probe = -((-e) // p) if sign > 0 else e // p - 1
    if orientation == "h":
        return probe, along
    return along, probe


def _is_exterior(
    design: np.ndarray,
    fixed_nm: float,
    t_nm: float,
    orientation: str,
    normal: Tuple[float, float],
    pixel_nm: int,
) -> bool:
    """True when the first pixel fully outside the edge point is empty."""
    h, w = design.shape
    sign = normal[0] if orientation == "h" else normal[1]
    pr, pc = _outside_pixel(fixed_nm, t_nm, orientation, sign, pixel_nm)
    if not (0 <= pr < h and 0 <= pc < w):
        return False
    return design[pr, pc] < 0.5


def _edge_index_coords(
    kind_fixed: str, fixed_idx: float, t_idx: float
) -> Tuple[float, float]:
    """(row, col) of a point on an edge given its orientation."""
    if kind_fixed == "h":
        return fixed_idx, t_idx
    return t_idx, fixed_idx


def tip_zones_for_clip(
    clip: Clip, design: np.ndarray, pixel_nm: int, tip_margin_nm: int = 80
) -> List[Rect]:
    """Line-end zones in clip-local nm coordinates.

    A rect edge is a *cap* when its length is at most ~the rect's thin
    dimension (the short end of an elongated wire segment) and it lies on
    the shape-union boundary.  The zone extends ``tip_margin_nm`` inward.
    """
    zones: List[Rect] = []
    for rect in clip.local_rects():
        thin = min(rect.width, rect.height)
        for name, fixed, lo, hi, normal in _rect_edges(rect):
            length = hi - lo
            if length > 1.25 * thin:
                continue
            orientation = "h" if name in ("bottom", "top") else "v"
            mid_nm = (lo + hi) / 2.0
            if not _is_exterior(design, fixed, mid_nm, orientation, normal, pixel_nm):
                continue
            margin = min(tip_margin_nm, rect.width if name in ("left", "right") else rect.height)
            if name == "bottom":
                zones.append(Rect(rect.x1, rect.y1, rect.x2, rect.y1 + margin))
            elif name == "top":
                zones.append(Rect(rect.x1, rect.y2 - margin, rect.x2, rect.y2))
            elif name == "left":
                zones.append(Rect(rect.x1, rect.y1, rect.x1 + margin, rect.y2))
            else:  # right
                zones.append(Rect(rect.x2 - margin, rect.y1, rect.x2, rect.y2))
    return zones


def tip_mask(
    zones: Sequence[Rect], shape: Tuple[int, int], pixel_nm: int
) -> np.ndarray:
    """Boolean pixel mask of the tip zones (clip-local)."""
    mask = np.zeros(shape, dtype=bool)
    h, w = shape
    for z in zones:
        r1 = max(0, z.y1 // pixel_nm)
        r2 = min(h, -(-z.y2 // pixel_nm))
        c1 = max(0, z.x1 // pixel_nm)
        c2 = min(w, -(-z.x2 // pixel_nm))
        mask[r1:r2, c1:c2] = True
    return mask


def _edge_is_straight(
    design: np.ndarray,
    fixed_nm: float,
    t_nm: float,
    orientation: str,
    normal: Tuple[float, float],
    pixel_nm: int,
    margin_px: int,
) -> bool:
    """True when the design boundary runs straight for +/- margin here.

    Checks that along the edge direction the pixel row just inside stays
    filled and the row just outside stays empty for ``margin_px`` pixels
    both ways.  Corner rounding and notch fill-in are *expected* printing
    behaviour, so EPE should only be measured on locally straight walls.
    Probes clipped by the array edge count as straight (the pattern
    conceptually continues).
    """
    h, w = design.shape
    sign = normal[0] if orientation == "h" else normal[1]
    pr_out, pc_out = _outside_pixel(fixed_nm, t_nm, orientation, sign, pixel_nm)
    pr_in, pc_in = _outside_pixel(fixed_nm, t_nm, orientation, -sign, pixel_nm)
    if orientation == "h":
        j = pc_out
        j_lo, j_hi = max(0, j - margin_px), min(w, j + margin_px + 1)
        if not (0 <= pr_out < h and 0 <= pr_in < h):
            return False
        outside = design[pr_out, j_lo:j_hi]
        inside = design[pr_in, j_lo:j_hi]
    else:
        i = pr_out
        i_lo, i_hi = max(0, i - margin_px), min(h, i + margin_px + 1)
        if not (0 <= pc_out < w and 0 <= pc_in < w):
            return False
        outside = design[i_lo:i_hi, pc_out]
        inside = design[i_lo:i_hi, pc_in]
    return bool((outside < 0.5).all() and (inside >= 0.5).all())


def edge_sites_for_clip(
    clip: Clip,
    design: np.ndarray,
    pixel_nm: int,
    spacing_px: int = 4,
    tip_zones: Sequence[Rect] = (),
    straight_margin_px: int = 5,
) -> List[EdgeSite]:
    """Sample EPE measurement sites on design edges inside the clip core.

    Cap edges (line ends) yield ``kind="cap"`` sites with a looser budget.
    Side sites are kept only where the boundary is locally straight
    (``straight_margin_px`` pixels each way) and outside tip zones: corner
    rounding, notch fill-in and tip retreat are expected contour behaviour,
    not wall displacement.

    Index coordinates: pixel ``[i, j]`` is centered at ``(i, j)``, so an nm
    coordinate ``v`` maps to index ``v / pixel_nm - 0.5``.
    """
    rs, cs = core_slice(clip, pixel_nm)
    r_lo, r_hi = rs.start - 0.5, rs.stop - 0.5
    c_lo, c_hi = cs.start - 0.5, cs.stop - 0.5
    sites: List[EdgeSite] = []
    for rect in clip.local_rects():
        thin = min(rect.width, rect.height)
        for name, fixed, lo, hi, normal in _rect_edges(rect):
            length = hi - lo
            if length < 1:
                continue
            is_cap = length <= 1.25 * thin
            orientation = "h" if name in ("bottom", "top") else "v"
            fixed_idx = fixed / pixel_nm - 0.5
            n_samples = max(1, int(length // (spacing_px * pixel_nm)))
            for k in range(n_samples):
                t_nm = lo + (k + 0.5) * length / n_samples
                t_idx = t_nm / pixel_nm - 0.5
                row, col = _edge_index_coords(orientation, fixed_idx, t_idx)
                if not _is_exterior(design, fixed, t_nm, orientation, normal, pixel_nm):
                    continue  # interior edge (another rect on the far side)
                if not (r_lo <= row <= r_hi and c_lo <= col <= c_hi):
                    continue
                if not is_cap:
                    if _point_in_zones(t_nm, fixed, orientation, tip_zones):
                        continue  # side site inside a tip zone: skip
                    if not _edge_is_straight(
                        design,
                        fixed,
                        t_nm,
                        orientation,
                        normal,
                        pixel_nm,
                        straight_margin_px,
                    ):
                        continue  # near a corner/notch: contour curves here
                sites.append(
                    EdgeSite(
                        row=row,
                        col=col,
                        normal=normal,
                        kind="cap" if is_cap else "side",
                    )
                )
    return sites


def _point_in_zones(
    t_nm: float, fixed_nm: float, orientation: str, zones: Sequence[Rect]
) -> bool:
    """Is the edge point (in clip-local nm) inside any tip zone?"""
    if orientation == "h":
        x, y = t_nm, fixed_nm
    else:
        x, y = fixed_nm, t_nm
    return any(z.contains_point(x, y) for z in zones)


@dataclass(frozen=True)
class ClipAnalysis:
    """Full oracle verdict for one clip."""

    is_hotspot: bool
    defects: Tuple[Defect, ...]  # core-attributed defects across all corners
    corner_defects: Tuple[Tuple[Defect, ...], ...]  # per corner, all defects

    @property
    def defect_kinds(self) -> Tuple[str, ...]:
        return tuple(sorted({d.kind for d in self.defects}))


@dataclass
class HotspotOracle:
    """Lithography-simulation-based hotspot reference detector.

    Parameters
    ----------
    optics, resist:
        The process model.  If ``resist`` is None, the threshold is
        calibrated against a dense reference grating of
        ``reference_width_nm`` lines at ``reference_pitch_nm`` pitch.
    corners:
        Process corners to simulate; defaults to nominal, dose +/-
        ``dose_delta`` and defocus ``defocus_delta_nm`` (5 corners).
    neck_ratio:
        Printed/designed local-width ratio below which a neck is a defect.
    epe_limit_nm:
        |EPE| above this on side walls is a defect.
    cap_pullback_nm:
        |EPE| above this at line-end caps is a defect (looser: line ends
        always pull back somewhat).
    tip_margin_nm:
        Depth of the tip zone treated under cap rules.
    """

    optics: OpticalSystem = field(default_factory=OpticalSystem)
    pixel_nm: int = 8
    resist: Optional[ResistModel] = None
    corners: Optional[Tuple[ImagingSettings, ...]] = None
    dose_delta: float = 0.04
    defocus_delta_nm: float = 32.0
    neck_ratio: float = 0.5
    epe_limit_nm: float = 30.0
    cap_pullback_nm: float = 42.0
    tip_margin_nm: int = 80
    spot_margin_px: int = 2
    spot_min_area_px: int = 4
    reference_width_nm: int = 64
    reference_pitch_nm: int = 192
    epe_sites: bool = True

    def __post_init__(self) -> None:
        if self.resist is None:
            threshold = calibrate_threshold(
                self.optics,
                self.pixel_nm,
                self.reference_width_nm,
                self.reference_pitch_nm,
            )
            self.resist = ResistModel(threshold=threshold)
        if self.corners is None:
            p = self.pixel_nm
            self.corners = (
                ImagingSettings(pixel_nm=p),
                ImagingSettings(pixel_nm=p, dose=1.0 + self.dose_delta),
                ImagingSettings(pixel_nm=p, dose=1.0 - self.dose_delta),
                ImagingSettings(pixel_nm=p, defocus_nm=self.defocus_delta_nm),
                ImagingSettings(
                    pixel_nm=p,
                    dose=1.0 - self.dose_delta,
                    defocus_nm=self.defocus_delta_nm,
                ),
            )

    # ------------------------------------------------------------------
    def analyze(self, clip: Clip) -> ClipAnalysis:
        """Simulate all corners and collect core-attributed defects."""
        design = rasterize_clip(clip, self.pixel_nm, antialias=True)
        dlabels, _ = design_components(design)
        rs, cs = core_slice(clip, self.pixel_nm)
        box = (rs.start, cs.start, rs.stop, cs.stop)
        zones = tip_zones_for_clip(
            clip, design, self.pixel_nm, self.tip_margin_nm
        )
        exclude = tip_mask(zones, design.shape, self.pixel_nm)
        sites = (
            edge_sites_for_clip(clip, design, self.pixel_nm, tip_zones=zones)
            if self.epe_sites
            else []
        )
        epe_limit_px = self.epe_limit_nm / self.pixel_nm
        cap_limit_px = self.cap_pullback_nm / self.pixel_nm

        core_defects: List[Defect] = []
        per_corner: List[Tuple[Defect, ...]] = []
        for settings in self.corners:  # type: ignore[union-attr]
            intensity = aerial_image(design, self.optics, settings)
            printed = self.resist.develop(intensity)  # type: ignore[union-attr]
            defects: List[Defect] = []
            defects.extend(find_bridges(dlabels, printed))
            defects.extend(find_opens(dlabels, printed))
            defects.extend(
                find_spots(
                    dlabels,
                    printed,
                    margin_px=self.spot_margin_px,
                    min_area_px=self.spot_min_area_px,
                )
            )
            defects.extend(
                find_necks(
                    dlabels,
                    printed,
                    min_width_ratio=self.neck_ratio,
                    exclude=exclude,
                )
            )
            if sites:
                defects.extend(
                    find_epe_defects(
                        intensity,
                        sites,
                        self.resist.threshold,
                        epe_limit_px,
                        cap_limit_px=cap_limit_px,
                    )
                )
            per_corner.append(tuple(defects))
            r1, c1, r2, c2 = box
            core_defects.extend(d for d in defects if d.in_box(r1, c1, r2, c2))
        return ClipAnalysis(
            is_hotspot=bool(core_defects),
            defects=tuple(core_defects),
            corner_defects=tuple(per_corner),
        )

    def label(self, clip: Clip) -> int:
        """1 if the clip is a hotspot else 0."""
        return int(self.analyze(clip).is_hotspot)

    def label_many(self, clips: Sequence[Clip]) -> np.ndarray:
        """Vector of 0/1 labels for a batch of clips."""
        return np.array([self.label(c) for c in clips], dtype=np.int64)

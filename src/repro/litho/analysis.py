"""Printability analysis: bridges, necks/opens, and edge placement error.

Given the design raster (what the mask asks for) and the printed raster
(what the resist develops), this module finds the defect classes that define
lithography hotspots:

* **bridge** — one printed component spans two or more distinct design
  components: an electrical short.
* **open** — a design component's print inside its own footprint falls
  apart into more pieces than designed (or vanishes): a broken wire.
* **neck** — the printed wire survives but its local width collapses below
  a fraction of the designed local width: an imminent open / reliability
  failure.  Measured by comparing Euclidean distance transforms of design
  and print along the design's interior.
* **EPE** — at sampled design edge sites, the printed contour's displacement
  along the edge normal exceeds a limit.

All functions operate in pixel units; the caller converts nm -> px.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import ndimage

from .resist import printed_components

_STRUCTURE4 = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]], dtype=bool)


@dataclass(frozen=True)
class Defect:
    """A single printability defect at a pixel location."""

    kind: str  # "bridge" | "open" | "neck" | "epe" | "spot"
    row: int
    col: int
    severity: float  # kind-specific magnitude (px of bridge, width ratio, |EPE| px)

    def in_box(self, r1: int, c1: int, r2: int, c2: int) -> bool:
        """True if the defect marker lies in the half-open pixel box."""
        return r1 <= self.row < r2 and c1 <= self.col < c2


def design_components(design: np.ndarray) -> Tuple[np.ndarray, int]:
    """Label the design raster's 4-connected components (0 = background)."""
    labels, count = ndimage.label(design >= 0.5, structure=_STRUCTURE4)
    return labels, int(count)


# ----------------------------------------------------------------------
# bridges
# ----------------------------------------------------------------------
def find_bridges(
    design_labels: np.ndarray, printed: np.ndarray
) -> List[Defect]:
    """Printed components that electrically merge >= 2 design components.

    The defect marker is placed at the centroid of the *bridging material*:
    printed pixels of the offending component that belong to no design shape.
    """
    printed_labels, n_printed = printed_components(printed)
    out: List[Defect] = []
    for comp in range(1, n_printed + 1):
        mask = printed_labels == comp
        touched = np.unique(design_labels[mask])
        touched = touched[touched != 0]
        if len(touched) < 2:
            continue
        bridge_px = mask & (design_labels == 0)
        if not bridge_px.any():
            # merged exactly along shape boundaries; mark component centroid
            bridge_px = mask
        rows, cols = np.nonzero(bridge_px)
        out.append(
            Defect(
                kind="bridge",
                row=int(round(rows.mean())),
                col=int(round(cols.mean())),
                severity=float(len(rows)),
            )
        )
    return out


def find_spots(
    design_labels: np.ndarray,
    printed: np.ndarray,
    margin_px: int = 1,
    min_area_px: int = 2,
) -> List[Defect]:
    """Spurious printing in clear areas: pre-bridge blobs / resist spots.

    Printed pixels farther than ``margin_px`` from any design shape are
    *extra* printing; connected blobs of at least ``min_area_px`` such
    pixels are defects (as dose rises they merge with the neighboring
    patterns into full bridges).  The margin absorbs the normal dose-driven
    edge bulge so only material genuinely out in the open counts.
    """
    design = design_labels > 0
    if margin_px > 0:
        allowed = ndimage.binary_dilation(
            design, structure=_STRUCTURE4, iterations=margin_px
        )
    else:
        allowed = design
    extra = printed & ~allowed
    if not extra.any():
        return []
    blobs, n_blobs = ndimage.label(extra, structure=_STRUCTURE4)
    out: List[Defect] = []
    for b in range(1, n_blobs + 1):
        mask = blobs == b
        area = int(mask.sum())
        if area < min_area_px:
            continue
        rows, cols = np.nonzero(mask)
        out.append(
            Defect(
                "spot",
                int(round(rows.mean())),
                int(round(cols.mean())),
                severity=float(area),
            )
        )
    return out


# ----------------------------------------------------------------------
# opens and necks
# ----------------------------------------------------------------------
def find_opens(design_labels: np.ndarray, printed: np.ndarray) -> List[Defect]:
    """Design components whose in-footprint print is missing or fragmented."""
    out: List[Defect] = []
    n_design = int(design_labels.max())
    for comp in range(1, n_design + 1):
        footprint = design_labels == comp
        printed_in = printed & footprint
        if not printed_in.any():
            rows, cols = np.nonzero(footprint)
            out.append(
                Defect(
                    "open",
                    int(round(rows.mean())),
                    int(round(cols.mean())),
                    severity=float(footprint.sum()),
                )
            )
            continue
        _, pieces = printed_components(printed_in)
        if pieces > 1:
            # marker at centroid of the unprinted gap inside the footprint
            gap = footprint & ~printed
            rows, cols = np.nonzero(gap if gap.any() else footprint)
            out.append(
                Defect(
                    "open",
                    int(round(rows.mean())),
                    int(round(cols.mean())),
                    severity=float(pieces),
                )
            )
    return out


def find_necks(
    design_labels: np.ndarray,
    printed: np.ndarray,
    min_width_ratio: float = 0.7,
    centerline_frac: float = 0.8,
    exclude: Optional[np.ndarray] = None,
) -> List[Defect]:
    """Local printed-width collapse along design centerlines.

    At a design pixel ``p``, ``2 * edt_design(p)`` approximates the designed
    local width and ``2 * edt_printed(p)`` the printed local width.  Pixels
    near the design medial axis (``edt_design >= centerline_frac * local
    max``) whose printed/designed width ratio drops below
    ``min_width_ratio`` are neck defects; connected runs of such pixels are
    merged into one defect at their centroid.

    ``exclude`` masks pixels that must not be reported (line-end tip zones,
    where width collapse is ordinary pullback handled by the EPE check).
    """
    design = design_labels > 0
    if not design.any():
        return []
    edt_design = ndimage.distance_transform_edt(design)
    edt_printed = ndimage.distance_transform_edt(printed)
    out: List[Defect] = []
    n_design = int(design_labels.max())
    for comp in range(1, n_design + 1):
        footprint = design_labels == comp
        d_comp = np.where(footprint, edt_design, 0.0)
        local_max = d_comp.max()
        if local_max <= 0:
            continue
        centerline = footprint & (d_comp >= centerline_frac * local_max)
        if exclude is not None:
            centerline &= ~exclude
        ratio = np.where(
            centerline, edt_printed / np.maximum(d_comp, 1e-9), np.inf
        )
        thin = centerline & (ratio < min_width_ratio) & printed
        if not thin.any():
            continue
        blobs, n_blobs = ndimage.label(thin, structure=_STRUCTURE4)
        for b in range(1, n_blobs + 1):
            rows, cols = np.nonzero(blobs == b)
            worst = float(ratio[blobs == b].min())
            out.append(
                Defect(
                    "neck",
                    int(round(rows.mean())),
                    int(round(cols.mean())),
                    severity=worst,
                )
            )
    return out


# ----------------------------------------------------------------------
# edge placement error
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EdgeSite:
    """A sampled point on a design edge with its outward normal (pixels).

    ``kind`` distinguishes long-run **side** edges from line-end **cap**
    edges: caps pull back under diffraction even in healthy patterns, so
    they get a looser EPE budget.
    """

    row: float
    col: float
    normal: Tuple[float, float]  # (drow, dcol), unit, pointing out of the shape
    kind: str = "side"  # "side" | "cap"


def measure_epe(
    intensity: np.ndarray,
    sites: Sequence[EdgeSite],
    threshold: float,
    max_px: float = 12.0,
    step_px: float = 0.25,
) -> List[float]:
    """Signed EPE (px) at each edge site; positive = print bulges outward.

    Walks the aerial intensity along each site's normal in both directions
    and finds the threshold crossing nearest the design edge.  Sites where
    no crossing exists within ``max_px`` report ``+/- max_px`` (the print is
    grossly over/under the edge there).
    """
    h, w = intensity.shape
    out: List[float] = []
    ts = np.arange(-max_px, max_px + step_px, step_px)
    for site in sites:
        rows = site.row + ts * site.normal[0]
        cols = site.col + ts * site.normal[1]
        valid = (rows >= 0) & (rows <= h - 1) & (cols >= 0) & (cols <= w - 1)
        if valid.sum() < 2:
            out.append(0.0)
            continue
        profile = ndimage.map_coordinates(
            intensity, [rows[valid], cols[valid]], order=1, mode="nearest"
        )
        tvalid = ts[valid]
        above = profile >= threshold
        # crossing indices where printed-ness flips
        flips = np.nonzero(above[:-1] != above[1:])[0]
        if len(flips) == 0:
            # uniformly printed or unprinted along the probe
            out.append(max_px if above.all() else -max_px)
            continue
        # linear interpolation of the crossing position closest to t=0
        best: Optional[float] = None
        for f in flips:
            i0, i1 = f, f + 1
            denom = profile[i1] - profile[i0]
            frac = 0.5 if denom == 0 else (threshold - profile[i0]) / denom
            t_cross = tvalid[i0] + frac * (tvalid[i1] - tvalid[i0])
            if best is None or abs(t_cross) < abs(best):
                best = float(t_cross)
        out.append(best if best is not None else 0.0)
    return out


def find_epe_defects(
    intensity: np.ndarray,
    sites: Sequence[EdgeSite],
    threshold: float,
    epe_limit_px: float,
    cap_limit_px: Optional[float] = None,
    max_px: float = 12.0,
) -> List[Defect]:
    """EPE defects: sites whose |EPE| exceeds their kind's limit.

    ``cap_limit_px`` applies to ``kind == "cap"`` sites (line ends), where
    moderate pullback is normal; it defaults to the side limit when omitted.
    """
    if cap_limit_px is None:
        cap_limit_px = epe_limit_px
    epes = measure_epe(intensity, sites, threshold, max_px=max_px)
    out: List[Defect] = []
    for site, epe in zip(sites, epes):
        limit = cap_limit_px if site.kind == "cap" else epe_limit_px
        if abs(epe) > limit:
            out.append(
                Defect(
                    "epe",
                    int(round(site.row)),
                    int(round(site.col)),
                    severity=abs(float(epe)),
                )
            )
    return out

"""Process-window metrics.

Beyond the binary hotspot verdict, DFM flows quantify *how much* process
margin a pattern has: across a dose x defocus grid, at how many conditions
does the pattern still print defect-free?  ``process_window_ratio`` is
that fraction; ``dose_latitude`` is the widest dose interval that prints
cleanly at best focus.  Hotspots are precisely the patterns whose window
collapses — these metrics grade the severity the 0/1 label hides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..geometry.layout import Clip
from .hotspot import HotspotOracle
from .optics import ImagingSettings


@dataclass(frozen=True)
class ProcessWindow:
    """Per-condition pass/fail over the dose x defocus grid."""

    doses: Tuple[float, ...]
    defocus_values_nm: Tuple[float, ...]
    passes: np.ndarray  # (n_defocus, n_dose) bool

    @property
    def ratio(self) -> float:
        """Fraction of grid conditions that print defect-free."""
        return float(self.passes.mean())

    def dose_latitude(self, defocus_index: int = 0) -> float:
        """Widest contiguous passing dose span at one defocus, as a
        fraction of nominal dose (0 when nothing passes)."""
        row = self.passes[defocus_index]
        best = 0
        run_start = None
        for i, ok in enumerate(row):
            if ok and run_start is None:
                run_start = i
            if (not ok or i == len(row) - 1) and run_start is not None:
                end = i if ok else i - 1
                span = self.doses[end] - self.doses[run_start]
                best = max(best, span)
                run_start = None
        return float(best)


def process_window(
    clip: Clip,
    oracle: Optional[HotspotOracle] = None,
    doses: Tuple[float, ...] = (0.90, 0.94, 0.98, 1.0, 1.02, 1.06, 1.10),
    defocus_values_nm: Tuple[float, ...] = (0.0, 16.0, 32.0, 48.0),
) -> ProcessWindow:
    """Evaluate defect-freedom on every (defocus, dose) grid point.

    Each condition is checked with the oracle's defect analysis restricted
    to that single corner, so ``passes[i, j]`` is True iff the clip's core
    is clean when printed at ``defocus_values_nm[i]``, ``doses[j]``.
    """
    base = oracle or HotspotOracle()
    passes = np.zeros((len(defocus_values_nm), len(doses)), dtype=bool)
    for i, defocus in enumerate(defocus_values_nm):
        for j, dose in enumerate(doses):
            corner = ImagingSettings(
                pixel_nm=base.pixel_nm, dose=dose, defocus_nm=defocus
            )
            single = HotspotOracle(
                optics=base.optics,
                pixel_nm=base.pixel_nm,
                resist=base.resist,
                corners=(corner,),
                neck_ratio=base.neck_ratio,
                epe_limit_nm=base.epe_limit_nm,
                cap_pullback_nm=base.cap_pullback_nm,
                tip_margin_nm=base.tip_margin_nm,
                spot_margin_px=base.spot_margin_px,
                spot_min_area_px=base.spot_min_area_px,
            )
            passes[i, j] = not single.analyze(clip).is_hotspot
    return ProcessWindow(
        doses=tuple(doses),
        defocus_values_nm=tuple(defocus_values_nm),
        passes=passes,
    )


def severity_score(pw: ProcessWindow) -> float:
    """1 - window ratio: 0 for robust patterns, 1 for dead-on-arrival."""
    return 1.0 - pw.ratio

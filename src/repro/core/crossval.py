"""K-fold cross-validation for detectors.

The contest fixes one train/test split per benchmark; when tuning
detector hyper-parameters one split is not enough.  ``cross_validate``
runs stratified k-fold CV over a labeled dataset, fitting a fresh
detector per fold, and reports per-fold and aggregate contest metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..data.dataset import ClipDataset
from .detector import Detector
from .metrics import Confusion, confusion, roc_auc


@dataclass(frozen=True)
class FoldResult:
    fold: int
    confusion: Confusion
    auc: Optional[float]


@dataclass(frozen=True)
class CrossValResult:
    folds: List[FoldResult]

    @property
    def mean_recall(self) -> float:
        return float(np.mean([f.confusion.recall for f in self.folds]))

    @property
    def mean_false_alarm_rate(self) -> float:
        return float(
            np.mean([f.confusion.false_alarm_rate for f in self.folds])
        )

    @property
    def mean_auc(self) -> Optional[float]:
        values = [f.auc for f in self.folds if f.auc is not None]
        return float(np.mean(values)) if values else None

    def summary(self) -> str:
        auc = self.mean_auc
        return (
            f"{len(self.folds)} folds: recall {100 * self.mean_recall:.1f}%, "
            f"FA rate {100 * self.mean_false_alarm_rate:.1f}%"
            + (f", AUC {auc:.3f}" if auc is not None else "")
        )


def stratified_folds(
    labels: np.ndarray, k: int, rng: np.random.Generator
) -> List[np.ndarray]:
    """Index arrays for k stratified folds (each class split evenly)."""
    if k < 2:
        raise ValueError("k must be >= 2")
    labels = np.asarray(labels)
    folds: List[List[int]] = [[] for _ in range(k)]
    for cls in (0, 1):
        idx = np.nonzero(labels == cls)[0]
        idx = idx[rng.permutation(len(idx))]
        for i, j in enumerate(idx):
            folds[i % k].append(int(j))
    return [np.array(sorted(f), dtype=np.int64) for f in folds]


def cross_validate(
    detector_factory: Callable[[], Detector],
    dataset: ClipDataset,
    rng: np.random.Generator,
    k: int = 5,
) -> CrossValResult:
    """Stratified k-fold CV; a fresh detector is fitted per fold.

    Folds that end up without both classes in their training part are
    rejected with an error (increase the dataset or reduce ``k``).
    """
    if dataset.n_hotspots < k:
        raise ValueError(
            f"need at least k={k} hotspots for stratified {k}-fold CV, "
            f"have {dataset.n_hotspots}"
        )
    folds = stratified_folds(dataset.labels, k, rng)
    results: List[FoldResult] = []
    all_indices = np.arange(len(dataset))
    for i, test_idx in enumerate(folds):
        train_mask = np.ones(len(dataset), dtype=bool)
        train_mask[test_idx] = False
        train = dataset.subset(all_indices[train_mask], name=f"cv{i}/train")
        test = dataset.subset(test_idx, name=f"cv{i}/test")
        detector = detector_factory()
        detector.fit(train, rng=rng)
        scores = detector.predict_proba(test.clips)
        y_pred = (scores >= detector.threshold).astype(np.int64)
        conf = confusion(test.labels, y_pred)
        auc = None
        if 0 < test.labels.sum() < len(test) and len(np.unique(scores)) > 1:
            auc = roc_auc(test.labels, scores)
        results.append(FoldResult(fold=i, confusion=conf, auc=auc))
    return CrossValResult(folds=results)

"""Evaluation metrics, in the ICCAD-2012 contest's vocabulary.

The contest reports:

* **accuracy** — hotspot detection rate, i.e. recall on the hotspot class
  (``TP / (TP + FN)``); *not* overall classification accuracy,
* **false alarms** — the raw count of non-hotspots flagged (``FP``),
* **ODST** — overall detection simulation time (here: wall-clock fit +
  predict measured by the harness).

This module implements those plus the standard suite (precision, F1,
balanced accuracy, confusion matrix, ROC/AUC) used by the figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Confusion:
    """Binary confusion counts (hotspot = positive class)."""

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def n(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def accuracy(self) -> float:
        """Contest 'accuracy': hotspot recall TP/(TP+FN)."""
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def false_alarms(self) -> int:
        """Contest 'false alarm': raw FP count."""
        return self.fp

    @property
    def false_alarm_rate(self) -> float:
        denom = self.fp + self.tn
        return self.fp / denom if denom else 0.0

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        return self.accuracy

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def overall_accuracy(self) -> float:
        """Plain classification accuracy (for completeness)."""
        return (self.tp + self.tn) / self.n if self.n else 0.0

    @property
    def balanced_accuracy(self) -> float:
        tnr = self.tn / (self.tn + self.fp) if (self.tn + self.fp) else 0.0
        return 0.5 * (self.recall + tnr)


def confusion(y_true: Sequence[int], y_pred: Sequence[int]) -> Confusion:
    """Confusion counts from 0/1 label arrays."""
    yt = np.asarray(y_true, dtype=np.int64)
    yp = np.asarray(y_pred, dtype=np.int64)
    if yt.shape != yp.shape:
        raise ValueError(f"shape mismatch: {yt.shape} vs {yp.shape}")
    bad = (set(np.unique(yt)) | set(np.unique(yp))) - {0, 1}
    if bad:
        raise ValueError(f"labels must be 0/1, found {sorted(bad)}")
    return Confusion(
        tp=int(((yt == 1) & (yp == 1)).sum()),
        fp=int(((yt == 0) & (yp == 1)).sum()),
        tn=int(((yt == 0) & (yp == 0)).sum()),
        fn=int(((yt == 1) & (yp == 0)).sum()),
    )


def roc_curve(
    y_true: Sequence[int], scores: Sequence[float]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(fpr, tpr, thresholds) swept over all distinct score cutoffs.

    Thresholds are sorted descending; the curve starts at (0, 0) with
    threshold ``+inf`` and ends at (1, 1).
    """
    yt = np.asarray(y_true, dtype=np.int64)
    sc = np.asarray(scores, dtype=np.float64)
    if yt.shape != sc.shape:
        raise ValueError("shape mismatch")
    n_pos = int(yt.sum())
    n_neg = len(yt) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("ROC needs both classes present")
    order = np.argsort(-sc, kind="stable")
    yt_sorted = yt[order]
    sc_sorted = sc[order]
    tp_cum = np.cumsum(yt_sorted)
    fp_cum = np.cumsum(1 - yt_sorted)
    # keep the last index of every distinct score (curve vertices)
    distinct = np.nonzero(np.diff(sc_sorted, append=-np.inf))[0]
    tpr = np.concatenate([[0.0], tp_cum[distinct] / n_pos])
    fpr = np.concatenate([[0.0], fp_cum[distinct] / n_neg])
    thresholds = np.concatenate([[np.inf], sc_sorted[distinct]])
    return fpr, tpr, thresholds


def auc(fpr: np.ndarray, tpr: np.ndarray) -> float:
    """Area under a (fpr, tpr) curve via trapezoids."""
    fpr = np.asarray(fpr, dtype=np.float64)
    tpr = np.asarray(tpr, dtype=np.float64)
    if np.any(np.diff(fpr) < 0):
        raise ValueError("fpr must be non-decreasing")
    return float(np.trapezoid(tpr, fpr))


def roc_auc(y_true: Sequence[int], scores: Sequence[float]) -> float:
    fpr, tpr, _ = roc_curve(y_true, scores)
    return auc(fpr, tpr)

"""Core detection framework: interfaces, metrics, evaluation, ensembles."""

from .detector import (
    Detector,
    FitReport,
    OracleDetector,
    detector_from_state,
    detector_to_state,
    supports_raster_scan,
)
from .ensemble import MajorityVoteEnsemble, SoftVoteEnsemble
from .evaluation import EvalResult, evaluate_detector, evaluate_on_suite
from .metrics import Confusion, auc, confusion, roc_auc, roc_curve
from .active import ActiveResult, ActiveRound, run_active_learning
from .crossval import CrossValResult, FoldResult, cross_validate, stratified_folds
from .registry import available, create, register
from .scan import ScanResult, scan_layer
from .threshold import best_f1_threshold, max_accuracy_under_fa_cap, pick_threshold

__all__ = [
    "Detector",
    "FitReport",
    "OracleDetector",
    "detector_to_state",
    "detector_from_state",
    "supports_raster_scan",
    "Confusion",
    "confusion",
    "roc_curve",
    "roc_auc",
    "auc",
    "EvalResult",
    "evaluate_detector",
    "evaluate_on_suite",
    "max_accuracy_under_fa_cap",
    "best_f1_threshold",
    "pick_threshold",
    "SoftVoteEnsemble",
    "MajorityVoteEnsemble",
    "register",
    "create",
    "available",
    "ScanResult",
    "scan_layer",
    "ActiveResult",
    "ActiveRound",
    "run_active_learning",
    "CrossValResult",
    "FoldResult",
    "cross_validate",
    "stratified_folds",
]

"""Name -> detector factory registry.

The CLI and the bench harness refer to detectors by name; packages
register their factories at import time via :func:`register`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .detector import Detector

_REGISTRY: Dict[str, Callable[..., Detector]] = {}


def register(name: str, factory: Callable[..., Detector]) -> None:
    """Register a detector factory under ``name``.

    Factories are invoked with no arguments by default; keyword overrides
    passed to :func:`create` are forwarded verbatim.
    """
    if name in _REGISTRY:
        raise KeyError(f"detector {name!r} already registered")
    _REGISTRY[name] = factory


def create(name: str, **overrides) -> Detector:
    """Instantiate a registered detector.

    ``overrides`` are forwarded to the factory so callers (notably
    ``scan-chip --set key=value``) can tune a detector without code
    changes.  ``threshold`` is handled uniformly: every detector exposes a
    decision threshold attribute, so it is applied post-construction
    rather than requiring each factory to accept it.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown detector {name!r}; available: {available()}"
        ) from None
    threshold = overrides.pop("threshold", None)
    try:
        detector = factory(**overrides)
    except TypeError as exc:
        raise TypeError(
            f"detector {name!r} rejected overrides {sorted(overrides)}: {exc}"
        ) from None
    if threshold is not None:
        detector.threshold = float(threshold)
    return detector


def available() -> List[str]:
    return sorted(_REGISTRY)


def clear() -> None:
    """Testing hook: empty the registry."""
    _REGISTRY.clear()

"""Name -> detector factory registry.

The CLI and the bench harness refer to detectors by name; packages
register their factories at import time via :func:`register`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .detector import Detector

_REGISTRY: Dict[str, Callable[[], Detector]] = {}


def register(name: str, factory: Callable[[], Detector]) -> None:
    """Register a zero-arg detector factory under ``name``."""
    if name in _REGISTRY:
        raise KeyError(f"detector {name!r} already registered")
    _REGISTRY[name] = factory


def create(name: str) -> Detector:
    """Instantiate a registered detector."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown detector {name!r}; available: {available()}"
        ) from None
    return factory()


def available() -> List[str]:
    return sorted(_REGISTRY)


def clear() -> None:
    """Testing hook: empty the registry."""
    _REGISTRY.clear()

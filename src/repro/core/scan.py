"""Full-chip scanning: sweep a detector over a tiled layout.

The deployment mode every hotspot paper motivates: a detector trained on
clips is swept over all windows of a large layout; flagged windows go to
lithography verification.  ``scan_layer`` formalizes the flow and reports
the hotspot map plus the simulation-savings ratio.

The actual sweep now lives in :mod:`repro.runtime` (streaming tiles,
dedup cache, worker pool, cascade, telemetry); ``scan_layer`` remains the
stable, single-process, score-everything entry point layered on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.layout import Clip, Layer
from ..geometry.rect import Rect
from .detector import Detector


@dataclass
class ScanResult:
    """Outcome of sweeping one layer."""

    centers: List[Tuple[int, int]]
    clips: List[Clip]
    scores: np.ndarray
    flagged: np.ndarray  # bool per clip
    confirmed: Optional[np.ndarray] = None  # bool per flagged clip (if verified)

    @property
    def n_flagged(self) -> int:
        return int(self.flagged.sum())

    @property
    def flag_ratio(self) -> float:
        """Fraction of windows sent to verification (simulation cost)."""
        return self.n_flagged / len(self.clips) if self.clips else 0.0

    def flagged_clips(self) -> List[Clip]:
        return [c for c, f in zip(self.clips, self.flagged) if f]

    def hotspot_regions(self) -> List[Rect]:
        """Core regions of flagged clips (confirmed ones if verified)."""
        if self.confirmed is not None:
            flagged = self.flagged_clips()
            return [c.core for c, ok in zip(flagged, self.confirmed) if ok]
        return [c.core for c in self.flagged_clips()]

    def heat_map(self) -> np.ndarray:
        """Scores as a (rows, cols) grid, row 0 at the bottom of the region."""
        xs = sorted({c[0] for c in self.centers})
        ys = sorted({c[1] for c in self.centers})
        grid = np.full((len(ys), len(xs)), np.nan)
        x_index = {x: j for j, x in enumerate(xs)}
        y_index = {y: i for i, y in enumerate(ys)}
        for (cx, cy), score in zip(self.centers, self.scores):
            grid[y_index[cy], x_index[cx]] = score
        return grid


def scan_layer(
    detector: Detector,
    layer: Layer,
    region: Rect,
    window_nm: int = 768,
    core_nm: int = 256,
    step_nm: Optional[int] = None,
    oracle=None,
) -> ScanResult:
    """Sweep a fitted detector over all clip windows of a region.

    ``step_nm`` defaults to the core size so cores tile the region without
    gaps.  Passing a :class:`~repro.litho.HotspotOracle` as ``oracle``
    verifies the flagged windows (the detect-then-simulate flow).

    This is the compatibility entry point: it delegates to
    :class:`repro.runtime.ScanEngine` configured to match the historical
    contract exactly — in-process, every window scored (no dedup cache),
    every clip retained on the result, scoring on the per-clip reference
    path (no raster-plane fast path).  Production scans should construct
    a :class:`~repro.runtime.ScanEngine` directly to get streaming,
    memoization, worker pools, raster-plane batching, and
    cascade/telemetry reporting.
    """
    from ..runtime import EngineConfig, ScanEngine

    engine = ScanEngine(
        detector,
        config=EngineConfig.from_kwargs(
            workers=1, dedup=False, raster_plane=False
        ),
    )
    return engine.scan(
        layer,
        region,
        window_nm=window_nm,
        core_nm=core_nm,
        step_nm=step_nm,
        oracle=oracle,
    )

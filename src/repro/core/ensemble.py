"""Detector ensembles.

The survey's closing observation — cheap detectors can be combined — is
implemented as score-level ensembles over fitted ``Detector`` members:

* ``SoftVoteEnsemble`` — weighted mean of member probabilities,
* ``MajorityVoteEnsemble`` — hard votes, fraction agreeing is the score.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..data.dataset import ClipDataset
from ..geometry.layout import Clip
from .detector import Detector, FitReport


class SoftVoteEnsemble(Detector):  # lint: disable=raster-parity  (members may be clip-only)
    """Weighted average of member scores."""

    def __init__(
        self,
        members: Sequence[Detector],
        weights: Optional[Sequence[float]] = None,
        name: str = "soft-vote",
    ) -> None:
        if not members:
            raise ValueError("ensemble needs at least one member")
        self.members = list(members)
        if weights is None:
            weights = [1.0] * len(self.members)
        if len(weights) != len(self.members):
            raise ValueError("weights must match members")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        self.weights = [w / total for w in weights]
        self.name = name

    def fit(
        self, train: ClipDataset, rng: Optional[np.random.Generator] = None
    ) -> FitReport:
        rng = rng or np.random.default_rng(0)
        total = 0.0
        for member in self.members:
            report = member.fit(train, rng=rng)
            total += report.train_seconds
        return FitReport(train_seconds=total, n_train=len(train))

    def predict_proba(self, clips: Sequence[Clip]) -> np.ndarray:
        out = np.zeros(len(clips), dtype=np.float64)
        for weight, member in zip(self.weights, self.members):
            out += weight * member.predict_proba(clips)
        return out


class MajorityVoteEnsemble(Detector):  # lint: disable=raster-parity  (members may be clip-only)
    """Hard-vote ensemble; score = fraction of members voting hotspot."""

    def __init__(self, members: Sequence[Detector], name: str = "majority-vote") -> None:
        if not members:
            raise ValueError("ensemble needs at least one member")
        self.members = list(members)
        self.name = name

    def fit(
        self, train: ClipDataset, rng: Optional[np.random.Generator] = None
    ) -> FitReport:
        rng = rng or np.random.default_rng(0)
        total = 0.0
        for member in self.members:
            total += member.fit(train, rng=rng).train_seconds
        return FitReport(train_seconds=total, n_train=len(train))

    def predict_proba(self, clips: Sequence[Clip]) -> np.ndarray:
        votes = np.stack([m.predict(clips) for m in self.members])
        return votes.mean(axis=0)

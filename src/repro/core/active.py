"""Active learning: spend the simulation budget on informative clips.

Oracle labels are expensive (each is a multi-corner lithography run), so
training-set construction is itself an optimization problem.  The loop
here implements the standard pool-based recipe:

1. label a small random seed set,
2. fit the detector,
3. query the oracle on the pool clips the detector is least sure about
   (``|score - 0.5|`` smallest), or randomly for the control arm,
4. repeat until the label budget is spent.

``run_active_learning`` returns the labeled set, the final detector and a
per-round history, so the data-efficiency ablation can plot quality vs.
labels spent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..data.dataset import ClipDataset
from ..geometry.layout import Clip
from .detector import Detector


@dataclass
class ActiveRound:
    """Bookkeeping for one acquisition round."""

    n_labeled: int
    n_hotspots_found: int
    pool_remaining: int


@dataclass
class ActiveResult:
    labeled: ClipDataset
    detector: Detector
    history: List[ActiveRound] = field(default_factory=list)

    @property
    def labels_spent(self) -> int:
        return len(self.labeled)


def _uncertainty_order(scores: np.ndarray) -> np.ndarray:
    """Pool indices sorted most-uncertain first."""
    return np.argsort(np.abs(scores - 0.5), kind="stable")


def run_active_learning(
    detector_factory: Callable[[], Detector],
    oracle,
    pool: Sequence[Clip],
    rng: np.random.Generator,
    budget: int,
    seed_size: int = 20,
    batch_size: int = 10,
    strategy: str = "uncertainty",
    explore_fraction: float = 0.5,
) -> ActiveResult:
    """Pool-based active learning against a labeling oracle.

    ``oracle`` needs a ``label(clip) -> int`` method; ``strategy`` is
    ``"uncertainty"`` or ``"random"`` (the ablation baseline).  The final
    detector is fitted on everything labeled.

    Pure uncertainty sampling is vulnerable to sampling bias (it fixates
    on one boundary region and starves the rest of the space), so each
    uncertainty batch spends ``explore_fraction`` of its picks on random
    exploration — the standard epsilon-greedy remedy.
    """
    if strategy not in ("uncertainty", "random"):
        raise ValueError("strategy must be 'uncertainty' or 'random'")
    if not 0.0 <= explore_fraction <= 1.0:
        raise ValueError("explore_fraction must be in [0, 1]")
    if budget < seed_size:
        raise ValueError("budget must cover at least the seed set")
    if budget > len(pool):
        raise ValueError("budget exceeds the pool size")

    pool_idx = list(range(len(pool)))
    rng.shuffle(pool_idx)
    chosen = pool_idx[:seed_size]
    remaining = pool_idx[seed_size:]

    clips = [pool[i] for i in chosen]
    labels = [int(oracle.label(c)) for c in clips]
    history: List[ActiveRound] = []
    detector = detector_factory()

    def refit() -> Detector:
        det = detector_factory()
        dataset = ClipDataset(
            "active", list(clips), np.asarray(labels, dtype=np.int64)
        )
        det.fit(dataset, rng=rng)
        return det

    detector = refit()
    history.append(
        ActiveRound(
            n_labeled=len(clips),
            n_hotspots_found=int(sum(labels)),
            pool_remaining=len(remaining),
        )
    )
    while len(clips) < budget and remaining:
        take = min(batch_size, budget - len(clips), len(remaining))
        if strategy == "uncertainty":
            n_explore = int(round(explore_fraction * take))
            n_exploit = take - n_explore
            scores = detector.predict_proba([pool[i] for i in remaining])
            order = _uncertainty_order(scores)
            exploit = list(order[:n_exploit])
            rest = [p for p in range(len(remaining)) if p not in set(exploit)]
            explore = (
                list(rng.choice(rest, size=min(n_explore, len(rest)), replace=False))
                if rest and n_explore
                else []
            )
            picked_positions = exploit + explore
        else:
            picked_positions = rng.choice(
                len(remaining), size=take, replace=False
            )
        picked = sorted(
            (remaining[p] for p in picked_positions), reverse=True
        )
        for i in picked:
            remaining.remove(i)
            clips.append(pool[i])
            labels.append(int(oracle.label(pool[i])))
        detector = refit()
        history.append(
            ActiveRound(
                n_labeled=len(clips),
                n_hotspots_found=int(sum(labels)),
                pool_remaining=len(remaining),
            )
        )
    return ActiveResult(
        labeled=ClipDataset(
            "active", list(clips), np.asarray(labels, dtype=np.int64)
        ),
        detector=detector,
        history=history,
    )

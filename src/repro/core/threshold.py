"""Decision-threshold calibration.

The contest scores detectors on (accuracy up, false alarms down); a raw
0.5 cutoff is rarely the right operating point on imbalanced data.  These
helpers pick thresholds from held-out scores:

* ``max_accuracy_under_fa_cap`` — the contest's implicit objective:
  maximize hotspot recall subject to a false-alarm budget,
* ``best_f1_threshold`` — balance precision/recall when no budget given.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .metrics import confusion


def _candidate_thresholds(scores: np.ndarray) -> np.ndarray:
    """Midpoints between consecutive distinct scores, plus the extremes."""
    distinct = np.unique(scores)
    if len(distinct) == 1:
        return np.array([distinct[0]])
    mids = (distinct[:-1] + distinct[1:]) / 2.0
    return np.concatenate([[distinct[0] - 1e-9], mids, [distinct[-1] + 1e-9]])


def max_accuracy_under_fa_cap(
    y_true: Sequence[int],
    scores: Sequence[float],
    max_false_alarm_rate: float,
) -> Tuple[float, float, float]:
    """Threshold maximizing hotspot recall with FA rate <= cap.

    Returns ``(threshold, recall, fa_rate)`` at the chosen point.  When no
    threshold meets the cap, the tightest (highest) threshold is returned.
    """
    yt = np.asarray(y_true, dtype=np.int64)
    sc = np.asarray(scores, dtype=np.float64)
    best = None
    for thr in _candidate_thresholds(sc):
        c = confusion(yt, (sc >= thr).astype(np.int64))
        key = (c.recall, -c.false_alarm_rate)
        if c.false_alarm_rate <= max_false_alarm_rate:
            if best is None or key > best[0]:
                best = (key, float(thr), c.recall, c.false_alarm_rate)
    if best is None:
        thr = float(np.max(sc) + 1e-9)
        c = confusion(yt, (sc >= thr).astype(np.int64))
        return thr, c.recall, c.false_alarm_rate
    return best[1], best[2], best[3]


def pick_threshold(
    mode: str,
    y_true: Sequence[int],
    scores: Sequence[float],
    fa_cap: float = 0.10,
) -> float:
    """Operating-point selection on held-out scores.

    ``"f1"`` maximizes F1; ``"fa"`` maximizes hotspot recall subject to a
    false-alarm-rate cap (the contest's implicit objective).
    """
    if mode == "f1":
        threshold, _f1 = best_f1_threshold(y_true, scores)
        return threshold
    if mode == "fa":
        threshold, _recall, _fa = max_accuracy_under_fa_cap(
            y_true, scores, fa_cap
        )
        return threshold
    raise ValueError(f"unknown calibration mode {mode!r}")


def best_f1_threshold(
    y_true: Sequence[int], scores: Sequence[float]
) -> Tuple[float, float]:
    """Threshold maximizing F1; returns ``(threshold, f1)``."""
    yt = np.asarray(y_true, dtype=np.int64)
    sc = np.asarray(scores, dtype=np.float64)
    best_thr, best_f1 = 0.5, -1.0
    for thr in _candidate_thresholds(sc):
        c = confusion(yt, (sc >= thr).astype(np.int64))
        if c.f1 > best_f1:
            best_thr, best_f1 = float(thr), c.f1
    return best_thr, best_f1

"""The unified detector interface.

Every hotspot detector in the library — pattern matching, shallow ML, the
CNN, and the litho-sim reference — implements ``Detector``:

* ``fit(train, rng)`` — learn from a labeled :class:`ClipDataset`,
* ``predict_proba(clips)`` — per-clip hotspot score in [0, 1],
* ``predict(clips)`` — 0/1 decisions at the detector's ``threshold``.

Scores, not just labels, are first-class so the harness can sweep ROC
curves and calibrate thresholds under false-alarm caps.
"""

from __future__ import annotations

import pickle
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..contracts import shaped
from ..data.dataset import ClipDataset
from ..geometry.layout import Clip


@dataclass
class FitReport:
    """What happened during training (for the runtime tables)."""

    train_seconds: float = 0.0
    n_train: int = 0
    notes: str = ""


class Detector(ABC):
    """Base class for all hotspot detectors."""

    #: identifier used in tables / the registry
    name: str = "detector"
    #: decision threshold applied by :meth:`predict`
    threshold: float = 0.5

    @abstractmethod
    def fit(
        self, train: ClipDataset, rng: Optional[np.random.Generator] = None
    ) -> FitReport:
        """Train on a labeled dataset; returns a :class:`FitReport`."""

    @abstractmethod
    def predict_proba(self, clips: Sequence[Clip]) -> np.ndarray:
        """Hotspot scores in [0, 1], shape ``(len(clips),)``.

        Implementations must accept an empty clip sequence and return a
        ``(0,)`` array (cascade stages routinely resolve every window
        before a later stage runs).
        """

    @shaped("[n]->(n,):int")
    def predict(self, clips: Sequence[Clip]) -> np.ndarray:
        """0/1 hotspot decisions at ``self.threshold``."""
        if len(clips) == 0:
            return np.empty(0, dtype=np.int64)
        return (self.predict_proba(clips) >= self.threshold).astype(np.int64)

    def to_state(self) -> bytes:
        """Portable serialized form for shipping to worker processes."""
        return detector_to_state(self)

    @staticmethod
    def from_state(state: bytes) -> "Detector":
        """Inverse of :meth:`to_state`."""
        return detector_from_state(state)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


def supports_raster_scan(detector) -> bool:
    """True when ``detector`` can score pre-rendered window rasters.

    The raster-plane scan path needs two things from a detector: a
    ``predict_proba_rasters(rasters)`` method scoring a ``(n, H, W)``
    stack, and a positive integer ``raster_pixel_nm`` telling the engine
    what pixel pitch to rasterize the shared plane at.  Detectors that
    consume clip geometry directly (pattern matchers, cascades, CCAS- or
    squish-based models) report False and scan on the clip path.
    """
    if not callable(getattr(detector, "predict_proba_rasters", None)):
        return False
    pixel = getattr(detector, "raster_pixel_nm", None)
    return isinstance(pixel, int) and not isinstance(pixel, bool) and pixel > 0


def detector_to_state(detector) -> bytes:
    """Serialize a fitted detector (or duck-typed matcher) to bytes.

    The runtime worker pool ships detectors to ``spawn``-ed processes via
    this state; every detector in the library is built from plain
    numpy/dataclass parts, so pickling the object graph is sufficient and
    keeps each detector's own ``save``/``load`` formats untouched.
    """
    return pickle.dumps(detector, protocol=pickle.HIGHEST_PROTOCOL)


def detector_from_state(state: bytes):
    """Rebuild a detector from :func:`detector_to_state` bytes."""
    detector = pickle.loads(state)
    if not callable(getattr(detector, "predict_proba", None)):
        raise TypeError(
            f"state does not decode to a detector: {type(detector).__name__}"
        )
    return detector


class OracleDetector(Detector):  # lint: disable=raster-parity  (geometry oracle, no raster plane)
    """Adapter exposing the litho-sim oracle through the Detector API.

    Generation 0: needs no training and is exact by definition (it *is*
    the labeling function), but orders of magnitude slower than learned
    detectors — the runtime-scaling figure exists to show exactly that.
    """

    name = "litho-sim"

    def __init__(self, oracle) -> None:
        self._oracle = oracle

    def fit(
        self, train: ClipDataset, rng: Optional[np.random.Generator] = None
    ) -> FitReport:
        return FitReport(train_seconds=0.0, n_train=len(train), notes="no training")

    @shaped("[n]->(n,):float64")
    def predict_proba(self, clips: Sequence[Clip]) -> np.ndarray:
        return np.array(
            [float(self._oracle.label(clip)) for clip in clips], dtype=np.float64
        )

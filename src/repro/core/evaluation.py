"""End-to-end detector evaluation on benchmarks.

``evaluate_detector`` runs fit + predict with wall-clock timing and
produces an :class:`EvalResult` carrying the contest metrics; the bench
harness stacks these into the paper's tables.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.dataset import Benchmark, ClipDataset
from .detector import Detector
from .metrics import Confusion, confusion, roc_auc


@dataclass
class EvalResult:
    """One detector's scores on one benchmark."""

    detector: str
    benchmark: str
    confusion: Confusion
    fit_seconds: float
    predict_seconds: float
    auc: Optional[float] = None
    scores: Optional[np.ndarray] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def accuracy(self) -> float:
        """Contest accuracy = hotspot recall."""
        return self.confusion.accuracy

    @property
    def false_alarms(self) -> int:
        return self.confusion.false_alarms

    @property
    def odst_seconds(self) -> float:
        """Overall detection time: train + test wall clock."""
        return self.fit_seconds + self.predict_seconds

    def row(self) -> Dict[str, object]:
        """Flat dict for table formatting."""
        return {
            "detector": self.detector,
            "benchmark": self.benchmark,
            "accuracy": round(100 * self.accuracy, 1),
            "false_alarms": self.false_alarms,
            "precision": round(100 * self.confusion.precision, 1),
            "f1": round(100 * self.confusion.f1, 1),
            "auc": None if self.auc is None else round(self.auc, 3),
            "fit_s": round(self.fit_seconds, 2),
            "predict_s": round(self.predict_seconds, 3),
            "odst_s": round(self.odst_seconds, 2),
        }


def evaluate_detector(
    detector: Detector,
    benchmark: Benchmark,
    rng: Optional[np.random.Generator] = None,
    fit: bool = True,
    keep_scores: bool = False,
) -> EvalResult:
    """Fit on the benchmark's train split, evaluate on its test split."""
    rng = rng or np.random.default_rng(0)
    fit_seconds = 0.0
    if fit:
        t0 = time.perf_counter()
        detector.fit(benchmark.train, rng=rng)
        fit_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    scores = detector.predict_proba(benchmark.test.clips)
    predict_seconds = time.perf_counter() - t0
    y_pred = (scores >= detector.threshold).astype(np.int64)
    y_true = benchmark.test.labels
    conf = confusion(y_true, y_pred)
    auc_value: Optional[float] = None
    if y_true.sum() > 0 and y_true.sum() < len(y_true) and len(np.unique(scores)) > 1:
        auc_value = roc_auc(y_true, scores)
    return EvalResult(
        detector=detector.name,
        benchmark=benchmark.name,
        confusion=conf,
        fit_seconds=fit_seconds,
        predict_seconds=predict_seconds,
        auc=auc_value,
        scores=scores if keep_scores else None,
    )


def evaluate_on_suite(
    detector_factory,
    suite: Sequence[Benchmark],
    seed: int = 0,
) -> List[EvalResult]:
    """Evaluate a fresh detector instance per benchmark.

    ``detector_factory`` is a zero-argument callable returning a new
    (unfitted) detector; a fresh instance per benchmark prevents state
    leaks and matches the contest protocol.
    """
    results: List[EvalResult] = []
    for i, benchmark in enumerate(suite):
        detector = detector_factory()
        rng = np.random.default_rng(seed + i)
        results.append(evaluate_detector(detector, benchmark, rng=rng))
    return results

"""``python -m repro`` entry point."""

import os
import sys

from .cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # downstream pipe reader (head, less) closed early; exit quietly
    devnull = os.open(os.devnull, os.O_WRONLY)
    os.dup2(devnull, sys.stdout.fileno())
    sys.exit(1)

"""Layout feature extraction: the bridge between geometry and learning.

* :class:`DensityGrid` — tile coverage fractions (shallow baseline),
* :class:`ConcentricSampling` — CCAS polar sampling (SVM-era feature),
* :class:`DCTFeatureTensor` — block-DCT tensor (the deep detector input),
* :class:`SquishFeatures` / :func:`squish` — lossless topology encoding
  (pattern matching keys and compact ML features),
* :func:`vectorize` / :func:`vectorize_standardized` — dataset plumbing.
"""

from .base import CachingExtractor, FeatureExtractor, Standardizer
from .concentric import ConcentricSampling
from .dct import (
    DCTFeatureTensor,
    feature_tensor,
    feature_tensor_batch,
    inverse_feature_tensor,
)
from .density import DensityGrid, block_reduce_mean, block_reduce_mean_batch
from .hog import HOGFeatures, hog_features
from .pipeline import ConcatFeatures, vectorize, vectorize_standardized
from .registry import (
    available_extractors,
    create_extractor,
    register_extractor,
)
from .squish import SquishFeatures, SquishPattern, squish, unsquish

# The canonical configurations used across the paper's tables, enumerable
# by tooling (conformance harness, parity property tests).
_CANONICAL_EXTRACTORS = {
    "density12": lambda: DensityGrid(grid=12),
    "ccas": lambda: ConcentricSampling(n_rings=12, n_angles=24),
    "ccas-rings": lambda: ConcentricSampling(
        n_rings=12, n_angles=24, mode="rings"
    ),
    "dct-b8k4": lambda: DCTFeatureTensor(block=8, keep=4),
    "dct-b8k4-flat": lambda: DCTFeatureTensor(block=8, keep=4, flatten=True),
    "hog6x4": lambda: HOGFeatures(cells=6, n_bins=4),
    "squish24": lambda: SquishFeatures(max_cuts=24),
}

for _name, _factory in _CANONICAL_EXTRACTORS.items():
    register_extractor(_name, _factory)

__all__ = [
    "FeatureExtractor",
    "CachingExtractor",
    "Standardizer",
    "DensityGrid",
    "block_reduce_mean",
    "block_reduce_mean_batch",
    "ConcentricSampling",
    "HOGFeatures",
    "hog_features",
    "DCTFeatureTensor",
    "feature_tensor",
    "feature_tensor_batch",
    "inverse_feature_tensor",
    "SquishFeatures",
    "SquishPattern",
    "squish",
    "unsquish",
    "ConcatFeatures",
    "vectorize",
    "vectorize_standardized",
    "register_extractor",
    "create_extractor",
    "available_extractors",
]

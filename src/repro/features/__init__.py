"""Layout feature extraction: the bridge between geometry and learning.

* :class:`DensityGrid` — tile coverage fractions (shallow baseline),
* :class:`ConcentricSampling` — CCAS polar sampling (SVM-era feature),
* :class:`DCTFeatureTensor` — block-DCT tensor (the deep detector input),
* :class:`SquishFeatures` / :func:`squish` — lossless topology encoding
  (pattern matching keys and compact ML features),
* :func:`vectorize` / :func:`vectorize_standardized` — dataset plumbing.
"""

from .base import CachingExtractor, FeatureExtractor, Standardizer
from .concentric import ConcentricSampling
from .dct import (
    DCTFeatureTensor,
    feature_tensor,
    feature_tensor_batch,
    inverse_feature_tensor,
)
from .density import DensityGrid, block_reduce_mean, block_reduce_mean_batch
from .hog import HOGFeatures, hog_features
from .pipeline import ConcatFeatures, vectorize, vectorize_standardized
from .squish import SquishFeatures, SquishPattern, squish, unsquish

__all__ = [
    "FeatureExtractor",
    "CachingExtractor",
    "Standardizer",
    "DensityGrid",
    "block_reduce_mean",
    "block_reduce_mean_batch",
    "ConcentricSampling",
    "HOGFeatures",
    "hog_features",
    "DCTFeatureTensor",
    "feature_tensor",
    "feature_tensor_batch",
    "inverse_feature_tensor",
    "SquishFeatures",
    "SquishPattern",
    "squish",
    "unsquish",
    "ConcatFeatures",
    "vectorize",
    "vectorize_standardized",
]

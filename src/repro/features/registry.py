"""Name -> extractor factory registry.

Mirrors :mod:`repro.core.registry` for feature extractors so tooling —
the conformance harness, property tests, benchmarks — can enumerate
every canonical extractor configuration instead of hard-coding lists.
:mod:`repro.features` registers the standard configurations at import
time.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import FeatureExtractor

_REGISTRY: Dict[str, Callable[[], FeatureExtractor]] = {}


def register_extractor(
    name: str, factory: Callable[[], FeatureExtractor]
) -> None:
    """Register an extractor factory under ``name`` (no-arg callable)."""
    if name in _REGISTRY:
        raise KeyError(f"extractor {name!r} already registered")
    _REGISTRY[name] = factory


def create_extractor(name: str) -> FeatureExtractor:
    """Instantiate a registered extractor."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown extractor {name!r}; available: {available_extractors()}"
        ) from None
    return factory()


def available_extractors() -> List[str]:
    return sorted(_REGISTRY)


def clear_extractors() -> None:
    """Testing hook: empty the registry."""
    _REGISTRY.clear()

"""Squish-pattern encoding.

A lossless topological compression of a rectilinear clip: project all rect
edges onto the two axes to get the distinct x-cuts and y-cuts, then store

* the **topology matrix** — for every (y-interval, x-interval) cell, 1 if
  covered by metal, and
* the **delta vectors** — the interval lengths along each axis.

Two clips with the same topology matrix are the same pattern up to
stretching; pattern matchers key on the topology and compare deltas with a
tolerance.  For fixed-length ML features, matrix + deltas are padded to a
configurable maximum (clips whose cut count exceeds it are re-encoded at a
coarser snapping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..geometry.layout import Clip
from ..geometry.rect import Rect
from ..contracts import shaped
from .base import FeatureExtractor


@dataclass(frozen=True)
class SquishPattern:
    """Topology matrix + axis deltas for one clip (clip-local coords)."""

    topology: Tuple[Tuple[int, ...], ...]  # rows bottom-to-top
    dx: Tuple[int, ...]
    dy: Tuple[int, ...]

    @property
    def shape(self) -> Tuple[int, int]:
        return (len(self.dy), len(self.dx))

    def topology_key(self) -> Tuple[Tuple[int, ...], ...]:
        """Hashable key identifying the pattern's topology class."""
        return self.topology

    def matrix(self) -> np.ndarray:
        return np.array(self.topology, dtype=np.int8)


def squish(clip: Clip) -> SquishPattern:
    """Squish-encode a clip (exact, lossless given the cut lines)."""
    rects = clip.local_rects()
    size = clip.size
    xs = sorted({0, size} | {r.x1 for r in rects} | {r.x2 for r in rects})
    ys = sorted({0, size} | {r.y1 for r in rects} | {r.y2 for r in rects})
    xs = [x for x in xs if 0 <= x <= size]
    ys = [y for y in ys if 0 <= y <= size]
    topo: List[Tuple[int, ...]] = []
    for y1, y2 in zip(ys[:-1], ys[1:]):
        row = []
        for x1, x2 in zip(xs[:-1], xs[1:]):
            cell = Rect(x1, y1, x2, y2)
            covered = any(r.contains(cell) for r in rects)
            row.append(1 if covered else 0)
        topo.append(tuple(row))
    dx = tuple(b - a for a, b in zip(xs[:-1], xs[1:]))
    dy = tuple(b - a for a, b in zip(ys[:-1], ys[1:]))
    return SquishPattern(topology=tuple(topo), dx=dx, dy=dy)


def unsquish(pattern: SquishPattern) -> List[Rect]:
    """Reconstruct the covered cells as rects (clip-local)."""
    xs = np.concatenate([[0], np.cumsum(pattern.dx)])
    ys = np.concatenate([[0], np.cumsum(pattern.dy)])
    out: List[Rect] = []
    for i, row in enumerate(pattern.topology):
        for j, covered in enumerate(row):
            if covered:
                out.append(
                    Rect(int(xs[j]), int(ys[i]), int(xs[j + 1]), int(ys[i + 1]))
                )
    return out


class SquishFeatures(FeatureExtractor):
    """Fixed-length vector: padded topology matrix + normalized deltas."""

    def __init__(self, max_cuts: int = 24) -> None:
        if max_cuts < 2:
            raise ValueError("max_cuts must be >= 2")
        self.max_cuts = max_cuts
        self.name = f"squish{max_cuts}"

    @shaped("_->(f,):float64")
    def extract(self, clip: Clip) -> np.ndarray:
        pat = squish(clip)
        m = self.max_cuts
        topo = np.zeros((m, m), dtype=np.float64)
        rows = min(len(pat.dy), m)
        cols = min(len(pat.dx), m)
        full = pat.matrix()
        topo[:rows, :cols] = full[:rows, :cols]
        dx = np.zeros(m)
        dy = np.zeros(m)
        dx[:cols] = np.asarray(pat.dx[:cols], dtype=np.float64) / clip.size
        dy[:rows] = np.asarray(pat.dy[:rows], dtype=np.float64) / clip.size
        return np.concatenate([topo.ravel(), dx, dy])

    @property
    def feature_shape(self) -> tuple:
        return (self.max_cuts * self.max_cuts + 2 * self.max_cuts,)

"""Density-grid features.

The classic shallow-learning layout feature: the clip is divided into a
``grid x grid`` array of tiles and each tile reports the fraction of its
area covered by metal.  Cheap, translation-sensitive at tile granularity,
and sufficient for boosting/SVM baselines.
"""

from __future__ import annotations

import numpy as np

from ..geometry.layout import Clip
from ..geometry.rasterize import rasterize_clip
from ..contracts import shaped
from .base import FeatureExtractor


class DensityGrid(FeatureExtractor):
    """``grid x grid`` coverage fractions, flattened to a vector."""

    def __init__(self, grid: int = 12, pixel_nm: int = 8) -> None:
        if grid <= 0:
            raise ValueError("grid must be positive")
        self.grid = grid
        self.pixel_nm = pixel_nm
        self.name = f"density{grid}"

    def extract(self, clip: Clip) -> np.ndarray:
        raster = rasterize_clip(clip, self.pixel_nm, antialias=True)
        return self.extract_raster(raster)

    @shaped("(h,w)->(f,):float64")
    def extract_raster(self, raster: np.ndarray) -> np.ndarray:
        return block_reduce_mean(raster, self.grid).ravel()

    @shaped("(n,h,w)->(n,f):float64")
    def extract_batch(self, rasters: np.ndarray) -> np.ndarray:
        """Pool all rasters at once: one numpy reduction per tile."""
        rasters = np.asarray(rasters)
        if len(rasters) == 0:
            return np.zeros((0, self.grid * self.grid), dtype=np.float64)
        pooled = block_reduce_mean_batch(rasters, self.grid)
        return pooled.reshape(len(rasters), -1)

    @property
    def feature_shape(self) -> tuple:
        return (self.grid * self.grid,)


def block_reduce_mean(raster: np.ndarray, grid: int) -> np.ndarray:
    """Average-pool a raster into a ``grid x grid`` array.

    The raster side need not divide evenly: tile boundaries are distributed
    as evenly as integer edges allow (like adaptive average pooling).
    """
    h, w = raster.shape
    if grid > min(h, w):
        raise ValueError(f"grid {grid} exceeds raster {raster.shape}")
    rows = np.linspace(0, h, grid + 1).astype(int)
    cols = np.linspace(0, w, grid + 1).astype(int)
    out = np.empty((grid, grid), dtype=np.float64)
    for i in range(grid):
        for j in range(grid):
            block = raster[rows[i] : rows[i + 1], cols[j] : cols[j + 1]]
            out[i, j] = block.mean()
    return out


def block_reduce_mean_batch(rasters: np.ndarray, grid: int) -> np.ndarray:
    """Average-pool a ``(n, H, W)`` stack into ``(n, grid, grid)``.

    The per-tile means are vectorized over the batch axis, so the python
    loop runs ``grid^2`` times total rather than once per raster — the
    batched counterpart of :func:`block_reduce_mean`.
    """
    n, h, w = rasters.shape
    if grid > min(h, w):
        raise ValueError(f"grid {grid} exceeds raster {rasters.shape[1:]}")
    rows = np.linspace(0, h, grid + 1).astype(int)
    cols = np.linspace(0, w, grid + 1).astype(int)
    out = np.empty((n, grid, grid), dtype=np.float64)
    for i in range(grid):
        for j in range(grid):
            tile = rasters[:, rows[i] : rows[i + 1], cols[j] : cols[j + 1]]
            out[:, i, j] = tile.mean(axis=(1, 2))
    return out

"""Density-grid features.

The classic shallow-learning layout feature: the clip is divided into a
``grid x grid`` array of tiles and each tile reports the fraction of its
area covered by metal.  Cheap, translation-sensitive at tile granularity,
and sufficient for boosting/SVM baselines.
"""

from __future__ import annotations

import numpy as np

from ..geometry.layout import Clip
from ..geometry.rasterize import rasterize_clip
from .base import FeatureExtractor


class DensityGrid(FeatureExtractor):
    """``grid x grid`` coverage fractions, flattened to a vector."""

    def __init__(self, grid: int = 12, pixel_nm: int = 8) -> None:
        if grid <= 0:
            raise ValueError("grid must be positive")
        self.grid = grid
        self.pixel_nm = pixel_nm
        self.name = f"density{grid}"

    def extract(self, clip: Clip) -> np.ndarray:
        raster = rasterize_clip(clip, self.pixel_nm, antialias=True)
        return block_reduce_mean(raster, self.grid).ravel()

    @property
    def feature_shape(self) -> tuple:
        return (self.grid * self.grid,)


def block_reduce_mean(raster: np.ndarray, grid: int) -> np.ndarray:
    """Average-pool a raster into a ``grid x grid`` array.

    The raster side need not divide evenly: tile boundaries are distributed
    as evenly as integer edges allow (like adaptive average pooling).
    """
    h, w = raster.shape
    if grid > min(h, w):
        raise ValueError(f"grid {grid} exceeds raster {raster.shape}")
    rows = np.linspace(0, h, grid + 1).astype(int)
    cols = np.linspace(0, w, grid + 1).astype(int)
    out = np.empty((grid, grid), dtype=np.float64)
    for i in range(grid):
        for j in range(grid):
            block = raster[rows[i] : rows[i + 1], cols[j] : cols[j + 1]]
            out[i, j] = block.mean()
    return out

"""Feature extraction interfaces.

A ``FeatureExtractor`` maps a :class:`~repro.geometry.layout.Clip` to a
numpy array — a flat vector for the shallow learners, or a
``(C, H, W)`` tensor for the CNNs.  Extractors are stateless and
deterministic; ``CachingExtractor`` memoizes per-clip results (clips are
frozen/hashable) so repeated evaluation passes don't recompute.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Sequence

import numpy as np

from ..geometry.layout import Clip


class FeatureExtractor(ABC):
    """Maps clips to fixed-shape numpy feature arrays."""

    #: human-readable identifier used in tables and registries
    name: str = "base"

    @abstractmethod
    def extract(self, clip: Clip) -> np.ndarray:
        """Feature array for one clip (shape fixed per extractor)."""

    def extract_many(self, clips: Sequence[Clip]) -> np.ndarray:
        """Stacked features, shape ``(n,) + feature_shape``."""
        if not clips:
            raise ValueError("extract_many() needs at least one clip")
        return np.stack([self.extract(clip) for clip in clips])

    @property
    def feature_shape(self) -> tuple:
        """Shape of one clip's features (probed lazily via a dummy call)."""
        raise NotImplementedError


class CachingExtractor(FeatureExtractor):
    """Memoizing wrapper around another extractor."""

    def __init__(self, inner: FeatureExtractor) -> None:
        self.inner = inner
        self.name = f"cached({inner.name})"
        self._cache: Dict[Clip, np.ndarray] = {}

    def extract(self, clip: Clip) -> np.ndarray:
        cached = self._cache.get(clip)
        if cached is None:
            cached = self.inner.extract(clip)
            self._cache[clip] = cached
        return cached

    def cache_size(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()


class Standardizer:
    """Per-dimension (x - mean) / std scaling fitted on training features."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "Standardizer":
        self.mean_ = features.mean(axis=0)
        std = features.std(axis=0)
        self.std_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("Standardizer not fitted")
        return (features - self.mean_) / self.std_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)

"""Feature extraction interfaces.

A ``FeatureExtractor`` maps a :class:`~repro.geometry.layout.Clip` to a
numpy array — a flat vector for the shallow learners, or a
``(C, H, W)`` tensor for the CNNs.  Extractors are stateless and
deterministic; ``CachingExtractor`` memoizes per-clip results (clips are
frozen/hashable) behind a bounded LRU so repeated evaluation passes don't
recompute and long scans can't grow memory without limit.

Extractors that only look at the rasterized window (density grids, DCT
tensors, HOG) additionally implement ``extract_raster`` — feature array
from a pre-rendered ``(H, W)`` raster — which unlocks the batched
``extract_batch`` API the raster-plane scan path feeds with window slices
of a shared :class:`~repro.geometry.rasterize.RasterPlane`.  Extractors
that need the clip geometry itself (squish, CCAS) simply don't override
it and report ``supports_rasters == False``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Sequence

import numpy as np

from ..contracts import shaped
from ..counters import assert_counters_consistent
from ..geometry.layout import Clip


class FeatureExtractor(ABC):
    """Maps clips to fixed-shape numpy feature arrays."""

    #: human-readable identifier used in tables and registries
    name: str = "base"

    @abstractmethod
    def extract(self, clip: Clip) -> np.ndarray:
        """Feature array for one clip (shape fixed per extractor)."""

    @shaped("[n]->(n,...)")
    def extract_many(self, clips: Sequence[Clip]) -> np.ndarray:
        """Stacked features, shape ``(n,) + feature_shape``.

        An empty clip list returns a correctly-shaped ``(0, ...)`` array
        (falling back to ``(0,)`` when the feature shape needs a clip to
        probe), so batch callers never need an emptiness guard.
        """
        if not clips:
            return np.zeros((0,) + self._empty_feature_shape(), dtype=np.float64)
        return np.stack([self.extract(clip) for clip in clips])

    def _empty_feature_shape(self) -> tuple:
        """Per-item shape for empty batches; ``()`` when unknowable."""
        try:
            return tuple(self.feature_shape)
        except NotImplementedError:
            return ()

    @property
    def feature_shape(self) -> tuple:
        """Shape of one clip's features (probed lazily via a dummy call)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # raster-plane scan support
    # ------------------------------------------------------------------
    def extract_raster(self, raster: np.ndarray) -> np.ndarray:
        """Feature array from a pre-rendered ``(H, W)`` window raster.

        Raster-capable extractors override this with the same function
        their ``extract`` applies after rasterizing, so a window slice of
        a shared raster plane yields the same features as the clip path.
        """
        raise NotImplementedError(
            f"{self.name} features need clip geometry, not just a raster"
        )

    @property
    def supports_rasters(self) -> bool:
        """True when this extractor can work from pre-rendered rasters."""
        return type(self).extract_raster is not FeatureExtractor.extract_raster

    @shaped("(n,*,*)->(n,...)")
    def extract_batch(self, rasters: np.ndarray) -> np.ndarray:
        """Stacked features for a ``(n, H, W)`` raster stack.

        Vectorized overrides (DCT, density) transform the whole stack in
        a few numpy/scipy calls; this generic fallback loops
        ``extract_raster`` and exists so every raster-capable extractor
        has the batch API.
        """
        rasters = np.asarray(rasters)
        if len(rasters) == 0:
            return np.zeros((0,) + self._empty_feature_shape(), dtype=np.float64)
        return np.stack([self.extract_raster(r) for r in rasters])


class CachingExtractor(FeatureExtractor):
    """Bounded LRU memoizing wrapper around another extractor.

    Mirrors :class:`~repro.runtime.cache.ScoreCache`'s eviction policy
    (least-recently-used beyond ``max_entries``) and exposes hit/miss/
    eviction counters so long scans can be profiled and can't grow
    memory without limit.
    """

    def __init__(self, inner: FeatureExtractor, max_entries: int = 50_000) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.inner = inner
        self.max_entries = max_entries
        self.name = f"cached({inner.name})"
        self._cache: "OrderedDict[Clip, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        # ledger counters: inserts - evictions - removed == cache_size()
        # (see repro.counters.assert_counters_consistent)
        self.inserts = 0
        self.evictions = 0
        self.removed = 0

    def extract(self, clip: Clip) -> np.ndarray:
        try:
            cached = self._cache[clip]
        except KeyError:
            self.misses += 1
            cached = self.inner.extract(clip)
            self._cache[clip] = cached
            self.inserts += 1
            while len(self._cache) > self.max_entries:
                self._cache.popitem(last=False)
                self.evictions += 1
            return cached
        self._cache.move_to_end(clip)
        self.hits += 1
        return cached

    # raster calls are already batch-shaped; pass them through uncached
    def extract_raster(self, raster: np.ndarray) -> np.ndarray:
        return self.inner.extract_raster(raster)

    @property
    def supports_rasters(self) -> bool:
        return self.inner.supports_rasters

    def extract_batch(self, rasters: np.ndarray) -> np.ndarray:
        return self.inner.extract_batch(rasters)

    @property
    def feature_shape(self) -> tuple:
        return self.inner.feature_shape

    @property
    def hit_ratio(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def cache_size(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self.removed += len(self._cache)
        self._cache.clear()
        assert_counters_consistent(self, label=self.name)

    def reset_counters(self) -> None:
        """Zero the activity counters without touching the contents.

        ``inserts`` re-bases to the current size (not zero): the entries
        still in the map have to be accounted for or the ledger
        invariant would report drift on the very next check.
        """
        self.hits = self.misses = self.evictions = self.removed = 0
        self.inserts = len(self._cache)
        assert_counters_consistent(self, label=self.name)


class Standardizer:
    """Per-dimension (x - mean) / std scaling fitted on training features."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "Standardizer":
        self.mean_ = features.mean(axis=0)
        std = features.std(axis=0)
        self.std_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("Standardizer not fitted")
        return (features - self.mean_) / self.std_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)

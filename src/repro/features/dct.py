"""DCT feature tensor.

The deep detector's input representation (Yang et al.'s *feature tensor*):
the clip raster is tiled into ``block x block`` pixel blocks, each block is
transformed with a 2-D DCT, and only the ``k x k`` lowest-frequency
coefficients are kept.  The result is a ``(k*k, H/B, W/B)`` tensor — a
lossy but spatially faithful compression that shrinks CNN input ~10-50x
while keeping the low-frequency content that drives lithography.

``inverse_feature_tensor`` reconstructs the (low-passed) raster, used by
tests to verify the encoding is the DCT it claims to be.
"""

from __future__ import annotations

import numpy as np
from scipy import fft as spfft

from ..geometry.layout import Clip
from ..geometry.rasterize import rasterize_clip
from ..contracts import shaped
from .base import FeatureExtractor


class DCTFeatureTensor(FeatureExtractor):
    """Block-DCT low-frequency tensor of shape ``(keep^2, H/B, W/B)``."""

    def __init__(
        self, block: int = 8, keep: int = 4, pixel_nm: int = 8, flatten: bool = False
    ) -> None:
        if block <= 0 or not 0 < keep <= block:
            raise ValueError("need 0 < keep <= block")
        self.block = block
        self.keep = keep
        self.pixel_nm = pixel_nm
        self.flatten = flatten
        self.name = f"dct-b{block}k{keep}" + ("-flat" if flatten else "")

    def extract(self, clip: Clip) -> np.ndarray:
        raster = rasterize_clip(clip, self.pixel_nm, antialias=True)
        return self.extract_raster(raster)

    @shaped("(h,w)->*:float")
    def extract_raster(self, raster: np.ndarray) -> np.ndarray:
        tensor = feature_tensor(raster, self.block, self.keep)
        return tensor.ravel() if self.flatten else tensor

    @shaped("(n,h,w)->(n,...):float")
    def extract_batch(self, rasters: np.ndarray) -> np.ndarray:
        """One ``spfft.dctn`` over the whole stack instead of n calls."""
        tensors = feature_tensor_batch(np.asarray(rasters), self.block, self.keep)
        if not self.flatten:
            return tensors
        # explicit width: reshape(n, -1) cannot infer -1 when n == 0
        width = int(np.prod(tensors.shape[1:]))
        return tensors.reshape(len(tensors), width)

    @property
    def feature_shape(self) -> tuple:
        raise NotImplementedError("depends on clip size; probe with extract()")


def feature_tensor(raster: np.ndarray, block: int, keep: int) -> np.ndarray:
    """Encode a raster into the ``(keep^2, H/B, W/B)`` DCT tensor."""
    h, w = raster.shape
    if h % block or w % block:
        raise ValueError(f"raster {raster.shape} not divisible by block {block}")
    gh, gw = h // block, w // block
    # -> (gh, gw, block, block) view of blocks
    blocks = raster.reshape(gh, block, gw, block).transpose(0, 2, 1, 3)
    coeffs = spfft.dctn(blocks, axes=(2, 3), norm="ortho")
    kept = coeffs[:, :, :keep, :keep].reshape(gh, gw, keep * keep)
    return np.ascontiguousarray(kept.transpose(2, 0, 1))


def feature_tensor_batch(
    rasters: np.ndarray, block: int, keep: int
) -> np.ndarray:
    """Encode a ``(n, H, W)`` raster stack into ``(n, keep^2, H/B, W/B)``.

    Equivalent to stacking :func:`feature_tensor` per raster, but the DCT
    runs as a single ``spfft.dctn`` over the whole
    ``(n, gh, block, gw, block)`` block view — the batched hot path of
    the raster-plane scan.  The intra-block axes are transformed in
    place (axes 2 and 4) so only the kept ``keep x keep`` corner is ever
    transposed/copied.
    """
    if rasters.ndim != 3:
        raise ValueError(f"expected (n, H, W) raster stack, got {rasters.shape}")
    n, h, w = rasters.shape
    if h % block or w % block:
        raise ValueError(
            f"rasters {rasters.shape[1:]} not divisible by block {block}"
        )
    gh, gw = h // block, w // block
    if n == 0:
        return np.zeros((0, keep * keep, gh, gw), dtype=np.float64)
    blocks = rasters.reshape(n, gh, block, gw, block)
    coeffs = spfft.dctn(blocks, axes=(2, 4), norm="ortho")
    kept = coeffs[:, :, :keep, :, :keep]  # (n, gh, keep, gw, keep)
    return np.ascontiguousarray(
        kept.transpose(0, 2, 4, 1, 3).reshape(n, keep * keep, gh, gw)
    )


def inverse_feature_tensor(
    tensor: np.ndarray, block: int, keep: int
) -> np.ndarray:
    """Decode back to a raster (exact when ``keep == block``)."""
    c, gh, gw = tensor.shape
    if c != keep * keep:
        raise ValueError(f"channel count {c} != keep^2 = {keep * keep}")
    coeffs = np.zeros((gh, gw, block, block), dtype=np.float64)
    coeffs[:, :, :keep, :keep] = tensor.transpose(1, 2, 0).reshape(
        gh, gw, keep, keep
    )
    blocks = spfft.idctn(coeffs, axes=(2, 3), norm="ortho")
    return blocks.transpose(0, 2, 1, 3).reshape(gh * block, gw * block)

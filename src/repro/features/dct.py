"""DCT feature tensor.

The deep detector's input representation (Yang et al.'s *feature tensor*):
the clip raster is tiled into ``block x block`` pixel blocks, each block is
transformed with a 2-D DCT, and only the ``k x k`` lowest-frequency
coefficients are kept.  The result is a ``(k*k, H/B, W/B)`` tensor — a
lossy but spatially faithful compression that shrinks CNN input ~10-50x
while keeping the low-frequency content that drives lithography.

``inverse_feature_tensor`` reconstructs the (low-passed) raster, used by
tests to verify the encoding is the DCT it claims to be.
"""

from __future__ import annotations

import numpy as np
from scipy import fft as spfft

from ..geometry.layout import Clip
from ..geometry.rasterize import rasterize_clip
from ..contracts import shaped
from .base import FeatureExtractor


class DCTFeatureTensor(FeatureExtractor):
    """Block-DCT low-frequency tensor of shape ``(keep^2, H/B, W/B)``."""

    def __init__(
        self, block: int = 8, keep: int = 4, pixel_nm: int = 8, flatten: bool = False
    ) -> None:
        if block <= 0 or not 0 < keep <= block:
            raise ValueError("need 0 < keep <= block")
        self.block = block
        self.keep = keep
        self.pixel_nm = pixel_nm
        self.flatten = flatten
        self.name = f"dct-b{block}k{keep}" + ("-flat" if flatten else "")

    def extract(self, clip: Clip) -> np.ndarray:
        raster = rasterize_clip(clip, self.pixel_nm, antialias=True)
        return self.extract_raster(raster)

    @shaped("(h,w)->*:float")
    def extract_raster(self, raster: np.ndarray) -> np.ndarray:
        tensor = feature_tensor(raster, self.block, self.keep)
        return tensor.ravel() if self.flatten else tensor

    @shaped("(n,h,w)->(n,...):float")
    def extract_batch(self, rasters: np.ndarray) -> np.ndarray:
        """One ``spfft.dctn`` over the whole stack instead of n calls."""
        tensors = feature_tensor_batch(np.asarray(rasters), self.block, self.keep)
        if not self.flatten:
            return tensors
        # explicit width: reshape(n, -1) cannot infer -1 when n == 0
        width = int(np.prod(tensors.shape[1:]))
        return tensors.reshape(len(tensors), width)

    @property
    def feature_shape(self) -> tuple:
        raise NotImplementedError("depends on clip size; probe with extract()")


def feature_tensor(raster: np.ndarray, block: int, keep: int) -> np.ndarray:
    """Encode a raster into the ``(keep^2, H/B, W/B)`` DCT tensor."""
    h, w = raster.shape
    if h % block or w % block:
        raise ValueError(f"raster {raster.shape} not divisible by block {block}")
    gh, gw = h // block, w // block
    # -> (gh, gw, block, block) view of blocks
    blocks = raster.reshape(gh, block, gw, block).transpose(0, 2, 1, 3)
    coeffs = spfft.dctn(blocks, axes=(2, 3), norm="ortho")
    kept = coeffs[:, :, :keep, :keep].reshape(gh, gw, keep * keep)
    return np.ascontiguousarray(kept.transpose(2, 0, 1))


_DCT_MATS: dict = {}
_BATCH_BUFFERS: dict = {}


def _truncated_dct_matrix(block: int, keep: int) -> np.ndarray:
    """``(block, keep)`` matrix: right-multiply = ortho DCT-II, truncated.

    ``x @ M`` computes the first ``keep`` DCT-II coefficients of each
    length-``block`` row — identical to ``spfft.dct(x, norm="ortho")``
    restricted to ``[:keep]``, but as a GEMM, so a batch of tiny
    transforms becomes one matrix product instead of an FFT-plan call.
    """
    key = (block, keep)
    mat = _DCT_MATS.get(key)
    if mat is None:
        j = np.arange(block, dtype=np.float64)
        k = np.arange(keep, dtype=np.float64)[:, None]
        mat = np.cos(np.pi * (2.0 * j + 1.0) * k / (2.0 * block))
        mat[0] *= np.sqrt(1.0 / block)
        if keep > 1:
            mat[1:] *= np.sqrt(2.0 / block)
        mat = np.ascontiguousarray(mat.T)  # (block, keep)
        _DCT_MATS[key] = mat
    return mat


def feature_tensor_batch(
    rasters: np.ndarray, block: int, keep: int
) -> np.ndarray:
    """Encode a ``(n, H, W)`` raster stack into ``(n, keep^2, H/B, W/B)``.

    Equivalent to stacking :func:`feature_tensor` per raster, but the
    separable block DCT runs as two GEMMs against the cached truncated
    DCT matrix — only the ``keep`` coefficients that survive are ever
    computed, and the intermediates live in persistent per-shape buffers
    reused across raster batches (the batched hot path of the
    raster-plane scan allocates nothing per call at steady state).
    Matches :func:`feature_tensor`'s ``spfft.dctn`` to ~1e-15.
    """
    if rasters.ndim != 3:
        raise ValueError(f"expected (n, H, W) raster stack, got {rasters.shape}")
    n, h, w = rasters.shape
    if h % block or w % block:
        raise ValueError(
            f"rasters {rasters.shape[1:]} not divisible by block {block}"
        )
    gh, gw = h // block, w // block
    if n == 0:
        return np.zeros((0, keep * keep, gh, gw), dtype=np.float64)
    mat = _truncated_dct_matrix(block, keep)
    blocks = np.asarray(rasters, dtype=np.float64).reshape(
        n, gh, block, gw, block
    )

    def buf(tag, shape):
        key = (tag, shape)
        b = _BATCH_BUFFERS.get(key)
        if b is None:
            b = np.empty(shape, dtype=np.float64)
            _BATCH_BUFFERS[key] = b
        return b

    # contract the width axis, then the height axis, keeping only the
    # first `keep` coefficients of each: (n,gh,bh,gw,bw) -> (n,gh,bh,gw,kw)
    t1 = buf("t1", (n, gh, block, gw, keep))
    np.matmul(blocks, mat, out=t1)
    # -> (n, gh, gw, kw, bh) @ (bh, kh) -> (n, gh, gw, kw, kh)
    t2 = buf("t2", (n, gh, gw, keep, keep))
    np.matmul(t1.transpose(0, 1, 3, 4, 2), mat, out=t2)
    # channel order (kh, kw) matches the dctn corner's layout
    out = np.empty((n, keep * keep, gh, gw), dtype=np.float64)
    np.copyto(
        out.reshape(n, keep, keep, gh, gw), t2.transpose(0, 4, 3, 1, 2)
    )
    return out


def inverse_feature_tensor(
    tensor: np.ndarray, block: int, keep: int
) -> np.ndarray:
    """Decode back to a raster (exact when ``keep == block``)."""
    c, gh, gw = tensor.shape
    if c != keep * keep:
        raise ValueError(f"channel count {c} != keep^2 = {keep * keep}")
    coeffs = np.zeros((gh, gw, block, block), dtype=np.float64)
    coeffs[:, :, :keep, :keep] = tensor.transpose(1, 2, 0).reshape(
        gh, gw, keep, keep
    )
    blocks = spfft.idctn(coeffs, axes=(2, 3), norm="ortho")
    return blocks.transpose(0, 2, 1, 3).reshape(gh * block, gw * block)

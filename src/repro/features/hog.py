"""Histogram-of-oriented-gradients features.

A mid-era hand-crafted representation: edge orientation statistics per
cell.  On Manhattan layouts gradients concentrate at 0/90 degrees, so the
histogram mostly encodes *edge density and direction* per cell — cheap
context the density grid misses (it cannot tell a wire edge from a wire
interior).
"""

from __future__ import annotations

import numpy as np

from ..geometry.layout import Clip
from ..geometry.rasterize import rasterize_clip
from ..contracts import shaped
from .base import FeatureExtractor


def hog_features(
    raster: np.ndarray, cells: int = 6, n_bins: int = 4
) -> np.ndarray:
    """HOG over a raster: ``cells x cells`` cells, ``n_bins`` orientations.

    Gradients via central differences; each pixel votes its magnitude into
    the orientation bin (unsigned, [0, pi)).  Per-cell histograms are
    L2-normalized (dark cells stay zero).
    """
    if cells <= 0 or n_bins <= 0:
        raise ValueError("cells and n_bins must be positive")
    gy, gx = np.gradient(raster)
    magnitude = np.hypot(gx, gy)
    angle = np.mod(np.arctan2(gy, gx), np.pi)  # unsigned orientation
    bins = np.minimum((angle / np.pi * n_bins).astype(int), n_bins - 1)

    h, w = raster.shape
    rows = np.linspace(0, h, cells + 1).astype(int)
    cols = np.linspace(0, w, cells + 1).astype(int)
    out = np.zeros((cells, cells, n_bins))
    for i in range(cells):
        for j in range(cells):
            cell_mag = magnitude[rows[i] : rows[i + 1], cols[j] : cols[j + 1]]
            cell_bin = bins[rows[i] : rows[i + 1], cols[j] : cols[j + 1]]
            for b in range(n_bins):
                out[i, j, b] = cell_mag[cell_bin == b].sum()
            norm = np.linalg.norm(out[i, j])
            if norm > 1e-12:
                out[i, j] /= norm
    return out.ravel()


class HOGFeatures(FeatureExtractor):
    """HOG feature vector over the clip raster."""

    def __init__(self, cells: int = 6, n_bins: int = 4, pixel_nm: int = 8) -> None:
        if cells <= 0 or n_bins <= 0:
            raise ValueError("cells and n_bins must be positive")
        self.cells = cells
        self.n_bins = n_bins
        self.pixel_nm = pixel_nm
        self.name = f"hog{cells}x{n_bins}"

    def extract(self, clip: Clip) -> np.ndarray:
        raster = rasterize_clip(clip, self.pixel_nm, antialias=True)
        return self.extract_raster(raster)

    @shaped("(h,w)->(f,):float64")
    def extract_raster(self, raster: np.ndarray) -> np.ndarray:
        return hog_features(raster, self.cells, self.n_bins)

    @property
    def feature_shape(self) -> tuple:
        return (self.cells * self.cells * self.n_bins,)

"""Dataset vectorization helpers.

Bridges :class:`~repro.data.dataset.ClipDataset` and the detectors: extract
features for every clip, optionally standardize using train-set statistics,
and return plain numpy arrays the learners consume.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..data.dataset import ClipDataset
from .base import FeatureExtractor, Standardizer


def vectorize(
    extractor: FeatureExtractor, dataset: ClipDataset
) -> Tuple[np.ndarray, np.ndarray]:
    """(features, labels) arrays for a labeled dataset."""
    features = extractor.extract_many(dataset.clips)
    return features, dataset.labels.copy()


def vectorize_standardized(
    extractor: FeatureExtractor,
    train: ClipDataset,
    test: ClipDataset,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, Standardizer]:
    """Vectorize train and test with train-fitted standardization.

    Returns ``(x_train, y_train, x_test, y_test, scaler)``.  Only valid for
    flat (vector) extractors.
    """
    x_train, y_train = vectorize(extractor, train)
    x_test, y_test = vectorize(extractor, test)
    if x_train.ndim != 2:
        raise ValueError("standardization expects flat feature vectors")
    scaler = Standardizer()
    x_train = scaler.fit_transform(x_train)
    x_test = scaler.transform(x_test)
    return x_train, y_train, x_test, y_test, scaler


class ConcatFeatures(FeatureExtractor):
    """Concatenation of several flat extractors."""

    def __init__(self, extractors: Sequence[FeatureExtractor]) -> None:
        if not extractors:
            raise ValueError("need at least one extractor")
        self.extractors = list(extractors)
        self.name = "+".join(e.name for e in self.extractors)

    def extract(self, clip) -> np.ndarray:
        parts = [np.ravel(e.extract(clip)) for e in self.extractors]
        return np.concatenate(parts)

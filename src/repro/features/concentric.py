"""Concentric-circle area sampling (CCAS).

The feature representation behind several classic SVM hotspot detectors:
metal coverage is sampled along concentric circles centered on the clip
core, capturing "how much material at what distance and direction" — a
rough polar transform of the optical influence region.  Because the
outermost circles see far-away context and the innermost see the pattern
under test, the vector orders context by optical relevance.

Two variants:

* ``rings`` — mean coverage per ring (rotation-invariant, compact),
* ``samples`` — raw per-angle samples (keeps direction, larger).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from ..geometry.layout import Clip
from ..geometry.rasterize import rasterize_clip
from ..contracts import shaped
from .base import FeatureExtractor


class ConcentricSampling(FeatureExtractor):
    """CCAS features over ``n_rings`` circles with ``n_angles`` samples."""

    def __init__(
        self,
        n_rings: int = 12,
        n_angles: int = 24,
        pixel_nm: int = 8,
        mode: str = "samples",
    ) -> None:
        if mode not in ("samples", "rings"):
            raise ValueError("mode must be 'samples' or 'rings'")
        if n_rings <= 0 or n_angles <= 0:
            raise ValueError("n_rings/n_angles must be positive")
        self.n_rings = n_rings
        self.n_angles = n_angles
        self.pixel_nm = pixel_nm
        self.mode = mode
        self.name = f"ccas-{mode}{n_rings}x{n_angles}"

    @shaped("_->(f,):float64")
    def extract(self, clip: Clip) -> np.ndarray:
        raster = rasterize_clip(clip, self.pixel_nm, antialias=True)
        h, w = raster.shape
        cy, cx = (h - 1) / 2.0, (w - 1) / 2.0
        max_r = min(h, w) / 2.0 - 1.0
        radii = np.linspace(max_r / self.n_rings, max_r, self.n_rings)
        angles = np.linspace(0.0, 2 * np.pi, self.n_angles, endpoint=False)
        rows = cy + radii[:, None] * np.sin(angles)[None, :]
        cols = cx + radii[:, None] * np.cos(angles)[None, :]
        samples = ndimage.map_coordinates(
            raster, [rows.ravel(), cols.ravel()], order=1, mode="nearest"
        ).reshape(self.n_rings, self.n_angles)
        if self.mode == "rings":
            return samples.mean(axis=1)
        return samples.ravel()

    @property
    def feature_shape(self) -> tuple:
        if self.mode == "rings":
            return (self.n_rings,)
        return (self.n_rings * self.n_angles,)

"""L2-regularized logistic regression (full-batch gradient descent).

The simplest learned baseline, and the calibration head other detectors
borrow.  Supports class weighting for imbalanced data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


@dataclass
class LogisticConfig:
    l2: float = 1e-3
    lr: float = 0.5
    max_iter: int = 500
    tol: float = 1e-6
    balanced: bool = True

    def __post_init__(self) -> None:
        if self.l2 < 0 or self.lr <= 0 or self.max_iter < 1:
            raise ValueError("invalid logistic config")


class LogisticRegression:
    """Binary logistic regression on {0, 1} labels."""

    def __init__(self, config: Optional[LogisticConfig] = None) -> None:
        self.config = config or LogisticConfig()
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0
        self.n_iter_: int = 0

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> "LogisticRegression":
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.float64)
        n, d = x.shape
        sw = np.ones(n)
        if self.config.balanced:
            n_pos = y.sum()
            n_neg = n - n_pos
            if n_pos > 0 and n_neg > 0:
                sw = np.where(y == 1, n / (2 * n_pos), n / (2 * n_neg))
        sw = sw / sw.sum()
        w = np.zeros(d)
        b = 0.0
        cfg = self.config
        # keep the regularization step contractive: lr * l2 must stay < 1
        lr = min(cfg.lr, 0.5 / cfg.l2) if cfg.l2 > 0 else cfg.lr
        prev_loss = np.inf
        for it in range(cfg.max_iter):
            p = _sigmoid(x @ w + b)
            grad_w = x.T @ (sw * (p - y)) + cfg.l2 * w
            grad_b = float((sw * (p - y)).sum())
            w -= lr * grad_w
            b -= lr * grad_b
            eps = 1e-12
            loss = float(
                -(sw * (y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps))).sum()
                + 0.5 * cfg.l2 * (w @ w)
            )
            self.n_iter_ = it + 1
            if abs(prev_loss - loss) < cfg.tol:
                break
            prev_loss = loss
        self.weights, self.bias = w, b
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("LogisticRegression not fitted")
        x = np.asarray(features, dtype=np.float64)
        if x.ndim == 1:
            return x @ self.weights + self.bias
        # einsum instead of BLAS gemv: each row's dot is reduced
        # independently, so a window's score does not depend on which
        # batch it was scored in (gemv tail kernels break that, which
        # would make sharded scans differ from monolithic ones at ULP).
        return np.einsum("ij,j->i", x, self.weights) + self.bias

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return _sigmoid(self.decision_function(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(np.int64)

"""Gaussian naive Bayes.

Fast, no hyper-parameters, surprisingly competitive on density features —
the sanity-check baseline in the shallow comparison table.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class GaussianNB:
    """Per-class independent Gaussians over feature dimensions."""

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = var_smoothing
        self.means_: Optional[np.ndarray] = None  # (2, d)
        self.vars_: Optional[np.ndarray] = None  # (2, d)
        self.log_priors_: Optional[np.ndarray] = None  # (2,)

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> "GaussianNB":
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.int64)
        if len(np.unique(y)) < 2:
            raise ValueError("GaussianNB needs both classes")
        means, variances, priors = [], [], []
        global_var = x.var(axis=0).max()
        eps = self.var_smoothing * max(global_var, 1e-12)
        for cls in (0, 1):
            sub = x[y == cls]
            means.append(sub.mean(axis=0))
            variances.append(sub.var(axis=0) + eps)
            priors.append(len(sub) / len(x))
        self.means_ = np.stack(means)
        self.vars_ = np.stack(variances)
        self.log_priors_ = np.log(np.asarray(priors))
        return self

    def _joint_log_likelihood(self, features: np.ndarray) -> np.ndarray:
        if self.means_ is None:
            raise RuntimeError("GaussianNB not fitted")
        x = np.asarray(features, dtype=np.float64)
        out = np.empty((len(x), 2))
        for cls in (0, 1):
            diff = x - self.means_[cls]
            out[:, cls] = (
                self.log_priors_[cls]
                - 0.5 * np.log(2 * np.pi * self.vars_[cls]).sum()
                - 0.5 * (diff**2 / self.vars_[cls]).sum(axis=1)
            )
        return out

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """P(hotspot | x), numerically stable log-sum-exp."""
        jll = self._joint_log_likelihood(features)
        m = jll.max(axis=1, keepdims=True)
        probs = np.exp(jll - m)
        probs /= probs.sum(axis=1, keepdims=True)
        return probs[:, 1]

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(np.int64)

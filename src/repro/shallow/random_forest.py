"""Random forest: bagged CART trees with feature subsampling.

A later-shallow-era baseline (bridging boosting and deep learning in the
survey's timeline): bootstrap-resampled trees, each split restricted to a
random feature subset; scores are averaged leaf probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .dtree import DecisionTree


@dataclass
class RandomForestConfig:
    n_trees: int = 30
    max_depth: int = 10
    min_samples_leaf: int = 2
    feature_fraction: float = 0.5  # features visible to each tree

    def __post_init__(self) -> None:
        if self.n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        if not 0.0 < self.feature_fraction <= 1.0:
            raise ValueError("feature_fraction must be in (0, 1]")


class RandomForest:
    """Bagged binary classification forest."""

    def __init__(self, config: Optional[RandomForestConfig] = None) -> None:
        self.config = config or RandomForestConfig()
        self.trees: List[DecisionTree] = []
        self.feature_subsets: List[np.ndarray] = []

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> "RandomForest":
        rng = rng or np.random.default_rng(0)
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.int64)
        n, d = x.shape
        k = max(1, int(round(self.config.feature_fraction * d)))
        self.trees, self.feature_subsets = [], []
        for _ in range(self.config.n_trees):
            rows = rng.integers(0, n, size=n)  # bootstrap sample
            cols = rng.choice(d, size=k, replace=False)
            cols.sort()
            tree = DecisionTree(
                max_depth=self.config.max_depth,
                min_samples_leaf=self.config.min_samples_leaf,
            )
            tree.fit(x[np.ix_(rows, cols)], y[rows])
            self.trees.append(tree)
            self.feature_subsets.append(cols)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if not self.trees:
            raise RuntimeError("RandomForest not fitted")
        x = np.asarray(features, dtype=np.float64)
        total = np.zeros(len(x))
        for tree, cols in zip(self.trees, self.feature_subsets):
            total += tree.predict_proba(x[:, cols])
        return total / len(self.trees)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(np.int64)

    @property
    def n_trees_fitted(self) -> int:
        return len(self.trees)

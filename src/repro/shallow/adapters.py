"""Adapter wiring (feature extractor, learner) pairs into the Detector API.

Any learner exposing ``fit(X, y)`` / ``predict_proba(X)`` (all of
:mod:`repro.shallow`'s learners do) becomes a full clip detector with
feature extraction, train-set standardization, and optional minority
up-sampling folded in.
"""

from __future__ import annotations

import time
from typing import Optional, Protocol, Sequence

import numpy as np

from ..contracts import shaped
from ..core.detector import Detector, FitReport
from ..data.dataset import ClipDataset
from ..data.imbalance import upsample_minority
from ..features.base import FeatureExtractor, Standardizer
from ..geometry.layout import Clip


class VectorLearner(Protocol):
    """What the adapter needs from a learner."""

    def fit(self, features, labels, rng=None): ...  # noqa: E704

    def predict_proba(self, features) -> np.ndarray: ...  # noqa: E704


class FeatureDetector(Detector):
    """extractor + standardizer + learner => Detector."""

    def __init__(
        self,
        name: str,
        extractor: FeatureExtractor,
        learner: VectorLearner,
        standardize: bool = True,
        upsample_ratio: Optional[float] = None,
        mirror_upsample: bool = True,
        threshold: float = 0.5,
        calibrate: Optional[str] = "fa",
        fa_cap: float = 0.10,
    ) -> None:
        if calibrate not in (None, "f1", "fa"):
            raise ValueError("calibrate must be None, 'f1' or 'fa'")
        self.name = name
        self.extractor = extractor
        self.learner = learner
        self.standardize = standardize
        self.upsample_ratio = upsample_ratio
        self.mirror_upsample = mirror_upsample
        self.threshold = threshold
        self.calibrate = calibrate
        self.fa_cap = fa_cap
        self._scaler: Optional[Standardizer] = None

    def fit(
        self, train: ClipDataset, rng: Optional[np.random.Generator] = None
    ) -> FitReport:
        rng = rng or np.random.default_rng(0)
        t0 = time.perf_counter()
        calibration = None
        if self.calibrate is not None and train.n_hotspots >= 4:
            # hold out a stratified slice BEFORE any up-sampling: thresholds
            # picked on (possibly overfitted) training scores are too tight
            train, calibration = train.split(0.25, rng)
            if calibration.n_hotspots == 0 or train.n_hotspots == 0:
                train = train.extend(calibration.clips, calibration.labels)
                calibration = None
        if self.upsample_ratio is not None and train.n_hotspots > 0:
            train = upsample_minority(
                train, rng, target_ratio=self.upsample_ratio, mirror=self.mirror_upsample
            )
        x = self.extractor.extract_many(train.clips)
        if x.ndim != 2:
            x = x.reshape(len(x), -1)
        if self.standardize:
            self._scaler = Standardizer()
            x = self._scaler.fit_transform(x)
        self.learner.fit(x, train.labels, rng=rng)
        if calibration is not None:
            from ..core.threshold import pick_threshold

            scores = self.predict_proba(calibration.clips)
            self.threshold = pick_threshold(
                self.calibrate, calibration.labels, scores, self.fa_cap
            )
        return FitReport(
            train_seconds=time.perf_counter() - t0, n_train=len(train)
        )

    @shaped("[n]->(n,):float64")
    def predict_proba(self, clips: Sequence[Clip]) -> np.ndarray:
        if len(clips) == 0:
            return np.empty(0, dtype=np.float64)
        x = self.extractor.extract_many(clips)
        if x.ndim != 2:
            x = x.reshape(len(x), -1)
        return self._score_features(x)

    @shaped("(n,h,w)->(n,):float64")
    def predict_proba_rasters(self, rasters: np.ndarray) -> np.ndarray:
        """Score pre-rendered window rasters (the raster-plane fast path).

        Available whenever the wrapped extractor can consume rasters
        directly; the batched ``extract_batch`` replaces per-clip
        rasterize + extract, and the scaler/learner stages are identical
        to :meth:`predict_proba`.
        """
        if not self.extractor.supports_rasters:
            raise NotImplementedError(
                f"extractor {self.extractor.name!r} has no raster support"
            )
        rasters = np.asarray(rasters, dtype=np.float64)
        if len(rasters) == 0:
            return np.empty(0, dtype=np.float64)
        x = self.extractor.extract_batch(rasters)
        if x.ndim != 2:
            x = x.reshape(len(x), -1)
        return self._score_features(x)

    def _score_features(self, x: np.ndarray) -> np.ndarray:
        if self._scaler is not None:
            x = self._scaler.transform(x)
        return np.asarray(self.learner.predict_proba(x), dtype=np.float64)

    @property
    def raster_pixel_nm(self) -> Optional[int]:
        """Pixel pitch the raster path must use, or None if unsupported."""
        if not self.extractor.supports_rasters:
            return None
        pixel = getattr(self.extractor, "pixel_nm", None)
        return int(pixel) if pixel else None

"""k-nearest-neighbor classifier on a kd-tree.

The lazy-learning baseline: no training beyond indexing, prediction cost
grows with the library — the same trade-off pattern matching makes, but in
feature space instead of exact-pattern space.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.spatial import cKDTree


class KNN:
    """Binary kNN with optional distance weighting."""

    def __init__(self, k: int = 5, weighted: bool = True) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.weighted = weighted
        self._tree: Optional[cKDTree] = None
        self._labels: Optional[np.ndarray] = None

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> "KNN":
        x = np.asarray(features, dtype=np.float64)
        self._tree = cKDTree(x)
        self._labels = np.asarray(labels, dtype=np.float64)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self._tree is None or self._labels is None:
            raise RuntimeError("KNN not fitted")
        x = np.asarray(features, dtype=np.float64)
        k = min(self.k, len(self._labels))
        dist, idx = self._tree.query(x, k=k)
        if k == 1:
            dist = dist[:, None]
            idx = idx[:, None]
        votes = self._labels[idx]
        if self.weighted:
            w = 1.0 / (dist + 1e-9)
            return (votes * w).sum(axis=1) / w.sum(axis=1)
        return votes.mean(axis=1)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(np.int64)

"""Pattern-matching hotspot detectors (generation 1).

Before machine learning, fabs kept libraries of known-bad patterns and
flagged layout windows that matched.  Two matchers:

* :class:`ExactPatternMatcher` — a hotspot clip matches iff its squish
  *topology* and interval deltas equal a library entry's exactly
  (translation-invariant by construction, D4-invariant by augmenting the
  library with all 8 orientations).
* :class:`FuzzyPatternMatcher` — topology must match a library entry; the
  interval deltas may deviate up to ``tolerance_nm`` per interval.  The
  score decays with the worst interval deviation, so thresholding trades
  recall against false alarms like the learned detectors do.

Both learn *only from hotspot examples* — the defining property (and
weakness) of the approach: an unseen-but-hot pattern can never be caught.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..contracts import shaped
from ..data.dataset import HOTSPOT, ClipDataset
from ..features.squish import SquishPattern, squish
from ..geometry.layout import Clip
from ..geometry.transform import D4_NAMES, transform_clip

TopologyKey = Tuple[Tuple[int, ...], ...]


def _library_entries(clip: Clip, orientations: Sequence[str]) -> List[SquishPattern]:
    return [squish(transform_clip(clip, name)) for name in orientations]


@dataclass
class _Library:
    """Hotspot pattern library grouped by topology key."""

    by_topology: Dict[TopologyKey, List[SquishPattern]]

    @staticmethod
    def build(
        train: ClipDataset, orientations: Sequence[str] = D4_NAMES
    ) -> "_Library":
        groups: Dict[TopologyKey, List[SquishPattern]] = {}
        for idx in train.hotspot_indices():
            for pat in _library_entries(train.clips[int(idx)], orientations):
                groups.setdefault(pat.topology_key(), []).append(pat)
        return _Library(by_topology=groups)

    def size(self) -> int:
        return sum(len(v) for v in self.by_topology.values())


def _delta_deviation(a: SquishPattern, b: SquishPattern) -> float:
    """Worst per-interval |delta| difference in nm (same topology assumed)."""
    dx = np.abs(np.asarray(a.dx) - np.asarray(b.dx))
    dy = np.abs(np.asarray(a.dy) - np.asarray(b.dy))
    return float(max(dx.max(initial=0.0), dy.max(initial=0.0)))


class ExactPatternMatcher:
    """Flags clips identical (up to D4) to a known hotspot."""

    name = "pattern-exact"
    threshold = 0.5

    def __init__(self, orientations: Sequence[str] = D4_NAMES) -> None:
        self.orientations = tuple(orientations)
        self._library: Optional[_Library] = None

    def fit(
        self, train: ClipDataset, rng: Optional[np.random.Generator] = None
    ):
        from ..core.detector import FitReport

        self._library = _Library.build(train, self.orientations)
        return FitReport(n_train=len(train), notes=f"library={self._library.size()}")

    @shaped("[n]->(n,):float64")
    def predict_proba(self, clips: Sequence[Clip]) -> np.ndarray:
        if self._library is None:
            raise RuntimeError("matcher not fitted")
        out = np.zeros(len(clips))
        for i, clip in enumerate(clips):
            pat = squish(clip)
            candidates = self._library.by_topology.get(pat.topology_key(), ())
            if any(
                cand.dx == pat.dx and cand.dy == pat.dy for cand in candidates
            ):
                out[i] = 1.0
        return out

    def predict(self, clips: Sequence[Clip]) -> np.ndarray:
        return (self.predict_proba(clips) >= self.threshold).astype(np.int64)


class FuzzyPatternMatcher:
    """Topology-exact, geometry-tolerant matching with a graded score."""

    name = "pattern-fuzzy"
    threshold = 0.5

    def __init__(
        self,
        tolerance_nm: float = 24.0,
        orientations: Sequence[str] = D4_NAMES,
    ) -> None:
        if tolerance_nm <= 0:
            raise ValueError("tolerance_nm must be positive")
        self.tolerance_nm = tolerance_nm
        self.orientations = tuple(orientations)
        self._library: Optional[_Library] = None

    def fit(
        self, train: ClipDataset, rng: Optional[np.random.Generator] = None
    ):
        from ..core.detector import FitReport

        self._library = _Library.build(train, self.orientations)
        return FitReport(n_train=len(train), notes=f"library={self._library.size()}")

    def match_score(self, clip: Clip) -> float:
        """1 at exact geometry, decaying to 0 at 2x tolerance deviation."""
        if self._library is None:
            raise RuntimeError("matcher not fitted")
        pat = squish(clip)
        candidates = self._library.by_topology.get(pat.topology_key())
        if not candidates:
            return 0.0
        best = min(_delta_deviation(pat, cand) for cand in candidates)
        # linear falloff: 1.0 at 0 deviation, 0.5 at tolerance, 0 at 2x
        return float(np.clip(1.0 - best / (2.0 * self.tolerance_nm), 0.0, 1.0))

    @shaped("[n]->(n,):float64")
    def predict_proba(self, clips: Sequence[Clip]) -> np.ndarray:
        return np.array([self.match_score(clip) for clip in clips])

    def predict(self, clips: Sequence[Clip]) -> np.ndarray:
        return (self.predict_proba(clips) >= self.threshold).astype(np.int64)

    def library_size(self) -> int:
        return self._library.size() if self._library else 0

"""CART decision trees.

Binary classification trees with gini or entropy splitting, used directly
as a detector baseline and as the weak learner inside AdaBoost.  Supports
per-sample weights (AdaBoost needs them) and returns leaf class
probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class _Node:
    # internal node: feature/threshold set, children set; leaf: proba set
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    proba: float = 0.5  # P(hotspot) at a leaf
    n: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _impurity(p: float, criterion: str) -> float:
    if p <= 0.0 or p >= 1.0:
        return 0.0
    if criterion == "gini":
        return 2.0 * p * (1.0 - p)
    return -(p * np.log2(p) + (1 - p) * np.log2(1 - p))


class DecisionTree:
    """CART for binary labels with optional sample weights."""

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_leaf: int = 2,
        min_weight_split: float = 1e-9,
        criterion: str = "gini",
        max_thresholds: int = 256,
    ) -> None:
        if criterion not in ("gini", "entropy"):
            raise ValueError("criterion must be 'gini' or 'entropy'")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_weight_split = min_weight_split
        self.criterion = criterion
        self.max_thresholds = max_thresholds
        self._root: Optional[_Node] = None
        self.n_nodes = 0

    # ------------------------------------------------------------------
    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "DecisionTree":
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.float64)
        if sample_weight is None:
            w = np.full(len(y), 1.0 / len(y))
        else:
            w = np.asarray(sample_weight, dtype=np.float64)
            w = w / w.sum()
        self.n_nodes = 0
        self._root = self._build(x, y, w, depth=0)
        return self

    def _leaf(self, y: np.ndarray, w: np.ndarray) -> _Node:
        self.n_nodes += 1
        total = w.sum()
        proba = float((w * y).sum() / total) if total > 0 else 0.5
        return _Node(proba=proba, n=len(y))

    def _build(self, x: np.ndarray, y: np.ndarray, w: np.ndarray, depth: int) -> _Node:
        total = w.sum()
        p = float((w * y).sum() / total) if total > 0 else 0.5
        if (
            depth >= self.max_depth
            or len(y) < 2 * self.min_samples_leaf
            or total < self.min_weight_split
            or p <= 0.0
            or p >= 1.0
        ):
            return self._leaf(y, w)
        feat, thr, gain = self._best_split(x, y, w, _impurity(p, self.criterion))
        if feat < 0 or gain <= 1e-12:
            return self._leaf(y, w)
        mask = x[:, feat] <= thr
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return self._leaf(y, w)
        self.n_nodes += 1
        node = _Node(feature=feat, threshold=thr, n=len(y))
        node.left = self._build(x[mask], y[mask], w[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], w[~mask], depth + 1)
        node.proba = p
        return node

    def _best_split(self, x, y, w, parent_impurity):
        """Best (feature, threshold) by weighted impurity decrease."""
        n, d = x.shape
        total = w.sum()
        best = (-1, 0.0, 0.0)
        for feat in range(d):
            col = x[:, feat]
            order = np.argsort(col, kind="stable")
            cs, ys, ws = col[order], y[order], w[order]
            w_cum = np.cumsum(ws)
            wy_cum = np.cumsum(ws * ys)
            # candidate cut positions: where consecutive values differ
            diff = np.nonzero(np.diff(cs) > 1e-12)[0]
            if len(diff) == 0:
                continue
            if len(diff) > self.max_thresholds:
                step = len(diff) / self.max_thresholds
                diff = diff[(np.arange(self.max_thresholds) * step).astype(int)]
            w_left = w_cum[diff]
            wy_left = wy_cum[diff]
            w_right = total - w_left
            wy_right = wy_cum[-1] - wy_left
            with np.errstate(invalid="ignore", divide="ignore"):
                p_left = np.where(w_left > 0, wy_left / w_left, 0.0)
                p_right = np.where(w_right > 0, wy_right / w_right, 0.0)
            imp_left = np.array([_impurity(p, self.criterion) for p in p_left])
            imp_right = np.array([_impurity(p, self.criterion) for p in p_right])
            child = (w_left * imp_left + w_right * imp_right) / total
            gains = parent_impurity - child
            k = int(np.argmax(gains))
            if gains[k] > best[2]:
                thr = 0.5 * (cs[diff[k]] + cs[diff[k] + 1])
                best = (feat, float(thr), float(gains[k]))
        return best

    # ------------------------------------------------------------------
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree not fitted")
        x = np.asarray(features, dtype=np.float64)
        out = np.empty(len(x))
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.proba
        return out

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features) >= 0.5).astype(np.int64)

    @property
    def depth(self) -> int:
        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("tree not fitted")
        return walk(self._root)

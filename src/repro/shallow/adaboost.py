"""AdaBoost.M1 over decision stumps / shallow trees.

Boosting on density features was the other workhorse of the shallow era
(e.g. the MAGIC-style detectors).  Classic discrete AdaBoost:

* weak learner: :class:`~repro.shallow.dtree.DecisionTree` of small depth,
* sample weights re-emphasize mistakes each round,
* final score = sigmoid of the weighted vote margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .dtree import DecisionTree


@dataclass
class AdaBoostConfig:
    n_rounds: int = 40
    weak_depth: int = 2
    learning_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.n_rounds < 1:
            raise ValueError("n_rounds must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


class AdaBoost:
    """Discrete AdaBoost.M1 for binary labels {0, 1}."""

    def __init__(self, config: Optional[AdaBoostConfig] = None) -> None:
        self.config = config or AdaBoostConfig()
        self.stumps: List[DecisionTree] = []
        self.alphas: List[float] = []

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> "AdaBoost":
        x = np.asarray(features, dtype=np.float64)
        y01 = np.asarray(labels, dtype=np.int64)
        y = np.where(y01 == 1, 1.0, -1.0)
        n = len(y)
        w = np.full(n, 1.0 / n)
        self.stumps, self.alphas = [], []
        for _ in range(self.config.n_rounds):
            stump = DecisionTree(
                max_depth=self.config.weak_depth, min_samples_leaf=1
            )
            stump.fit(x, y01, sample_weight=w)
            pred = np.where(stump.predict(x) == 1, 1.0, -1.0)
            err = float(w[pred != y].sum())
            err = min(max(err, 1e-12), 1 - 1e-12)
            if err >= 0.5:
                # weak learner no better than chance: stop boosting
                break
            alpha = 0.5 * self.config.learning_rate * np.log((1 - err) / err)
            w *= np.exp(-alpha * y * pred)
            w /= w.sum()
            self.stumps.append(stump)
            self.alphas.append(float(alpha))
            if err < 1e-10:
                break
        if not self.stumps:
            # degenerate data: fall back to a single stump
            stump = DecisionTree(max_depth=1, min_samples_leaf=1)
            stump.fit(x, y01)
            self.stumps = [stump]
            self.alphas = [1.0]
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if not self.stumps:
            raise RuntimeError("AdaBoost not fitted")
        x = np.asarray(features, dtype=np.float64)
        margin = np.zeros(len(x))
        for alpha, stump in zip(self.alphas, self.stumps):
            margin += alpha * np.where(stump.predict(x) == 1, 1.0, -1.0)
        return margin

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        total = sum(self.alphas) or 1.0
        margin = self.decision_function(features) / total
        return 0.5 * (margin + 1.0)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.decision_function(features) >= 0).astype(np.int64)

    @property
    def n_rounds_used(self) -> int:
        return len(self.stumps)

"""C-SVM trained with a simplified SMO solver.

The generation-2 detector of record: CCAS features + RBF-kernel SVM.
Implemented from scratch:

* dual soft-margin C-SVM with linear or RBF kernel,
* simplified SMO (Platt) with a vectorized error cache — the kernel matrix
  is precomputed, so each two-alpha update is O(n),
* per-class C weighting for imbalanced data,
* a logistic link on the decision value for ``predict_proba``-style scores
  (a fixed-slope Platt scaling; adequate for ranking/thresholding).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np


def linear_kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Gram matrix ``a @ b.T``."""
    return a @ b.T


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """Gaussian kernel ``exp(-gamma * ||a - b||^2)``."""
    aa = (a * a).sum(axis=1)[:, None]
    bb = (b * b).sum(axis=1)[None, :]
    d2 = np.maximum(aa + bb - 2.0 * (a @ b.T), 0.0)
    return np.exp(-gamma * d2)


@dataclass
class SVMConfig:
    C: float = 1.0
    kernel: str = "rbf"  # "rbf" | "linear"
    gamma: Optional[float] = None  # None -> 1 / (d * var)
    tol: float = 1e-3
    max_passes: int = 5
    max_iter: int = 20_000
    class_weight: Optional[str] = "balanced"  # None | "balanced"

    def __post_init__(self) -> None:
        if self.C <= 0:
            raise ValueError("C must be positive")
        if self.kernel not in ("rbf", "linear"):
            raise ValueError("kernel must be 'rbf' or 'linear'")


class SVM:
    """Binary C-SVM; labels are {0, 1} at the API, {-1, +1} internally."""

    def __init__(self, config: Optional[SVMConfig] = None) -> None:
        self.config = config or SVMConfig()
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None  # +/-1
        self._alpha: Optional[np.ndarray] = None
        self._c_vec: Optional[np.ndarray] = None
        self._b: float = 0.0
        self._gamma: float = 1.0

    # ------------------------------------------------------------------
    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.config.kernel == "linear":
            return linear_kernel(a, b)
        return rbf_kernel(a, b, self._gamma)

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> "SVM":
        rng = rng or np.random.default_rng(0)
        x = np.asarray(features, dtype=np.float64)
        y01 = np.asarray(labels, dtype=np.int64)
        if set(np.unique(y01)) - {0, 1}:
            raise ValueError("labels must be 0/1")
        if len(np.unique(y01)) < 2:
            raise ValueError("SVM needs both classes in the training set")
        y = np.where(y01 == 1, 1.0, -1.0)
        n, d = x.shape
        var = x.var()
        self._gamma = self.config.gamma or 1.0 / (d * var if var > 1e-12 else d)
        # per-sample C with optional balancing
        c_vec = np.full(n, self.config.C, dtype=np.float64)
        if self.config.class_weight == "balanced":
            n_pos = (y > 0).sum()
            n_neg = n - n_pos
            c_vec[y > 0] *= n / (2.0 * n_pos)
            c_vec[y < 0] *= n / (2.0 * n_neg)

        gram = self._kernel(x, x)
        alpha = np.zeros(n)
        # error cache: f(x_i) - y_i where f = (alpha*y) @ K + b
        errors = -y.copy()
        tol = self.config.tol
        passes = 0
        iters = 0
        while passes < self.config.max_passes and iters < self.config.max_iter:
            changed = 0
            for i in range(n):
                iters += 1
                e_i = errors[i]
                r_i = e_i * y[i]
                if (r_i < -tol and alpha[i] < c_vec[i]) or (r_i > tol and alpha[i] > 0):
                    if self._examine(i, x, y, gram, alpha, c_vec, errors, rng):
                        changed += 1
            passes = passes + 1 if changed == 0 else 0
        self._x, self._y, self._alpha = x, y, alpha
        self._c_vec = c_vec
        self._recompute_bias(gram)
        return self

    def _examine(self, i, x, y, gram, alpha, c_vec, errors, rng) -> bool:
        """Platt's second-choice hierarchy for the partner index j."""
        n = len(y)
        e_i = errors[i]
        non_bound = np.nonzero((alpha > 1e-8) & (alpha < c_vec - 1e-8))[0]
        # 1. heuristic: maximize |E_i - E_j| over non-bound alphas
        if len(non_bound) > 1:
            j = int(non_bound[np.argmax(np.abs(errors[non_bound] - e_i))])
            if j != i and self._take_step(i, j, x, y, gram, alpha, c_vec, errors):
                return True
        # 2. all non-bound alphas in random order
        for j in rng.permutation(non_bound):
            if j != i and self._take_step(i, int(j), x, y, gram, alpha, c_vec, errors):
                return True
        # 3. everything else in random order
        for j in rng.permutation(n):
            if j != i and self._take_step(i, int(j), x, y, gram, alpha, c_vec, errors):
                return True
        return False

    def _take_step(self, i, j, x, y, gram, alpha, c_vec, errors) -> bool:
        if i == j:
            return False
        a_i, a_j = alpha[i], alpha[j]
        y_i, y_j = y[i], y[j]
        e_i, e_j = errors[i], errors[j]
        if y_i != y_j:
            lo = max(0.0, a_j - a_i)
            hi = min(c_vec[j], c_vec[i] + a_j - a_i)
        else:
            lo = max(0.0, a_i + a_j - c_vec[i])
            hi = min(c_vec[j], a_i + a_j)
        if lo >= hi:
            return False
        eta = 2.0 * gram[i, j] - gram[i, i] - gram[j, j]
        if eta >= 0:
            return False
        a_j_new = np.clip(a_j - y_j * (e_i - e_j) / eta, lo, hi)
        if abs(a_j_new - a_j) < 1e-7 * (a_j_new + a_j + 1e-7):
            return False
        a_i_new = a_i + y_i * y_j * (a_j - a_j_new)
        # bias update (Platt's rules)
        b1 = (
            -e_i
            - y_i * (a_i_new - a_i) * gram[i, i]
            - y_j * (a_j_new - a_j) * gram[i, j]
        )
        b2 = (
            -e_j
            - y_i * (a_i_new - a_i) * gram[i, j]
            - y_j * (a_j_new - a_j) * gram[j, j]
        )
        if 0 < a_i_new < c_vec[i]:
            db = b1
        elif 0 < a_j_new < c_vec[j]:
            db = b2
        else:
            db = (b1 + b2) / 2.0
        alpha[i], alpha[j] = a_i_new, a_j_new
        # vectorized error-cache update
        errors += (
            y_i * (a_i_new - a_i) * gram[i]
            + y_j * (a_j_new - a_j) * gram[j]
            + db
        )
        self._b += db
        return True

    def _recompute_bias(self, gram: np.ndarray) -> None:
        """Set b from the KKT conditions of *free* support vectors.

        Bound SVs (alpha == C) sit inside the margin and bias the residual,
        badly so with asymmetric class C; free SVs sit exactly on the
        margin where y - f(x) = b holds.
        """
        alpha, y = self._alpha, self._y
        free = (alpha > 1e-8) & (alpha < self._c_vec - 1e-8)
        sv = free if free.any() else alpha > 1e-8
        if not sv.any():
            self._b = 0.0
            return
        f_no_bias = (alpha * y) @ gram
        residual = y[sv] - f_no_bias[sv]
        self._b = float(residual.mean())

    # ------------------------------------------------------------------
    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("SVM not fitted")
        x = np.asarray(features, dtype=np.float64)
        sv = self._alpha > 1e-8
        if not sv.any():
            return np.full(len(x), self._b)
        k = self._kernel(x, self._x[sv])
        return k @ (self._alpha[sv] * self._y[sv]) + self._b

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Sigmoid-squashed decision values in [0, 1]."""
        return 1.0 / (1.0 + np.exp(-np.clip(self.decision_function(features), -30, 30)))

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.decision_function(features) >= 0).astype(np.int64)

    @property
    def n_support(self) -> int:
        if self._alpha is None:
            raise RuntimeError("SVM not fitted")
        return int((self._alpha > 1e-8).sum())

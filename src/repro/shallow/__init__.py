"""Shallow hotspot detectors: pattern matching and classic ML.

Raw learners (feature-vector API): :class:`SVM`, :class:`DecisionTree`,
:class:`AdaBoost`, :class:`LogisticRegression`, :class:`GaussianNB`,
:class:`KNN`.  Clip-level detectors come from :class:`FeatureDetector`
(adapter) or the pattern matchers; the ``make_*`` factories build the
standard configurations used in the paper's tables and register them in
:mod:`repro.core.registry`.
"""

from ..core.registry import register
from ..features.concentric import ConcentricSampling
from ..features.dct import DCTFeatureTensor
from ..features.density import DensityGrid
from .adaboost import AdaBoost, AdaBoostConfig
from .adapters import FeatureDetector
from .dtree import DecisionTree
from .knn import KNN
from .logistic import LogisticConfig, LogisticRegression
from .naive_bayes import GaussianNB
from .pattern_match import ExactPatternMatcher, FuzzyPatternMatcher
from .random_forest import RandomForest, RandomForestConfig
from .svm import SVM, SVMConfig


def make_svm_ccas(upsample: float = 0.5) -> FeatureDetector:
    """The SVM-era detector: CCAS features + balanced RBF C-SVM."""
    return FeatureDetector(
        name="svm-ccas",
        extractor=ConcentricSampling(n_rings=12, n_angles=24),
        learner=SVM(SVMConfig(C=4.0, kernel="rbf")),
        upsample_ratio=upsample,
    )


def make_adaboost_density() -> FeatureDetector:
    """Boosting-era detector: density grid + AdaBoost over depth-2 trees."""
    return FeatureDetector(
        name="adaboost-density",
        extractor=DensityGrid(grid=12),
        learner=AdaBoost(AdaBoostConfig(n_rounds=60, weak_depth=2)),
        upsample_ratio=0.5,
    )


def make_dtree_density() -> FeatureDetector:
    return FeatureDetector(
        name="dtree-density",
        extractor=DensityGrid(grid=12),
        learner=DecisionTree(max_depth=10, min_samples_leaf=3),
        upsample_ratio=0.5,
    )


def make_logistic_density() -> FeatureDetector:
    return FeatureDetector(
        name="logistic-density",
        extractor=DensityGrid(grid=12),
        learner=LogisticRegression(),
    )


def make_nb_density() -> FeatureDetector:
    return FeatureDetector(
        name="nb-density",
        extractor=DensityGrid(grid=12),
        learner=GaussianNB(),
    )


def make_random_forest_density() -> FeatureDetector:
    return FeatureDetector(
        name="rf-density",
        extractor=DensityGrid(grid=12),
        learner=RandomForest(RandomForestConfig(n_trees=30, max_depth=10)),
        upsample_ratio=0.5,
    )


def make_knn_dct() -> FeatureDetector:
    return FeatureDetector(
        name="knn-dct",
        extractor=DCTFeatureTensor(block=8, keep=4, flatten=True),
        learner=KNN(k=5),
    )


def make_pattern_exact() -> ExactPatternMatcher:
    return ExactPatternMatcher()


def make_pattern_fuzzy() -> FuzzyPatternMatcher:
    return FuzzyPatternMatcher(tolerance_nm=24.0)


_FACTORIES = {
    "svm-ccas": make_svm_ccas,
    "adaboost-density": make_adaboost_density,
    "dtree-density": make_dtree_density,
    "rf-density": make_random_forest_density,
    "logistic-density": make_logistic_density,
    "nb-density": make_nb_density,
    "knn-dct": make_knn_dct,
    "pattern-exact": make_pattern_exact,
    "pattern-fuzzy": make_pattern_fuzzy,
}

for _name, _factory in _FACTORIES.items():
    register(_name, _factory)

__all__ = [
    "SVM",
    "SVMConfig",
    "DecisionTree",
    "AdaBoost",
    "AdaBoostConfig",
    "LogisticRegression",
    "LogisticConfig",
    "GaussianNB",
    "KNN",
    "RandomForest",
    "RandomForestConfig",
    "ExactPatternMatcher",
    "FuzzyPatternMatcher",
    "FeatureDetector",
    "make_svm_ccas",
    "make_adaboost_density",
    "make_dtree_density",
    "make_random_forest_density",
    "make_logistic_density",
    "make_nb_density",
    "make_knn_dct",
    "make_pattern_exact",
    "make_pattern_fuzzy",
]

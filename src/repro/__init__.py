"""repro — Lithography hotspot detection, from shallow to deep learning.

A from-scratch reproduction of the SOCC 2017 survey's detector lineup:

* ``repro.geometry`` — integer-nm rectilinear layout engine (rects,
  polygons, clips, rasterization, DRC, serialization),
* ``repro.litho`` — approximate partially-coherent lithography simulation
  and the golden :class:`HotspotOracle` labeler,
* ``repro.data`` — synthetic ICCAD-2012-style benchmarks with contest
  imbalance, plus up-sampling / mirroring / SMOTE,
* ``repro.features`` — density grids, CCAS, DCT feature tensors, squish
  patterns,
* ``repro.shallow`` — pattern matching, SVM (SMO), AdaBoost, CART,
  logistic regression, naive Bayes, kNN,
* ``repro.nn`` — numpy CNN framework + the DCT-tensor CNN with biased
  learning,
* ``repro.core`` — the unified Detector API, contest metrics, threshold
  calibration, ensembles,
* ``repro.bench`` — the harness regenerating every table and figure.

Quickstart::

    import numpy as np
    from repro import make_iccad2012_suite, evaluate_detector
    from repro.shallow import make_svm_ccas

    suite = make_iccad2012_suite(seed=2012, scale=0.2)
    result = evaluate_detector(make_svm_ccas(), suite[0],
                               rng=np.random.default_rng(0))
    print(result.row())
"""

from . import shallow as _shallow  # noqa: F401  (registers shallow detectors)
from . import nn as _nn  # noqa: F401  (registers deep detectors)
from .core import (
    Confusion,
    Detector,
    EvalResult,
    OracleDetector,
    available,
    confusion,
    create,
    evaluate_detector,
    evaluate_on_suite,
    roc_auc,
    roc_curve,
)
from .data import (
    Benchmark,
    ClipDataset,
    FamilyMix,
    generate_clips,
    make_benchmark,
    make_iccad2012_suite,
    upsample_minority,
)
from .geometry import Clip, Layer, Layout, Polygon, Rect, extract_clip
from .runtime import CascadeDetector, ScanEngine, ScanReport, ScoreCache
from .litho import HotspotOracle, LithoSimulator, OpticalSystem, ResistModel

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # geometry
    "Rect",
    "Polygon",
    "Layer",
    "Layout",
    "Clip",
    "extract_clip",
    # litho
    "OpticalSystem",
    "ResistModel",
    "LithoSimulator",
    "HotspotOracle",
    # data
    "ClipDataset",
    "Benchmark",
    "FamilyMix",
    "generate_clips",
    "make_benchmark",
    "make_iccad2012_suite",
    "upsample_minority",
    # core
    "Detector",
    "OracleDetector",
    "Confusion",
    "confusion",
    "roc_curve",
    "roc_auc",
    "EvalResult",
    "evaluate_detector",
    "evaluate_on_suite",
    "create",
    "available",
    # runtime
    "ScanEngine",
    "ScanReport",
    "ScoreCache",
    "CascadeDetector",
]

"""Neural-network layers (numpy, explicit forward/backward).

Every layer caches what its backward pass needs during forward and
releases it on the next call.  Shapes follow the PyTorch convention:
``(N, C, H, W)`` for images, ``(N, D)`` for vectors.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

import numpy as np

from .im2col import col2im, conv_out_size, im2col
from .init import Param, he_normal, xavier_uniform


class Layer(ABC):
    """Forward/backward node with trainable params."""

    training: bool = True

    @abstractmethod
    def forward(self, x: np.ndarray) -> np.ndarray: ...

    @abstractmethod
    def backward(self, grad: np.ndarray) -> np.ndarray: ...

    def params(self) -> List[Param]:
        return []

    def train_mode(self, training: bool = True) -> None:
        self.training = training

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Dense(Layer):
    """Affine layer ``y = x @ W + b`` over ``(N, D)``."""

    def __init__(
        self, in_features: int, out_features: int, rng: np.random.Generator
    ) -> None:
        self.w = Param(
            he_normal(rng, (in_features, out_features), fan_in=in_features),
            name="dense.w",
        )
        self.b = Param(np.zeros(out_features), name="dense.b")
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.w.value + self.b.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        self.w.grad += self._x.T @ grad
        self.b.grad += grad.sum(axis=0)
        return grad @ self.w.value.T

    def params(self) -> List[Param]:
        return [self.w, self.b]


class Conv2D(Layer):
    """2-D convolution via im2col; weight ``(out_c, in_c, kh, kw)``."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        rng: np.random.Generator,
        stride: int = 1,
        pad: Optional[int] = None,
    ) -> None:
        if pad is None:
            pad = kernel // 2  # 'same' for stride 1, odd kernels
        fan_in = in_channels * kernel * kernel
        self.w = Param(
            he_normal(rng, (out_channels, in_channels, kernel, kernel), fan_in),
            name="conv.w",
        )
        self.b = Param(np.zeros(out_channels), name="conv.b")
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self._cols: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, int, int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s, p = self.kernel, self.stride, self.pad
        oh = conv_out_size(h, k, s, p)
        ow = conv_out_size(w, k, s, p)
        cols = im2col(x, k, k, s, p)  # (n*oh*ow, c*k*k)
        self._cols = cols
        self._x_shape = x.shape
        w_mat = self.w.value.reshape(self.w.shape[0], -1)  # (oc, c*k*k)
        out = cols @ w_mat.T + self.b.value  # (n*oh*ow, oc)
        return out.reshape(n, oh, ow, -1).transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, oc, oh, ow = grad.shape
        k, s, p = self.kernel, self.stride, self.pad
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(-1, oc)  # (n*oh*ow, oc)
        w_mat = self.w.value.reshape(oc, -1)
        self.w.grad += (grad_mat.T @ self._cols).reshape(self.w.shape)
        self.b.grad += grad_mat.sum(axis=0)
        grad_cols = grad_mat @ w_mat  # (n*oh*ow, c*k*k)
        return col2im(grad_cols, self._x_shape, k, k, s, p)

    def params(self) -> List[Param]:
        return [self.w, self.b]


class ReLU(Layer):
    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask


class MaxPool2D(Layer):
    """Non-overlapping max pooling (kernel == stride)."""

    def __init__(self, kernel: int = 2) -> None:
        if kernel < 1:
            raise ValueError("kernel must be >= 1")
        self.kernel = kernel
        self._x_shape: Optional[Tuple[int, ...]] = None
        self._argmax: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel
        if h % k or w % k:
            raise ValueError(f"input {h}x{w} not divisible by pool {k}")
        self._x_shape = x.shape
        xr = x.reshape(n, c, h // k, k, w // k, k).transpose(0, 1, 2, 4, 3, 5)
        flat = xr.reshape(n, c, h // k, w // k, k * k)
        self._argmax = flat.argmax(axis=4)
        return flat.max(axis=4)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, c, h, w = self._x_shape
        k = self.kernel
        oh, ow = h // k, w // k
        out = np.zeros((n, c, oh, ow, k * k), dtype=grad.dtype)
        idx = self._argmax
        ni, ci, hi, wi = np.indices(idx.shape)
        out[ni, ci, hi, wi, idx] = grad
        return (
            out.reshape(n, c, oh, ow, k, k)
            .transpose(0, 1, 2, 4, 3, 5)
            .reshape(n, c, h, w)
        )


class GlobalAvgPool(Layer):
    """(N, C, H, W) -> (N, C) mean over spatial dims."""

    def __init__(self) -> None:
        self._x_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, c, h, w = self._x_shape
        return np.broadcast_to(
            grad[:, :, None, None] / (h * w), self._x_shape
        ).copy()


class Flatten(Layer):
    def __init__(self) -> None:
        self._x_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(len(x), -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._x_shape)


class Dropout(Layer):
    """Inverted dropout; identity at eval time."""

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout p must be in [0, 1)")
        self.p = p
        self.rng = rng
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        self._mask = (self.rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


class BatchNorm(Layer):
    """Batch normalization over (N,) stats for 2-D or (N, H, W) for 4-D.

    One implementation serves both ``(N, D)`` (per-feature) and
    ``(N, C, H, W)`` (per-channel) inputs.
    """

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5) -> None:
        self.gamma = Param(np.ones(num_features), name="bn.gamma")
        self.beta = Param(np.zeros(num_features), name="bn.beta")
        self.momentum = momentum
        self.eps = eps
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: Optional[tuple] = None

    def _moments_axes(self, x: np.ndarray) -> Tuple[int, ...]:
        if x.ndim == 2:
            return (0,)
        if x.ndim == 4:
            return (0, 2, 3)
        raise ValueError("BatchNorm expects 2-D or 4-D input")

    def _reshape_stat(self, stat: np.ndarray, ndim: int) -> np.ndarray:
        if ndim == 4:
            return stat[None, :, None, None]
        return stat[None, :]

    def forward(self, x: np.ndarray) -> np.ndarray:
        axes = self._moments_axes(x)
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                self.momentum * self.running_mean + (1 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1 - self.momentum) * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        mean_b = self._reshape_stat(mean, x.ndim)
        var_b = self._reshape_stat(var, x.ndim)
        inv_std = 1.0 / np.sqrt(var_b + self.eps)
        x_hat = (x - mean_b) * inv_std
        self._cache = (x_hat, inv_std, axes)
        return self._reshape_stat(self.gamma.value, x.ndim) * x_hat + self._reshape_stat(
            self.beta.value, x.ndim
        )

    def backward(self, grad: np.ndarray) -> np.ndarray:
        x_hat, inv_std, axes = self._cache
        m = np.prod([grad.shape[a] for a in axes])
        self.gamma.grad += (grad * x_hat).sum(axis=axes)
        self.beta.grad += grad.sum(axis=axes)
        gamma_b = self._reshape_stat(self.gamma.value, grad.ndim)
        grad_xhat = grad * gamma_b
        # standard batchnorm backward (training-mode statistics)
        sum_gx = grad_xhat.sum(axis=axes, keepdims=True)
        sum_gx_xhat = (grad_xhat * x_hat).sum(axis=axes, keepdims=True)
        return inv_std * (grad_xhat - sum_gx / m - x_hat * sum_gx_xhat / m)

    def params(self) -> List[Param]:
        return [self.gamma, self.beta]

"""Reference network architectures.

* :func:`build_feature_tensor_cnn` — the survey's deep detector: a compact
  VGG-style CNN over the block-DCT feature tensor (two conv stages, two
  dense layers), sized for ``(keep^2, G, G)`` inputs with G around 12,
* :func:`build_raster_cnn` — a small CNN over the raw clip raster
  (ablation: what the DCT compression buys),
* :func:`build_mlp` — a dense net over flat features (ablation baseline).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool,
    MaxPool2D,
    ReLU,
)
from .model import Sequential


def build_feature_tensor_cnn(
    in_channels: int,
    grid: int,
    rng: np.random.Generator,
    width: int = 24,
    dropout: float = 0.25,
) -> Sequential:
    """Two conv stages + two dense layers over a (C, grid, grid) tensor."""
    if grid % 4:
        raise ValueError("grid must be divisible by 4 (two 2x2 pools)")
    c1, c2 = width, 2 * width
    return Sequential(
        [
            Conv2D(in_channels, c1, kernel=3, rng=rng),
            BatchNorm(c1),
            ReLU(),
            Conv2D(c1, c1, kernel=3, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(c1, c2, kernel=3, rng=rng),
            BatchNorm(c2),
            ReLU(),
            Conv2D(c2, c2, kernel=3, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(c2 * (grid // 4) ** 2, 128, rng=rng),
            ReLU(),
            Dropout(dropout, rng=rng),
            Dense(128, 2, rng=rng),
        ]
    )


def build_raster_cnn(
    raster_px: int, rng: np.random.Generator, width: int = 8
) -> Sequential:
    """Raw-pixel CNN: three conv/pool stages then global average pooling."""
    if raster_px % 8:
        raise ValueError("raster size must be divisible by 8")
    c1, c2, c3 = width, 2 * width, 4 * width
    return Sequential(
        [
            Conv2D(1, c1, kernel=5, rng=rng),
            BatchNorm(c1),
            ReLU(),
            MaxPool2D(2),
            Conv2D(c1, c2, kernel=3, rng=rng),
            BatchNorm(c2),
            ReLU(),
            MaxPool2D(2),
            Conv2D(c2, c3, kernel=3, rng=rng),
            BatchNorm(c3),
            ReLU(),
            MaxPool2D(2),
            GlobalAvgPool(),
            Dense(c3, 2, rng=rng),
        ]
    )


def build_mlp(
    in_features: int,
    rng: np.random.Generator,
    hidden: Sequence[int] = (128, 64),
    dropout: float = 0.2,
) -> Sequential:
    """Dense baseline over flat feature vectors."""
    layers = []
    d = in_features
    for h in hidden:
        layers += [Dense(d, h, rng=rng), ReLU(), Dropout(dropout, rng=rng)]
        d = h
    layers.append(Dense(d, 2, rng=rng))
    return Sequential(layers)

"""Fused inference backend: compile a trained model into an execution plan.

The layer-by-layer :class:`~repro.nn.model.Sequential` forward pass is
built for training: every layer caches what its backward pass needs,
BatchNorm runs as a separate multi-pass op, ReLU materializes a mask, and
each convolution re-allocates its im2col scratch on every call.  None of
that work is needed at inference time, and on the scan hot path (the CNN
scoring thousands of raster windows per band) it dominates the runtime.

:func:`compile_plan` walks a trained ``Sequential`` once and emits an
:class:`InferencePlan` — a flat list of fused ops with three properties:

* **folding** — an eval-mode BatchNorm directly after a Conv2D/Dense is
  folded into that layer's weights and bias at compile time (the running
  statistics are affine in the layer output), and a ReLU directly after a
  Conv2D/Dense/affine op becomes an in-place ``np.maximum`` on the GEMM
  output.  Dropout is the identity at eval time and compiles away,
* **one GEMM per conv, no per-call allocation** — convolution runs as a
  single ``cols @ w_mat`` over the whole batch.  Activations flow in
  ``(N, H, W, C)`` layout so the im2col gather is one
  ``sliding_window_view`` copy into a **persistent workspace** buffer
  (reused across raster batches of a plane) whose column order already
  matches the pre-transposed weight matrix — no output transpose either,
* **optional int8 quantization** — ``mode="int8"`` stores conv/dense
  weights as per-output-channel symmetric int8 and accumulates in
  float32 (the classifier head stays full precision: its logits feed
  softmax directly, so head error lands on probabilities 1:1).  When a
  calibration batch is supplied the compile runs a calibration pass
  (per-channel bias correction measured against the float plan), then
  :func:`quantization_report` measures the remaining damage and the
  compile refuses (raises :class:`QuantizationError`) when the
  flag-disagreement rate or the worst probability shift exceeds the
  caller's tolerance.

The float plan is numerically the same function as the eval-mode
layer-by-layer forward — logits agree to ~1e-13 (GEMM summation order is
the only difference), which the parity suite pins at ``<= 1e-10``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided
from scipy.linalg.blas import dgemm as _dgemm
from scipy.linalg.blas import sgemm as _sgemm

from .im2col import conv_out_size
from .layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool,
    MaxPool2D,
    ReLU,
)
from .loss import softmax
from .model import Sequential


class PlanCompileError(ValueError):
    """The model contains a layer the plan compiler cannot fuse."""


class QuantizationError(ValueError):
    """Quantized plan failed its accuracy-delta gate vs the float plan."""


#: inference backend spellings accepted across the library
BACKENDS = ("layers", "fused", "fused-int8")


class Workspace:
    """Grow-only buffer pool: one persistent scratch array per (op, role).

    Plan ops never allocate on the hot path; they ask the workspace for
    a named buffer and get the same array back on every call with a
    matching shape (the common case: all batches of a raster plane are
    the same size).  A *smaller* leading (batch) dimension returns a
    prefix view of the stored buffer — a raster scan's batch sequence
    is ragged (full chunks interleaved with band-tail remainders), and
    without prefix reuse every size transition would refault ~10MB of
    scratch pages.  Only a larger batch, or a change in the trailing
    dims or dtype, reallocates.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple, np.ndarray] = {}

    def _get(self, key, shape, dtype, alloc) -> np.ndarray:
        buf = self._buffers.get(key)
        if (
            buf is not None
            and buf.dtype == dtype
            and buf.shape[1:] == shape[1:]
            and buf.shape[0] >= shape[0]
        ):
            return buf if buf.shape[0] == shape[0] else buf[: shape[0]]
        buf = alloc(shape, dtype=dtype)
        self._buffers[key] = buf
        return buf

    def empty(self, key: Tuple, shape: Tuple[int, ...], dtype) -> np.ndarray:
        return self._get(key, shape, dtype, np.empty)

    def zeros(self, key: Tuple, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Like :meth:`empty` but zero-filled on (re)allocation only.

        Callers overwrite the interior every call and rely on the border
        staying zero (the conv padding halo), so a reused buffer must
        not be re-zeroed.  Prefix views keep the invariant: each row's
        halo was zeroed at allocation and only interiors are rewritten.
        """
        return self._get(key, shape, dtype, np.zeros)

    def nbytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        self._buffers.clear()


# --------------------------------------------------------------------------
# plan ops: each is `run(x, ws) -> array`, activations in NHWC layout
# --------------------------------------------------------------------------
class _Op:
    """One fused execution step; subclasses set ``tag`` for plan display."""

    tag = "op"

    def run(self, x: np.ndarray, ws: Workspace) -> np.ndarray:
        raise NotImplementedError


class _FusedConv(_Op):
    """Kernel-row GEMM conv + bias (+BN folded) (+ReLU), NHWC in/out.

    The classic im2col gather over NHWC input copies the ``(c, kh, kw)``
    patch axes element-by-element (innermost run: ``kw`` scalars strided
    by ``c``) and inflates memory traffic by ``k*k``.  This op instead
    loops over the ``kh`` kernel rows: for a fixed row offset ``i`` every
    output pixel's contribution is a **contiguous** ``kw*c`` slice of the
    padded input row, expressible as a zero-copy strided view.  Each row
    is one narrow gather (``k``x expansion instead of ``k*k``x) feeding
    one GEMM against that row's ``(kw*c, oc)`` weight slab, accumulated
    into the output.  Combined with sub-batch chunking (the gather
    scratch stays cache-resident until its GEMM consumes it) this is
    ~2-3x faster than whole-batch im2col on a memory-bound host.
    """

    tag = "conv"

    def __init__(
        self, index: int, weight: np.ndarray, bias: np.ndarray,
        kernel: int, stride: int, pad: int,
    ) -> None:
        # (oc, c, kh, kw) -> (kh, kw*c, oc): row i's slab maps the
        # contiguous (kw, c) input run for that kernel row onto the
        # output channels, so the GEMM output is already NHWC
        oc, c = weight.shape[0], weight.shape[1]
        k = kernel
        self.w_rows = np.ascontiguousarray(
            weight.transpose(2, 3, 1, 0).reshape(k, k * c, oc)
        )
        self.bias = np.asarray(bias)
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self.out_channels = oc
        self.relu = False
        self.index = index
        self.nchw_input = False  # set on the plan's entry conv
        self.dtype = np.dtype(np.float64)  # overwritten by compile_plan

    def fold_affine(self, scale: np.ndarray, shift: np.ndarray) -> None:
        """Fold a per-output-channel ``y*scale + shift`` into the GEMM."""
        self.w_rows = self.w_rows * scale[None, None, :]
        self.bias = self.bias * scale + shift

    def quantize(self) -> Dict[str, np.ndarray]:
        """Switch to int8 weights / float32 accumulate; returns the pack.

        Per-output-channel symmetric scales: ``w_q = round(w / scale)``
        with ``scale = max|w| / 127``.  The GEMM runs in float32 against
        the *dequantized* matrix (``w_q * scale``) so accumulation is
        float32 while the weight information content is exactly int8.
        """
        scale = np.maximum(
            np.abs(self.w_rows).max(axis=(0, 1)), 1e-12
        ) / 127.0
        w_q = np.clip(
            np.round(self.w_rows / scale), -127, 127
        ).astype(np.int8)
        self.w_rows = w_q.astype(np.float32) * scale.astype(np.float32)
        self.bias = self.bias.astype(np.float32)
        return {"int8": w_q, "scale": scale}

    #: gather-scratch sub-batch budget in bytes — sized so the kernel-row
    #: columns stay cache-resident between their fill and the GEMM that
    #: consumes them (a whole-batch buffer is many x larger than LLC and
    #: forces every column through DRAM twice)
    CHUNK_BYTES = 4 << 20

    def run(self, x: np.ndarray, ws: Workspace) -> np.ndarray:
        if self.nchw_input:
            if x.ndim != 4:
                raise ValueError(f"conv expects (N, C, H, W), got {x.shape}")
            n, c, h, w = x.shape
            src = x.transpose(0, 2, 3, 1)  # strided view; copied below
        else:
            n, h, w, c = x.shape
            src = x
        k, s, p = self.kernel, self.stride, self.pad
        oh = conv_out_size(h, k, s, p)
        ow = conv_out_size(w, k, s, p)
        dt = self.dtype
        if p or self.nchw_input or x.dtype != dt or not x.flags.c_contiguous:
            # one copy does triple duty: layout change (entry conv),
            # dtype cast (int8 plans take float64 in) and zero halo
            xp = ws.zeros(
                ("pad", self.index), (n, h + 2 * p, w + 2 * p, c), dt
            )
            xp[:, p : p + h, p : p + w, :] = src
        else:
            xp = x
        # zero-copy view: row i, output pixel (y, x) -> the contiguous
        # kw*c run starting at padded row y*s + i, column x*s, channel 0
        flat = xp.reshape(n, h + 2 * p, (w + 2 * p) * c)
        st = flat.strides
        item = dt.itemsize
        chunk = max(
            1, min(n, self.CHUNK_BYTES // max(1, oh * ow * k * c * item))
        )
        cols = ws.empty(("cols", self.index), (chunk * oh * ow, k * c), dt)
        out = ws.empty(
            ("out", self.index), (n * oh * ow, self.out_channels), dt
        )
        # kernel rows 1..k-1 accumulate inside the GEMM epilogue
        # (``C = A@B + C`` via BLAS ``beta=1``) instead of materializing
        # a partial-sum buffer and adding it in a second pass — same
        # dot-then-add rounding, one less full sweep of the output per
        # row.  The C-order product is run as its transpose so every
        # operand is a zero-copy F-contiguous view.
        gemm = _dgemm if dt == np.float64 else _sgemm
        for start in range(0, n, chunk):
            m = min(chunk, n - start)
            rows = m * oh * ow
            cb = cols[:rows]
            ob = out[start * oh * ow : start * oh * ow + rows]
            for i in range(k):
                view = as_strided(
                    flat[start : start + m, i:, :],
                    shape=(m, oh, ow, k * c),
                    strides=(st[0], st[1] * s, c * s * item, item),
                )
                np.copyto(cb.reshape(m, oh, ow, k * c), view)
                if i == 0:
                    np.matmul(cb, self.w_rows[0], out=ob)
                else:
                    res = gemm(
                        1.0, self.w_rows[i].T, cb.T, beta=1.0,
                        c=ob.T, overwrite_c=1,
                    )
                    if not np.shares_memory(res, ob):
                        # layout surprised the wrapper into copying;
                        # res still holds A@B + ob, so recover it
                        np.copyto(ob, res.T)
            ob += self.bias
            if self.relu:
                np.maximum(ob, 0.0, out=ob)
        return out.reshape(n, oh, ow, self.out_channels)


class _FusedDense(_Op):
    """``x @ w + b`` (+BN folded) (+ReLU) over ``(N, D)`` vectors."""

    tag = "dense"

    def __init__(self, index: int, weight: np.ndarray, bias: np.ndarray) -> None:
        self.w = np.asarray(weight)  # (in, out)
        self.bias = np.asarray(bias)
        self.relu = False
        self.index = index

    def fold_affine(self, scale: np.ndarray, shift: np.ndarray) -> None:
        self.w = self.w * scale[None, :]
        self.bias = self.bias * scale + shift

    def quantize(self) -> Dict[str, np.ndarray]:
        scale = np.maximum(np.abs(self.w).max(axis=0), 1e-12) / 127.0
        w_q = np.clip(np.round(self.w / scale), -127, 127).astype(np.int8)
        self.w = (w_q.astype(np.float32) * scale.astype(np.float32))
        self.bias = self.bias.astype(np.float32)
        return {"int8": w_q, "scale": scale}

    def run(self, x: np.ndarray, ws: Workspace) -> np.ndarray:
        out = ws.empty(("out", self.index), (len(x), self.w.shape[1]), x.dtype)
        np.matmul(x, self.w, out=out)
        out += self.bias
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out


class _Affine(_Op):
    """Standalone per-channel ``x*scale + shift`` (BN with no host GEMM)."""

    tag = "affine"

    def __init__(self, index: int, scale: np.ndarray, shift: np.ndarray) -> None:
        self.scale = np.asarray(scale)
        self.shift = np.asarray(shift)
        self.relu = False
        self.index = index

    def run(self, x: np.ndarray, ws: Workspace) -> np.ndarray:
        # channels are the trailing axis in both NHWC and (N, D) layouts
        out = ws.empty(("out", self.index), x.shape, x.dtype)
        np.multiply(x, self.scale, out=out)
        out += self.shift
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out


class _ReLUOp(_Op):
    """Standalone ReLU (only when no preceding op could absorb it)."""

    tag = "relu"

    def __init__(self, index: int) -> None:
        self.index = index

    def run(self, x: np.ndarray, ws: Workspace) -> np.ndarray:
        out = ws.empty(("out", self.index), x.shape, x.dtype)
        return np.maximum(x, 0.0, out=out)


class _MaxPool(_Op):
    """Non-overlapping max pool in NHWC (kernel == stride)."""

    tag = "maxpool"

    def __init__(self, index: int, kernel: int) -> None:
        self.kernel = kernel
        self.index = index

    def run(self, x: np.ndarray, ws: Workspace) -> np.ndarray:
        n, h, w, c = x.shape
        k = self.kernel
        if h % k or w % k:
            raise ValueError(f"input {h}x{w} not divisible by pool {k}")
        oh, ow = h // k, w // k
        xr = x.reshape(n, oh, k, ow, k, c)
        # fold the pool window with pairwise in-place maxima into
        # persistent buffers — a multi-axis strided ``.max`` allocates
        # its result and reduces at half the ufunc's rate
        acc = ws.empty(("pool", self.index), (n, oh, ow, k, c), x.dtype)
        np.copyto(acc, xr[:, :, 0])
        for i in range(1, k):
            np.maximum(acc, xr[:, :, i], out=acc)
        out = ws.empty(("out", self.index), (n, oh, ow, c), x.dtype)
        np.copyto(out, acc[:, :, :, 0])
        for j in range(1, k):
            np.maximum(out, acc[:, :, :, j], out=out)
        return out


class _GlobalAvgPool(_Op):
    """(N, H, W, C) -> (N, C) spatial mean; identical to the NCHW result."""

    tag = "gap"

    def run(self, x: np.ndarray, ws: Workspace) -> np.ndarray:
        return x.mean(axis=(1, 2))


class _Flatten(_Op):
    """NHWC -> the NCHW-ordered flat vector the trained Dense expects."""

    tag = "flatten"

    def __init__(self, index: int) -> None:
        self.index = index

    def run(self, x: np.ndarray, ws: Workspace) -> np.ndarray:
        if x.ndim == 2:
            return x
        n, h, w, c = x.shape
        out = ws.empty(("out", self.index), (n, c * h * w), x.dtype)
        np.copyto(out.reshape(n, c, h, w), x.transpose(0, 3, 1, 2))
        return out


def _bn_eval_affine(layer: BatchNorm) -> Tuple[np.ndarray, np.ndarray]:
    """Eval-mode BatchNorm as ``y = x*scale + shift`` per channel."""
    inv_std = 1.0 / np.sqrt(layer.running_var + layer.eps)
    scale = layer.gamma.value * inv_std
    shift = layer.beta.value - layer.running_mean * scale
    return scale, shift


@dataclass
class QuantizationReport:
    """How far the int8 plan drifted from the float plan on calibration."""

    n_calibration: int
    max_delta_proba: float
    flag_disagreement: float
    threshold: float
    max_delta_tol: float
    disagreement_tol: float

    @property
    def passed(self) -> bool:
        return (
            self.max_delta_proba <= self.max_delta_tol
            and self.flag_disagreement <= self.disagreement_tol
        )

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "REJECT"
        return (
            f"int8 gate {verdict}: max|dP|={self.max_delta_proba:.2e} "
            f"(tol {self.max_delta_tol:.2e}), flag disagreement="
            f"{self.flag_disagreement:.4f} (tol {self.disagreement_tol:.4f}) "
            f"on {self.n_calibration} calibration windows"
        )


class InferencePlan:
    """Compiled inference-only forward pass for a trained model.

    Call :meth:`forward` for logits or :meth:`predict_proba` for
    P(hotspot).  The plan owns a :class:`Workspace` whose buffers are
    reused across calls, so outputs of :meth:`forward` are views into
    plan-owned memory — consume (or copy) them before the next call.
    """

    def __init__(
        self, ops: Sequence[_Op], in_is_image: bool, dtype: np.dtype
    ) -> None:
        self.ops = list(ops)
        self.in_is_image = in_is_image
        self.dtype = np.dtype(dtype)
        self.workspace = Workspace()
        #: inference telemetry, merged into scan counters by the engine;
        #: keys are fixed so clean and quantized runs expose the same set
        self.stats: Dict[str, int] = {
            "infer_batches": 0,
            "infer_windows": 0,
            "infer_int8_windows": 0,
        }
        self.quant_report: Optional[QuantizationReport] = None

    @property
    def preferred_batch(self) -> int:
        """Batch size the plan runs fastest at.

        The conv workspace footprint scales with batch x itemsize, and
        throughput drops once the gather/output buffers spill the LLC —
        float64 plans hit that at about half the batch float32 plans do
        (measured ~5-8% on the stock cnn-dct stack), so size the batch
        to the dtype.
        """
        return 64 if self.dtype == np.float64 else 96

    def describe(self) -> str:
        """Compact op listing, e.g. ``conv+relu -> maxpool -> dense``."""
        parts = []
        for op in self.ops:
            tag = op.tag
            if getattr(op, "relu", False):
                tag += "+relu"
            parts.append(tag)
        return " -> ".join(parts)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Logits for a batch; accepts ``(N, C, H, W)`` or ``(N, D)``."""
        ws = self.workspace
        x = np.asarray(x)
        n = len(x)
        if self.in_is_image:
            if x.ndim != 4:
                raise ValueError(f"plan expects (N, C, H, W), got {x.shape}")
            first = self.ops[0]
            if not (isinstance(first, _FusedConv) and first.nchw_input):
                # layout change at the door: NCHW -> NHWC into a
                # persistent buffer (an entry conv instead absorbs the
                # transpose into its own pad-buffer write)
                nhwc = ws.empty(
                    ("input",), (n,) + x.shape[2:] + (x.shape[1],), self.dtype
                )
                np.copyto(nhwc, x.transpose(0, 2, 3, 1))
                x = nhwc
        elif x.dtype != self.dtype:
            x = x.astype(self.dtype)
        for op in self.ops:
            x = op.run(x, ws)
        self.stats["infer_batches"] += 1
        self.stats["infer_windows"] += n
        if self.dtype == np.float32:
            self.stats["infer_int8_windows"] += n
        return x

    def predict_proba(
        self, x: np.ndarray, batch_size: int = 1024
    ) -> np.ndarray:
        """P(hotspot) per sample, float64, batched through the plan."""
        x = np.asarray(x)
        out = np.empty(len(x), dtype=np.float64)
        for start in range(0, len(x), batch_size):
            logits = self.forward(x[start : start + batch_size])
            out[start : start + batch_size] = softmax(
                np.asarray(logits, dtype=np.float64)
            )[:, 1]
        return out

    def reset_stats(self) -> None:
        for key in self.stats:
            self.stats[key] = 0


def compile_plan(
    model: Sequential,
    mode: str = "float",
    calibration: Optional[np.ndarray] = None,
    threshold: float = 0.5,
    max_delta_proba: float = 0.03,
    max_flag_disagreement: float = 0.0,
) -> InferencePlan:
    """Compile a trained ``Sequential`` into an :class:`InferencePlan`.

    Parameters
    ----------
    mode:
        ``"float"`` — float64, numerically the eval-mode forward pass;
        ``"int8"`` — per-channel int8 weights with float32 accumulate.
    calibration:
        Inputs used to gate an int8 plan against the float plan (same
        shape ``forward`` takes).  ``None`` skips the gate.
    threshold:
        Decision threshold used for the flag-disagreement gate.
    max_delta_proba / max_flag_disagreement:
        Int8 accuracy budget: the largest tolerated ``|P_int8 - P_float|``
        and the tolerated fraction of calibration samples whose flag
        flips.  Exceeding either raises :class:`QuantizationError`.
        The defaults demand *exact* flag agreement while allowing the
        probabilities three points of drift — int8 weight rounding on a
        4-conv/2-dense stack lands around 0.02 after bias correction,
        and what the scan path promises is the flags, not the scores.
    """
    if mode not in ("float", "int8"):
        raise ValueError(f"mode must be 'float' or 'int8', got {mode!r}")
    ops: List[_Op] = []
    in_is_image: Optional[bool] = None
    for layer in model.layers:
        prev = ops[-1] if ops else None
        if isinstance(layer, Conv2D):
            ops.append(
                _FusedConv(
                    len(ops), layer.w.value, layer.b.value,
                    layer.kernel, layer.stride, layer.pad,
                )
            )
            if in_is_image is None:
                in_is_image = True
        elif isinstance(layer, Dense):
            ops.append(_FusedDense(len(ops), layer.w.value, layer.b.value))
            if in_is_image is None:
                in_is_image = False
        elif isinstance(layer, BatchNorm):
            scale, shift = _bn_eval_affine(layer)
            if isinstance(prev, (_FusedConv, _FusedDense)) and not prev.relu:
                prev.fold_affine(scale, shift)
            else:
                ops.append(_Affine(len(ops), scale, shift))
        elif isinstance(layer, ReLU):
            if prev is not None and hasattr(prev, "relu") and not prev.relu:
                prev.relu = True
            else:
                ops.append(_ReLUOp(len(ops)))
        elif isinstance(layer, MaxPool2D):
            ops.append(_MaxPool(len(ops), layer.kernel))
        elif isinstance(layer, GlobalAvgPool):
            ops.append(_GlobalAvgPool())
        elif isinstance(layer, Flatten):
            ops.append(_Flatten(len(ops)))
        elif isinstance(layer, Dropout):
            continue  # identity at eval time
        else:
            raise PlanCompileError(
                f"cannot compile layer {type(layer).__name__}; the fused "
                "backend supports the standard zoo layers only"
            )
    if not ops:
        raise PlanCompileError("model compiled to an empty plan")
    dtype = np.float64 if mode == "float" else np.float32
    for op in ops:
        if isinstance(op, _FusedConv):
            op.dtype = np.dtype(dtype)
    if in_is_image and isinstance(ops[0], _FusedConv):
        ops[0].nchw_input = True
    if mode == "int8":
        # the classifier head stays full precision (cast to f32 only):
        # its logits feed softmax directly, so quantization error there
        # lands on the probabilities 1:1 — same convention as the
        # binarized zoo, which keeps first conv and head in float
        head = next(
            (
                op
                for op in reversed(ops)
                if isinstance(op, (_FusedConv, _FusedDense))
            ),
            None,
        )
        for op in ops:
            if isinstance(op, (_FusedConv, _FusedDense)):
                if op is head:
                    if isinstance(op, _FusedConv):
                        op.w_rows = op.w_rows.astype(np.float32)
                    else:
                        op.w = op.w.astype(np.float32)
                    op.bias = op.bias.astype(np.float32)
                else:
                    op.quantize()
            elif isinstance(op, _Affine):
                op.scale = op.scale.astype(np.float32)
                op.shift = op.shift.astype(np.float32)
    plan = InferencePlan(ops, in_is_image=bool(in_is_image), dtype=dtype)
    if mode == "int8" and calibration is not None:
        float_plan = compile_plan(model, mode="float")
        _calibrate_biases(float_plan, plan, calibration)
        report = quantization_report(
            float_plan, plan, calibration,
            threshold=threshold,
            max_delta_proba=max_delta_proba,
            max_flag_disagreement=max_flag_disagreement,
        )
        plan.quant_report = report
        plan.reset_stats()
        if not report.passed:
            raise QuantizationError(report.summary())
    return plan


def _calibrate_biases(
    float_plan: InferencePlan,
    int8_plan: InferencePlan,
    calibration: np.ndarray,
) -> None:
    """Per-channel bias correction — the int8 calibration pass.

    Weight rounding shifts each channel's mean pre-activation output by
    roughly ``E[dW @ x]`` — a *systematic* per-channel offset, not
    noise, because the calibration inputs share structure (the DCT DC
    channel dwarfs the rest).  Running the two plans in lockstep over
    the calibration batch and folding the measured per-channel mean gap
    into the int8 biases removes that offset at zero runtime cost
    (standard post-training-quantization bias correction); on the stock
    cnn-dct stack it cuts the max probability delta by ~25%.

    Corrections are measured *pre-activation* (ReLU is toggled off
    around each GEMM and re-applied manually) so the bias adjustment
    lands where the bias itself does.
    """
    fws, qws = Workspace(), Workspace()
    xf = np.asarray(calibration)
    xq = xf
    for fop, qop in zip(float_plan.ops, int8_plan.ops):
        if isinstance(qop, (_FusedConv, _FusedDense)):
            relu = qop.relu
            fop.relu = qop.relu = False
            yf = fop.run(xf, fws).copy()
            yq = qop.run(xq, qws).astype(np.float64)
            gap = yf - yq
            corr = gap.reshape(-1, gap.shape[-1]).mean(axis=0)
            qop.bias = (
                np.asarray(qop.bias, dtype=np.float64) + corr
            ).astype(np.float32)
            yq = (yq + corr).astype(np.float32)
            if relu:
                np.maximum(yf, 0.0, out=yf)
                np.maximum(yq, 0.0, out=yq)
            fop.relu = qop.relu = relu
            xf, xq = yf, yq
        else:
            xf = fop.run(xf, fws).copy()
            xq = qop.run(xq, qws).copy()


def quantization_report(
    float_plan: InferencePlan,
    int8_plan: InferencePlan,
    calibration: np.ndarray,
    threshold: float = 0.5,
    max_delta_proba: float = 0.03,
    max_flag_disagreement: float = 0.0,
) -> QuantizationReport:
    """Measure the int8 plan's drift from the float plan on a batch."""
    calibration = np.asarray(calibration)
    if len(calibration) == 0:
        raise ValueError("calibration batch must be non-empty")
    p_float = float_plan.predict_proba(calibration)
    p_int8 = int8_plan.predict_proba(calibration)
    delta = np.abs(p_float - p_int8)
    flags_differ = (p_float >= threshold) != (p_int8 >= threshold)
    return QuantizationReport(
        n_calibration=len(calibration),
        max_delta_proba=float(delta.max()),
        flag_disagreement=float(flags_differ.mean()),
        threshold=float(threshold),
        max_delta_tol=float(max_delta_proba),
        disagreement_tol=float(max_flag_disagreement),
    )

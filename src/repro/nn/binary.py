"""Binarized layers: sign-quantized weights with straight-through gradients.

The post-survey efficiency direction (binarized residual networks for
hotspot detection, TCAD'21): layout rasters are near-binary, so binarized
networks lose little accuracy while enabling bit-packed inference.

* ``BinaryDense`` / ``BinaryConv2D`` keep full-precision *latent* weights
  but compute forward passes with ``sign(w) * alpha`` where ``alpha`` is
  the per-layer mean |w| (the XNOR-Net scaling).  Gradients flow to the
  latent weights through the straight-through estimator (STE), clipping
  where |w| > 1.
* This numpy implementation demonstrates the accuracy side of the
  trade-off; the wall-clock speedup requires bit-packed kernels outside
  this repo's scope (documented in DESIGN.md).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .im2col import col2im, conv_out_size, im2col
from .init import Param, he_normal
from .layers import Layer


def binarize(weights: np.ndarray) -> Tuple[np.ndarray, float]:
    """XNOR-style quantization: (sign(w), mean|w|)."""
    alpha = float(np.abs(weights).mean())
    signs = np.where(weights >= 0, 1.0, -1.0)
    return signs, alpha


def ste_mask(weights: np.ndarray) -> np.ndarray:
    """Straight-through estimator gate: pass gradients where |w| <= 1."""
    return (np.abs(weights) <= 1.0).astype(weights.dtype)


class BinaryDense(Layer):
    """Affine layer computed with binarized weights."""

    def __init__(
        self, in_features: int, out_features: int, rng: np.random.Generator
    ) -> None:
        self.w = Param(
            he_normal(rng, (in_features, out_features), fan_in=in_features),
            name="bdense.w",
        )
        self.b = Param(np.zeros(out_features), name="bdense.b")
        self._x: Optional[np.ndarray] = None
        self._wb: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        signs, alpha = binarize(self.w.value)
        self._x = x
        self._wb = signs * alpha
        return x @ self._wb + self.b.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        # gradient wrt the *binarized* weights, gated back to the latents
        grad_wb = self._x.T @ grad
        self.w.grad += grad_wb * ste_mask(self.w.value)
        self.b.grad += grad.sum(axis=0)
        return grad @ self._wb.T

    def params(self) -> List[Param]:
        return [self.w, self.b]


class BinaryConv2D(Layer):
    """Convolution computed with binarized weights (im2col backend)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int,
        rng: np.random.Generator,
        stride: int = 1,
        pad: Optional[int] = None,
    ) -> None:
        if pad is None:
            pad = kernel // 2
        fan_in = in_channels * kernel * kernel
        self.w = Param(
            he_normal(rng, (out_channels, in_channels, kernel, kernel), fan_in),
            name="bconv.w",
        )
        self.b = Param(np.zeros(out_channels), name="bconv.b")
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        self._cols: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, ...]] = None
        self._wb_mat: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k, s, p = self.kernel, self.stride, self.pad
        oh = conv_out_size(h, k, s, p)
        ow = conv_out_size(w, k, s, p)
        cols = im2col(x, k, k, s, p)
        signs, alpha = binarize(self.w.value)
        wb = (signs * alpha).reshape(self.w.shape[0], -1)
        self._cols = cols
        self._x_shape = x.shape
        self._wb_mat = wb
        out = cols @ wb.T + self.b.value
        return out.reshape(n, oh, ow, -1).transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        n, oc, oh, ow = grad.shape
        k, s, p = self.kernel, self.stride, self.pad
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(-1, oc)
        grad_wb = (grad_mat.T @ self._cols).reshape(self.w.shape)
        self.w.grad += grad_wb * ste_mask(self.w.value)
        self.b.grad += grad_mat.sum(axis=0)
        grad_cols = grad_mat @ self._wb_mat
        return col2im(grad_cols, self._x_shape, k, k, s, p)

    def params(self) -> List[Param]:
        return [self.w, self.b]


def build_binary_cnn(
    in_channels: int,
    grid: int,
    rng: np.random.Generator,
    width: int = 24,
) -> "Sequential":
    """Binarized twin of :func:`repro.nn.zoo.build_feature_tensor_cnn`.

    The first conv and the classifier head stay full precision (standard
    BNN practice); the body is binarized.
    """
    from .layers import BatchNorm, Conv2D, Dense, Flatten, MaxPool2D, ReLU
    from .model import Sequential

    if grid % 4:
        raise ValueError("grid must be divisible by 4 (two 2x2 pools)")
    c1, c2 = width, 2 * width
    return Sequential(
        [
            Conv2D(in_channels, c1, kernel=3, rng=rng),  # full precision stem
            BatchNorm(c1),
            ReLU(),
            BinaryConv2D(c1, c1, kernel=3, rng=rng),
            BatchNorm(c1),
            ReLU(),
            MaxPool2D(2),
            BinaryConv2D(c1, c2, kernel=3, rng=rng),
            BatchNorm(c2),
            ReLU(),
            BinaryConv2D(c2, c2, kernel=3, rng=rng),
            BatchNorm(c2),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            BinaryDense(c2 * (grid // 4) ** 2, 128, rng=rng),
            ReLU(),
            Dense(128, 2, rng=rng),  # full precision head
        ]
    )

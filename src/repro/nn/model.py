"""Sequential model container with save/load."""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

import numpy as np

from .init import Param
from .layers import Layer


class Sequential:
    """A straight stack of layers with shared train/eval mode."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        if not layers:
            raise ValueError("Sequential needs at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def params(self) -> List[Param]:
        out: List[Param] = []
        for layer in self.layers:
            out.extend(layer.params())
        return out

    def train_mode(self, training: bool = True) -> None:
        for layer in self.layers:
            layer.train_mode(training)

    def n_parameters(self) -> int:
        return sum(p.value.size for p in self.params())

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # ------------------------------------------------------------------
    # persistence: parameters + batchnorm running stats
    # ------------------------------------------------------------------
    def state_arrays(self) -> dict:
        """All learnable and running state keyed deterministically."""
        state = {}
        for i, p in enumerate(self.params()):
            state[f"param_{i}"] = p.value
        for i, layer in enumerate(self.layers):
            if hasattr(layer, "running_mean"):
                state[f"bn_{i}_mean"] = layer.running_mean
                state[f"bn_{i}_var"] = layer.running_var
        return state

    def load_state_arrays(self, state: dict) -> None:
        for i, p in enumerate(self.params()):
            value = state[f"param_{i}"]
            if value.shape != p.value.shape:
                raise ValueError(
                    f"param {i} shape mismatch: {value.shape} vs {p.value.shape}"
                )
            p.value = np.array(value, dtype=np.float64)
            p.grad = np.zeros_like(p.value)
        for i, layer in enumerate(self.layers):
            if hasattr(layer, "running_mean"):
                layer.running_mean = np.array(state[f"bn_{i}_mean"])
                layer.running_var = np.array(state[f"bn_{i}_var"])

    def save(self, path: Union[str, Path]) -> None:
        np.savez_compressed(path, **self.state_arrays())

    def load(self, path: Union[str, Path]) -> None:
        with np.load(path) as data:
            self.load_state_arrays({k: data[k] for k in data.files})

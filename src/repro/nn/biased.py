"""Biased learning.

The TCAD'19 recipe for raising hotspot recall at a controlled
false-alarm cost: after normal training converges, continue training with
the *non-hotspot* targets shifted from (1, 0) to (1 - eps, eps).  The
softened targets stop non-hotspot samples from dragging nearby borderline
hotspots below the decision threshold, so detection accuracy rises;
epsilon controls how many extra false alarms that buys.

``biased_fit`` runs the two phases; the Fig-4 bench sweeps ``epsilon`` to
reproduce the accuracy/false-alarm trade-off curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .loss import soft_labels_shift
from .model import Sequential
from .trainer import History, SoftTargetTrainer, TrainConfig, Trainer


@dataclass
class BiasedConfig:
    """Two-phase schedule: normal epochs, then biased epochs at epsilon."""

    epsilon: float = 0.2
    base_epochs: int = 10
    biased_epochs: int = 5
    batch_size: int = 32
    lr: float = 1e-3
    biased_lr: float = 3e-4

    def __post_init__(self) -> None:
        if not 0.0 <= self.epsilon < 0.5:
            raise ValueError("epsilon must be in [0, 0.5)")


def biased_fit(
    model: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    rng: np.random.Generator,
    config: Optional[BiasedConfig] = None,
    class_weights: Optional[Tuple[float, float]] = None,
) -> Tuple[History, History]:
    """Phase 1: weighted CE; phase 2: soft targets with shifted NHS labels.

    Returns the two training histories.  ``epsilon = 0`` makes phase 2 a
    plain fine-tune (the ablation's control arm).
    """
    config = config or BiasedConfig()
    base = Trainer(
        TrainConfig(
            epochs=config.base_epochs,
            batch_size=config.batch_size,
            lr=config.lr,
        ),
        class_weights=class_weights,
    )
    hist1 = base.fit(model, x, y, rng)
    if config.biased_epochs <= 0:
        return hist1, History()
    targets = soft_labels_shift(y, config.epsilon)
    soft = SoftTargetTrainer(
        TrainConfig(
            epochs=config.biased_epochs,
            batch_size=config.batch_size,
            lr=config.biased_lr,
        )
    )
    hist2 = soft.fit(model, x, targets, rng)
    return hist1, hist2

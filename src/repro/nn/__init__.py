"""From-scratch neural-network framework and the deep hotspot detectors.

Layers/losses/optimizers mirror the standard deep-learning stack in plain
numpy (im2col convolutions, batchnorm, Adam); :mod:`~repro.nn.zoo` holds
the reference architectures; :class:`CNNDetector` is the survey's
generation-3 detector (DCT feature tensor + biased learning).
"""

from .biased import BiasedConfig, biased_fit
from .binary import BinaryConv2D, BinaryDense, binarize, build_binary_cnn, ste_mask
from .detector import (
    BinaryCNNDetector,
    CNNDetector,
    CNNDetectorConfig,
    InferBackendMixin,
    RasterCNNDetector,
    RasterCNNDetectorConfig,
)
from .infer import (
    BACKENDS,
    InferencePlan,
    PlanCompileError,
    QuantizationError,
    QuantizationReport,
    Workspace,
    compile_plan,
    quantization_report,
)
from .init import Param, he_normal, xavier_uniform
from .layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Layer,
    MaxPool2D,
    ReLU,
)
from .loss import (
    SoftmaxCrossEntropy,
    SoftTargetCrossEntropy,
    soft_labels_shift,
    softmax,
)
from .model import Sequential
from .optim import SGD, Adam
from .trainer import (
    History,
    SoftTargetTrainer,
    TrainConfig,
    Trainer,
    predict_proba,
)
from .zoo import build_feature_tensor_cnn, build_mlp, build_raster_cnn

__all__ = [
    "Param",
    "he_normal",
    "xavier_uniform",
    "Layer",
    "Dense",
    "Conv2D",
    "ReLU",
    "MaxPool2D",
    "GlobalAvgPool",
    "Flatten",
    "Dropout",
    "BatchNorm",
    "Sequential",
    "SGD",
    "Adam",
    "softmax",
    "SoftmaxCrossEntropy",
    "SoftTargetCrossEntropy",
    "soft_labels_shift",
    "Trainer",
    "SoftTargetTrainer",
    "TrainConfig",
    "History",
    "predict_proba",
    "BiasedConfig",
    "biased_fit",
    "build_feature_tensor_cnn",
    "build_raster_cnn",
    "build_mlp",
    "CNNDetector",
    "CNNDetectorConfig",
    "RasterCNNDetector",
    "RasterCNNDetectorConfig",
    "BinaryCNNDetector",
    "BinaryDense",
    "BinaryConv2D",
    "binarize",
    "ste_mask",
    "build_binary_cnn",
    "BACKENDS",
    "InferencePlan",
    "InferBackendMixin",
    "PlanCompileError",
    "QuantizationError",
    "QuantizationReport",
    "Workspace",
    "compile_plan",
    "quantization_report",
]

"""Parameter containers and weight initializers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class Param:
    """A trainable array and its gradient accumulator."""

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = "") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.value.shape

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Param({self.name or 'unnamed'}, shape={self.value.shape})"


def he_normal(
    rng: np.random.Generator, shape: Tuple[int, ...], fan_in: int
) -> np.ndarray:
    """He (Kaiming) normal init for ReLU networks."""
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def xavier_uniform(
    rng: np.random.Generator, shape: Tuple[int, ...], fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot uniform init for linear/tanh layers."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)

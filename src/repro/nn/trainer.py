"""Mini-batch training loop.

One trainer serves every network in the zoo: shuffled mini-batches, an
optimizer, a hard- or soft-target loss, optional validation tracking with
early stopping, and a :class:`History` record the figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from .loss import SoftmaxCrossEntropy, SoftTargetCrossEntropy, softmax
from .model import Sequential
from .optim import Adam, Optimizer


@dataclass
class TrainConfig:
    epochs: int = 12
    batch_size: int = 32
    lr: float = 1e-3
    weight_decay: float = 1e-4
    early_stop_patience: Optional[int] = None  # epochs without val improvement
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 1 or self.batch_size < 1:
            raise ValueError("epochs and batch_size must be >= 1")


@dataclass
class History:
    train_loss: List[float] = field(default_factory=list)
    val_loss: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)


def predict_proba(
    model: Sequential, x: np.ndarray, batch_size: int = 128
) -> np.ndarray:
    """P(hotspot) for a batch of inputs, in eval mode."""
    model.train_mode(False)
    out = np.empty(len(x))
    for start in range(0, len(x), batch_size):
        logits = model.forward(x[start : start + batch_size])
        out[start : start + batch_size] = softmax(logits)[:, 1]
    model.train_mode(True)
    return out


def _eval_loss(
    model: Sequential, loss: SoftmaxCrossEntropy, x: np.ndarray, y: np.ndarray,
    batch_size: int,
) -> Tuple[float, float]:
    """(mean loss, plain accuracy) in eval mode."""
    model.train_mode(False)
    total, correct = 0.0, 0
    n_batches = 0
    for start in range(0, len(x), batch_size):
        xb = x[start : start + batch_size]
        yb = y[start : start + batch_size]
        logits = model.forward(xb)
        total += loss.forward(logits, yb)
        correct += int((logits.argmax(axis=1) == yb).sum())
        n_batches += 1
    model.train_mode(True)
    return total / max(n_batches, 1), correct / len(x)


class Trainer:
    """Fits a Sequential model on (x, y) arrays with hard labels."""

    def __init__(
        self,
        config: Optional[TrainConfig] = None,
        class_weights: Optional[Tuple[float, float]] = None,
        make_optimizer: Optional[Callable[[list], Optimizer]] = None,
    ) -> None:
        self.config = config or TrainConfig()
        self.class_weights = class_weights
        self._make_optimizer = make_optimizer

    def fit(
        self,
        model: Sequential,
        x: np.ndarray,
        y: np.ndarray,
        rng: np.random.Generator,
        x_val: Optional[np.ndarray] = None,
        y_val: Optional[np.ndarray] = None,
    ) -> History:
        cfg = self.config
        loss = SoftmaxCrossEntropy(class_weights=self.class_weights)
        if self._make_optimizer is not None:
            optimizer = self._make_optimizer(model.params())
        else:
            optimizer = Adam(
                model.params(), lr=cfg.lr, weight_decay=cfg.weight_decay
            )
        history = History()
        best_val = np.inf
        best_state = None
        stale = 0
        model.train_mode(True)
        for epoch in range(cfg.epochs):
            order = rng.permutation(len(x))
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, len(x), cfg.batch_size):
                idx = order[start : start + cfg.batch_size]
                if len(idx) < 2:
                    continue  # batchnorm needs > 1 sample
                optimizer.zero_grad()
                logits = model.forward(x[idx])
                batch_loss = loss.forward(logits, y[idx])
                model.backward(loss.backward())
                optimizer.step()
                epoch_loss += batch_loss
                n_batches += 1
            history.train_loss.append(epoch_loss / max(n_batches, 1))
            if x_val is not None and y_val is not None:
                val_loss, val_acc = _eval_loss(
                    model, loss, x_val, y_val, cfg.batch_size
                )
                history.val_loss.append(val_loss)
                history.val_accuracy.append(val_acc)
                if cfg.early_stop_patience is not None:
                    if val_loss < best_val - 1e-6:
                        best_val = val_loss
                        best_state = {
                            k: v.copy() for k, v in model.state_arrays().items()
                        }
                        stale = 0
                    else:
                        stale += 1
                        if stale > cfg.early_stop_patience:
                            break
            if cfg.verbose:  # pragma: no cover - logging only
                msg = f"epoch {epoch + 1}: loss={history.train_loss[-1]:.4f}"
                if history.val_loss:
                    msg += f" val={history.val_loss[-1]:.4f}"
                print(msg)
        if best_state is not None:
            model.load_state_arrays(best_state)
        return history


class SoftTargetTrainer:
    """Fits against (N, 2) soft targets (biased learning's second phase)."""

    def __init__(self, config: Optional[TrainConfig] = None) -> None:
        self.config = config or TrainConfig()

    def fit(
        self,
        model: Sequential,
        x: np.ndarray,
        targets: np.ndarray,
        rng: np.random.Generator,
    ) -> History:
        cfg = self.config
        loss = SoftTargetCrossEntropy()
        optimizer = Adam(model.params(), lr=cfg.lr, weight_decay=cfg.weight_decay)
        history = History()
        model.train_mode(True)
        for _epoch in range(cfg.epochs):
            order = rng.permutation(len(x))
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, len(x), cfg.batch_size):
                idx = order[start : start + cfg.batch_size]
                if len(idx) < 2:
                    continue
                optimizer.zero_grad()
                logits = model.forward(x[idx])
                epoch_loss += loss.forward(logits, targets[idx])
                model.backward(loss.backward())
                optimizer.step()
                n_batches += 1
            history.train_loss.append(epoch_loss / max(n_batches, 1))
        return history

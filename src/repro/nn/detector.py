"""CNN hotspot detector: the survey's generation-3 system.

``CNNDetector`` composes the full deep recipe:

1. minority up-sampling with mirror-flip augmentation,
2. block-DCT feature-tensor extraction,
3. the feature-tensor CNN from the zoo,
4. weighted cross-entropy training, optionally followed by the
   biased-learning phase,
5. softmax P(hotspot) scores through the common Detector API.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..contracts import shaped
from ..core.detector import Detector, FitReport
from ..core.registry import register
from ..data.dataset import ClipDataset
from ..data.imbalance import class_weights, upsample_minority
from ..features.dct import DCTFeatureTensor
from ..geometry.layout import Clip
from .biased import BiasedConfig, biased_fit
from .infer import BACKENDS, InferencePlan, compile_plan
from .model import Sequential
from .trainer import TrainConfig, Trainer, predict_proba
from .zoo import build_feature_tensor_cnn, build_raster_cnn

#: windows of the fit-time calibration split retained for the int8 gate
_MAX_CALIBRATION = 256


class InferBackendMixin:
    """Pluggable inference backend for model-backed detectors.

    ``backend`` selects how ``predict_proba*`` runs the trained model:

    * ``"layers"`` — the training-path layer-by-layer ``Model.forward``,
    * ``"fused"`` — a compiled float64 :class:`InferencePlan` (BN/ReLU
      folding, persistent workspace; numerically the same function),
    * ``"fused-int8"`` — the quantized plan; when the detector retained
      a fit-time calibration batch the compile runs the accuracy-delta
      gate against the float plan and refuses a lossy quantization.

    Plans are compiled lazily, invalidated on (re)fit, and dropped from
    pickles — a spawned scan worker recompiles from the weights it
    receives rather than shipping workspace buffers across processes.
    """

    _plan: Optional[InferencePlan] = None
    _calibration_x: Optional[np.ndarray] = None

    @property
    def backend(self) -> str:
        return getattr(self.config, "backend", "layers")

    def set_backend(
        self, backend: str, calibration: Optional[np.ndarray] = None
    ) -> None:
        """Select the inference backend; compiles eagerly when fitted."""
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown inference backend {backend!r}; expected one of "
                f"{BACKENDS}"
            )
        self.config.backend = backend
        self._plan = None
        if calibration is not None:
            self._calibration_x = np.asarray(calibration)
        if self.model is not None and backend != "layers":
            self._get_plan()  # fail fast: compile/quantization errors

    def _get_plan(self) -> Optional[InferencePlan]:
        if self.backend == "layers" or self.model is None:
            return None
        if self._plan is None:
            mode = "int8" if self.backend == "fused-int8" else "float"
            self._plan = compile_plan(
                self.model,
                mode=mode,
                calibration=self._calibration_x if mode == "int8" else None,
                threshold=self.threshold,
            )
        return self._plan

    def _predict_array(
        self, x: np.ndarray, batch_size: Optional[int] = None
    ) -> np.ndarray:
        """Score a feature/raster tensor through the selected backend.

        ``batch_size=None`` defers to the plan's
        :attr:`~repro.nn.infer.InferencePlan.preferred_batch` (dtype-
        sized for cache residency); the layers path keeps its historical
        128.
        """
        plan = self._get_plan()
        if plan is not None:
            return plan.predict_proba(
                x, batch_size=batch_size or plan.preferred_batch
            )
        return predict_proba(self.model, x, batch_size=batch_size or 128)

    def infer_stats(self) -> dict:
        """Counters from the compiled plan (empty for ``layers``)."""
        return dict(self._plan.stats) if self._plan is not None else {}

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_plan"] = None  # recompiled lazily in the receiving process
        return state


@dataclass
class CNNDetectorConfig:
    epochs: int = 12
    biased_epsilon: Optional[float] = 0.15  # None disables the biased phase
    biased_epochs: int = 4
    batch_size: int = 32
    lr: float = 1e-3
    upsample_ratio: Optional[float] = 0.5
    mirror: bool = True
    dct_block: int = 8
    dct_keep: int = 4
    width: int = 24
    seed_fallback: int = 0
    calibrate: Optional[str] = "fa"  # None | "f1" | "fa"
    fa_cap: float = 0.10  # false-alarm-rate budget for "fa" calibration
    backend: str = "layers"  # "layers" | "fused" | "fused-int8"


class CNNDetector(InferBackendMixin, Detector):
    """Feature-tensor CNN with biased learning."""

    name = "cnn-dct"

    def __init__(self, config: Optional[CNNDetectorConfig] = None) -> None:
        self.config = config or CNNDetectorConfig()
        if self.config.backend not in BACKENDS:
            raise ValueError(
                f"unknown inference backend {self.config.backend!r}; "
                f"expected one of {BACKENDS}"
            )
        self.extractor = DCTFeatureTensor(
            block=self.config.dct_block, keep=self.config.dct_keep
        )
        self.model: Optional[Sequential] = None
        self._fitted_grid: int = 0
        self._plan = None
        self._calibration_x = None

    def _vectorize(self, clips: Sequence[Clip]) -> np.ndarray:
        return self.extractor.extract_many(clips)

    def _build_model(
        self, channels: int, grid: int, rng: np.random.Generator
    ) -> Sequential:
        return build_feature_tensor_cnn(
            channels, grid, rng=rng, width=self.config.width
        )

    def fit(
        self, train: ClipDataset, rng: Optional[np.random.Generator] = None
    ) -> FitReport:
        cfg = self.config
        rng = rng or np.random.default_rng(cfg.seed_fallback)
        t0 = time.perf_counter()
        self._plan = None  # new weights invalidate any compiled plan
        self._calibration_x = None
        calibration = None
        if cfg.calibrate is not None and train.n_hotspots >= 4:
            train, calibration = train.split(0.25, rng)
            if calibration.n_hotspots == 0 or train.n_hotspots == 0:
                train = train.extend(calibration.clips, calibration.labels)
                calibration = None
        if cfg.upsample_ratio is not None and train.n_hotspots > 0:
            train = upsample_minority(
                train, rng, target_ratio=cfg.upsample_ratio, mirror=cfg.mirror
            )
        x = self._vectorize(train.clips)
        y = train.labels
        channels, grid = x.shape[1], x.shape[2]
        self._fitted_grid = grid
        self.model = self._build_model(channels, grid, rng)
        weights = class_weights(y)
        if cfg.biased_epsilon is not None:
            biased_fit(
                self.model,
                x,
                y,
                rng,
                config=BiasedConfig(
                    epsilon=cfg.biased_epsilon,
                    base_epochs=cfg.epochs,
                    biased_epochs=cfg.biased_epochs,
                    batch_size=cfg.batch_size,
                    lr=cfg.lr,
                ),
                class_weights=weights,
            )
        else:
            trainer = Trainer(
                TrainConfig(
                    epochs=cfg.epochs, batch_size=cfg.batch_size, lr=cfg.lr
                ),
                class_weights=weights,
            )
            trainer.fit(self.model, x, y, rng)
        if calibration is not None:
            from ..core.threshold import pick_threshold

            x_cal = self._vectorize(calibration.clips)
            # retained for the int8 quantization accuracy-delta gate
            self._calibration_x = x_cal[:_MAX_CALIBRATION]
            scores = predict_proba(self.model, x_cal)
            self.threshold = pick_threshold(
                cfg.calibrate, calibration.labels, scores, cfg.fa_cap
            )
        return FitReport(
            train_seconds=time.perf_counter() - t0,
            n_train=len(train),
            notes=f"params={self.model.n_parameters()}",
        )

    @shaped("[n]->(n,):float64")
    def predict_proba(self, clips: Sequence[Clip]) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("CNNDetector not fitted")
        if len(clips) == 0:
            return np.empty(0, dtype=np.float64)
        return self._predict_array(self._vectorize(clips))

    @shaped("(n,h,w)->(n,):float64")
    def predict_proba_rasters(self, rasters: np.ndarray) -> np.ndarray:
        """Score pre-rendered window rasters: batched DCT -> CNN forward."""
        if self.model is None:
            raise RuntimeError("CNNDetector not fitted")
        rasters = np.asarray(rasters, dtype=np.float64)
        if len(rasters) == 0:
            return np.empty(0, dtype=np.float64)
        return self._predict_array(self.extractor.extract_batch(rasters))

    @property
    def raster_pixel_nm(self) -> int:
        """Pixel pitch the raster-plane scan must rasterize at."""
        return int(self.extractor.pixel_nm)

    # ------------------------------------------------------------------
    # plane-shared features: the scan engine's band fast path
    # ------------------------------------------------------------------
    def plane_feature_block(self) -> Optional[int]:
        """Raster-pixel block pitch of the shareable feature grid.

        The block DCT is computed per ``block x block`` pixel tile
        independently, so when every scan window lands on a tile
        boundary the whole band plane can be transformed *once* and
        each window's feature tensor becomes a slice of the plane
        tensor.  At the survey geometry windows overlap ~9x, so this
        divides the DCT work by the overlap factor and shrinks the
        per-window copy from raster pixels to kept coefficients.
        """
        return int(self.extractor.block)

    def plane_feature_tensor(self, plane: np.ndarray) -> np.ndarray:
        """Transform a ``(H, W)`` raster plane into ``(keep^2, H/B, W/B)``.

        Bit-identical per block to :meth:`predict_proba_rasters`'s
        batched extraction — the DCT never mixes blocks, so a window's
        slice of this tensor equals the tensor of the window's raster.
        """
        from ..features.dct import feature_tensor_batch

        plane = np.asarray(plane, dtype=np.float64)
        return feature_tensor_batch(
            plane[None], self.extractor.block, self.extractor.keep
        )[0]

    @shaped("(n,c,h,w)->(n,):float64")
    def predict_proba_features(self, feats: np.ndarray) -> np.ndarray:
        """Score pre-extracted feature tensors (plane slices)."""
        if self.model is None:
            raise RuntimeError("CNNDetector not fitted")
        feats = np.asarray(feats, dtype=np.float64)
        if len(feats) == 0:
            return np.empty(0, dtype=np.float64)
        return self._predict_array(feats)

    # ------------------------------------------------------------------
    # persistence: model weights + detector config/threshold in one npz
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Save weights, running stats, threshold and architecture dims."""
        if self.model is None:
            raise RuntimeError("cannot save an unfitted CNNDetector")
        state = self.model.state_arrays()
        state["__threshold"] = np.array([self.threshold])
        state["__backend"] = np.array(self.config.backend)
        state["__arch"] = np.array(
            [
                self.config.dct_block,
                self.config.dct_keep,
                self.config.width,
                self._fitted_grid,
            ]
        )
        np.savez_compressed(path, **state)

    @classmethod
    def load(cls, path) -> "CNNDetector":
        """Rebuild a fitted detector from :meth:`save` output."""
        with np.load(path) as data:
            state = {k: data[k] for k in data.files}
        block, keep, width, grid = (int(v) for v in state.pop("__arch"))
        threshold = float(state.pop("__threshold")[0])
        backend = str(state.pop("__backend", "layers"))
        det = cls(
            CNNDetectorConfig(
                dct_block=block, dct_keep=keep, width=width, backend=backend
            )
        )
        det.model = build_feature_tensor_cnn(
            keep * keep, grid, rng=np.random.default_rng(0), width=width
        )
        det.model.load_state_arrays(state)
        det.model.train_mode(False)
        det.threshold = threshold
        det._fitted_grid = grid
        return det


class BinaryCNNDetector(CNNDetector):
    """Binarized-weight twin of :class:`CNNDetector` (TCAD'21 direction).

    Same input representation and training recipe; the convolutional body
    and the first dense layer are weight-binarized with straight-through
    gradients.  Note that :meth:`CNNDetector.save`/:meth:`load` are not
    supported for the binary variant (the architectures differ).
    """

    name = "bnn-dct"

    def _build_model(
        self, channels: int, grid: int, rng: np.random.Generator
    ) -> Sequential:
        from .binary import build_binary_cnn

        return build_binary_cnn(channels, grid, rng=rng, width=self.config.width)

    def save(self, path) -> None:  # pragma: no cover - explicit unsupport
        raise NotImplementedError("BinaryCNNDetector persistence not supported")

    @classmethod
    def load(cls, path):  # pragma: no cover - explicit unsupport
        raise NotImplementedError("BinaryCNNDetector persistence not supported")


@dataclass
class RasterCNNDetectorConfig:
    epochs: int = 10
    batch_size: int = 16
    lr: float = 1e-3
    pixel_nm: int = 8
    upsample_ratio: Optional[float] = 0.5
    width: int = 8
    backend: str = "layers"  # "layers" | "fused" | "fused-int8"


class RasterCNNDetector(InferBackendMixin, Detector):
    """CNN on the raw clip raster (the no-DCT ablation arm)."""

    name = "cnn-raster"

    def __init__(self, config: Optional[RasterCNNDetectorConfig] = None) -> None:
        self.config = config or RasterCNNDetectorConfig()
        if self.config.backend not in BACKENDS:
            raise ValueError(
                f"unknown inference backend {self.config.backend!r}; "
                f"expected one of {BACKENDS}"
            )
        self.model: Optional[Sequential] = None
        self._plan = None
        self._calibration_x = None

    def _vectorize(self, clips: Sequence[Clip]) -> np.ndarray:
        from ..geometry.rasterize import rasterize_clip

        rasters = [
            rasterize_clip(clip, self.config.pixel_nm, antialias=True)
            for clip in clips
        ]
        return np.stack(rasters)[:, None, :, :]

    def fit(
        self, train: ClipDataset, rng: Optional[np.random.Generator] = None
    ) -> FitReport:
        cfg = self.config
        rng = rng or np.random.default_rng(0)
        t0 = time.perf_counter()
        self._plan = None  # new weights invalidate any compiled plan
        self._calibration_x = None
        if cfg.upsample_ratio is not None and train.n_hotspots > 0:
            train = upsample_minority(train, rng, target_ratio=cfg.upsample_ratio)
        x = self._vectorize(train.clips)
        y = train.labels
        # no held-out split here; gate int8 against training inputs
        self._calibration_x = x[:_MAX_CALIBRATION]
        self.model = build_raster_cnn(x.shape[-1], rng=rng, width=cfg.width)
        trainer = Trainer(
            TrainConfig(epochs=cfg.epochs, batch_size=cfg.batch_size, lr=cfg.lr),
            class_weights=class_weights(y),
        )
        trainer.fit(self.model, x, y, rng)
        return FitReport(
            train_seconds=time.perf_counter() - t0, n_train=len(train)
        )

    @shaped("[n]->(n,):float64")
    def predict_proba(self, clips: Sequence[Clip]) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("RasterCNNDetector not fitted")
        if len(clips) == 0:
            return np.empty(0, dtype=np.float64)
        return self._predict_array(self._vectorize(clips), batch_size=32)

    @shaped("(n,h,w)->(n,):float64")
    def predict_proba_rasters(self, rasters: np.ndarray) -> np.ndarray:
        """Score pre-rendered window rasters directly (no re-rasterize)."""
        if self.model is None:
            raise RuntimeError("RasterCNNDetector not fitted")
        rasters = np.asarray(rasters, dtype=np.float64)
        if len(rasters) == 0:
            return np.empty(0, dtype=np.float64)
        return self._predict_array(rasters[:, None, :, :], batch_size=32)

    @property
    def raster_pixel_nm(self) -> int:
        """Pixel pitch the raster-plane scan must rasterize at."""
        return int(self.config.pixel_nm)


register("cnn-dct", CNNDetector)
register("cnn-raster", RasterCNNDetector)
register("bnn-dct", BinaryCNNDetector)

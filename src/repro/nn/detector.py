"""CNN hotspot detector: the survey's generation-3 system.

``CNNDetector`` composes the full deep recipe:

1. minority up-sampling with mirror-flip augmentation,
2. block-DCT feature-tensor extraction,
3. the feature-tensor CNN from the zoo,
4. weighted cross-entropy training, optionally followed by the
   biased-learning phase,
5. softmax P(hotspot) scores through the common Detector API.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..contracts import shaped
from ..core.detector import Detector, FitReport
from ..core.registry import register
from ..data.dataset import ClipDataset
from ..data.imbalance import class_weights, upsample_minority
from ..features.dct import DCTFeatureTensor
from ..geometry.layout import Clip
from .biased import BiasedConfig, biased_fit
from .model import Sequential
from .trainer import TrainConfig, Trainer, predict_proba
from .zoo import build_feature_tensor_cnn, build_raster_cnn


@dataclass
class CNNDetectorConfig:
    epochs: int = 12
    biased_epsilon: Optional[float] = 0.15  # None disables the biased phase
    biased_epochs: int = 4
    batch_size: int = 32
    lr: float = 1e-3
    upsample_ratio: Optional[float] = 0.5
    mirror: bool = True
    dct_block: int = 8
    dct_keep: int = 4
    width: int = 24
    seed_fallback: int = 0
    calibrate: Optional[str] = "fa"  # None | "f1" | "fa"
    fa_cap: float = 0.10  # false-alarm-rate budget for "fa" calibration


class CNNDetector(Detector):
    """Feature-tensor CNN with biased learning."""

    name = "cnn-dct"

    def __init__(self, config: Optional[CNNDetectorConfig] = None) -> None:
        self.config = config or CNNDetectorConfig()
        self.extractor = DCTFeatureTensor(
            block=self.config.dct_block, keep=self.config.dct_keep
        )
        self.model: Optional[Sequential] = None
        self._fitted_grid: int = 0

    def _vectorize(self, clips: Sequence[Clip]) -> np.ndarray:
        return self.extractor.extract_many(clips)

    def _build_model(
        self, channels: int, grid: int, rng: np.random.Generator
    ) -> Sequential:
        return build_feature_tensor_cnn(
            channels, grid, rng=rng, width=self.config.width
        )

    def fit(
        self, train: ClipDataset, rng: Optional[np.random.Generator] = None
    ) -> FitReport:
        cfg = self.config
        rng = rng or np.random.default_rng(cfg.seed_fallback)
        t0 = time.perf_counter()
        calibration = None
        if cfg.calibrate is not None and train.n_hotspots >= 4:
            train, calibration = train.split(0.25, rng)
            if calibration.n_hotspots == 0 or train.n_hotspots == 0:
                train = train.extend(calibration.clips, calibration.labels)
                calibration = None
        if cfg.upsample_ratio is not None and train.n_hotspots > 0:
            train = upsample_minority(
                train, rng, target_ratio=cfg.upsample_ratio, mirror=cfg.mirror
            )
        x = self._vectorize(train.clips)
        y = train.labels
        channels, grid = x.shape[1], x.shape[2]
        self._fitted_grid = grid
        self.model = self._build_model(channels, grid, rng)
        weights = class_weights(y)
        if cfg.biased_epsilon is not None:
            biased_fit(
                self.model,
                x,
                y,
                rng,
                config=BiasedConfig(
                    epsilon=cfg.biased_epsilon,
                    base_epochs=cfg.epochs,
                    biased_epochs=cfg.biased_epochs,
                    batch_size=cfg.batch_size,
                    lr=cfg.lr,
                ),
                class_weights=weights,
            )
        else:
            trainer = Trainer(
                TrainConfig(
                    epochs=cfg.epochs, batch_size=cfg.batch_size, lr=cfg.lr
                ),
                class_weights=weights,
            )
            trainer.fit(self.model, x, y, rng)
        if calibration is not None:
            from ..core.threshold import pick_threshold

            scores = self.predict_proba(calibration.clips)
            self.threshold = pick_threshold(
                cfg.calibrate, calibration.labels, scores, cfg.fa_cap
            )
        return FitReport(
            train_seconds=time.perf_counter() - t0,
            n_train=len(train),
            notes=f"params={self.model.n_parameters()}",
        )

    @shaped("[n]->(n,):float64")
    def predict_proba(self, clips: Sequence[Clip]) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("CNNDetector not fitted")
        if len(clips) == 0:
            return np.empty(0, dtype=np.float64)
        return predict_proba(self.model, self._vectorize(clips))

    @shaped("(n,h,w)->(n,):float64")
    def predict_proba_rasters(self, rasters: np.ndarray) -> np.ndarray:
        """Score pre-rendered window rasters: batched DCT -> CNN forward."""
        if self.model is None:
            raise RuntimeError("CNNDetector not fitted")
        rasters = np.asarray(rasters, dtype=np.float64)
        if len(rasters) == 0:
            return np.empty(0, dtype=np.float64)
        return predict_proba(self.model, self.extractor.extract_batch(rasters))

    @property
    def raster_pixel_nm(self) -> int:
        """Pixel pitch the raster-plane scan must rasterize at."""
        return int(self.extractor.pixel_nm)

    # ------------------------------------------------------------------
    # persistence: model weights + detector config/threshold in one npz
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Save weights, running stats, threshold and architecture dims."""
        if self.model is None:
            raise RuntimeError("cannot save an unfitted CNNDetector")
        state = self.model.state_arrays()
        state["__threshold"] = np.array([self.threshold])
        state["__arch"] = np.array(
            [
                self.config.dct_block,
                self.config.dct_keep,
                self.config.width,
                self._fitted_grid,
            ]
        )
        np.savez_compressed(path, **state)

    @classmethod
    def load(cls, path) -> "CNNDetector":
        """Rebuild a fitted detector from :meth:`save` output."""
        with np.load(path) as data:
            state = {k: data[k] for k in data.files}
        block, keep, width, grid = (int(v) for v in state.pop("__arch"))
        threshold = float(state.pop("__threshold")[0])
        det = cls(CNNDetectorConfig(dct_block=block, dct_keep=keep, width=width))
        det.model = build_feature_tensor_cnn(
            keep * keep, grid, rng=np.random.default_rng(0), width=width
        )
        det.model.load_state_arrays(state)
        det.model.train_mode(False)
        det.threshold = threshold
        det._fitted_grid = grid
        return det


class BinaryCNNDetector(CNNDetector):
    """Binarized-weight twin of :class:`CNNDetector` (TCAD'21 direction).

    Same input representation and training recipe; the convolutional body
    and the first dense layer are weight-binarized with straight-through
    gradients.  Note that :meth:`CNNDetector.save`/:meth:`load` are not
    supported for the binary variant (the architectures differ).
    """

    name = "bnn-dct"

    def _build_model(
        self, channels: int, grid: int, rng: np.random.Generator
    ) -> Sequential:
        from .binary import build_binary_cnn

        return build_binary_cnn(channels, grid, rng=rng, width=self.config.width)

    def save(self, path) -> None:  # pragma: no cover - explicit unsupport
        raise NotImplementedError("BinaryCNNDetector persistence not supported")

    @classmethod
    def load(cls, path):  # pragma: no cover - explicit unsupport
        raise NotImplementedError("BinaryCNNDetector persistence not supported")


@dataclass
class RasterCNNDetectorConfig:
    epochs: int = 10
    batch_size: int = 16
    lr: float = 1e-3
    pixel_nm: int = 8
    upsample_ratio: Optional[float] = 0.5
    width: int = 8


class RasterCNNDetector(Detector):
    """CNN on the raw clip raster (the no-DCT ablation arm)."""

    name = "cnn-raster"

    def __init__(self, config: Optional[RasterCNNDetectorConfig] = None) -> None:
        self.config = config or RasterCNNDetectorConfig()
        self.model: Optional[Sequential] = None

    def _vectorize(self, clips: Sequence[Clip]) -> np.ndarray:
        from ..geometry.rasterize import rasterize_clip

        rasters = [
            rasterize_clip(clip, self.config.pixel_nm, antialias=True)
            for clip in clips
        ]
        return np.stack(rasters)[:, None, :, :]

    def fit(
        self, train: ClipDataset, rng: Optional[np.random.Generator] = None
    ) -> FitReport:
        cfg = self.config
        rng = rng or np.random.default_rng(0)
        t0 = time.perf_counter()
        if cfg.upsample_ratio is not None and train.n_hotspots > 0:
            train = upsample_minority(train, rng, target_ratio=cfg.upsample_ratio)
        x = self._vectorize(train.clips)
        y = train.labels
        self.model = build_raster_cnn(x.shape[-1], rng=rng, width=cfg.width)
        trainer = Trainer(
            TrainConfig(epochs=cfg.epochs, batch_size=cfg.batch_size, lr=cfg.lr),
            class_weights=class_weights(y),
        )
        trainer.fit(self.model, x, y, rng)
        return FitReport(
            train_seconds=time.perf_counter() - t0, n_train=len(train)
        )

    @shaped("[n]->(n,):float64")
    def predict_proba(self, clips: Sequence[Clip]) -> np.ndarray:
        if self.model is None:
            raise RuntimeError("RasterCNNDetector not fitted")
        if len(clips) == 0:
            return np.empty(0, dtype=np.float64)
        return predict_proba(self.model, self._vectorize(clips), batch_size=32)

    @shaped("(n,h,w)->(n,):float64")
    def predict_proba_rasters(self, rasters: np.ndarray) -> np.ndarray:
        """Score pre-rendered window rasters directly (no re-rasterize)."""
        if self.model is None:
            raise RuntimeError("RasterCNNDetector not fitted")
        rasters = np.asarray(rasters, dtype=np.float64)
        if len(rasters) == 0:
            return np.empty(0, dtype=np.float64)
        return predict_proba(self.model, rasters[:, None, :, :], batch_size=32)

    @property
    def raster_pixel_nm(self) -> int:
        """Pixel pitch the raster-plane scan must rasterize at."""
        return int(self.config.pixel_nm)


register("cnn-dct", CNNDetector)
register("cnn-raster", RasterCNNDetector)
register("bnn-dct", BinaryCNNDetector)

"""im2col / col2im for convolution as matrix multiplication.

Convolution over ``(N, C, H, W)`` batches is reshaped into one big GEMM:
``im2col`` unfolds every receptive field into a column, the kernel becomes
a ``(out_channels, C*kh*kw)`` matrix, and the convolution is a single
``@``.  ``col2im`` scatters column gradients back, accumulating where
fields overlap — exactly the transpose of the gather.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def conv_out_size(size: int, kernel: int, stride: int, pad: int) -> int:
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive conv output: size={size} kernel={kernel} "
            f"stride={stride} pad={pad}"
        )
    return out


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int
) -> np.ndarray:
    """Unfold ``(N, C, H, W)`` into ``(N * oh * ow, C * kh * kw)``."""
    n, c, h, w = x.shape
    oh = conv_out_size(h, kh, stride, pad)
    ow = conv_out_size(w, kw, stride, pad)
    if pad:
        x = np.pad(
            x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant"
        )
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:stride, j:j_max:stride]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, c * kh * kw)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold columns back into ``(N, C, H, W)``, accumulating overlaps."""
    n, c, h, w = x_shape
    oh = conv_out_size(h, kh, stride, pad)
    ow = conv_out_size(w, kw, stride, pad)
    cols6 = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    x_pad = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            x_pad[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, :, i, j, :, :]
    if pad:
        return x_pad[:, :, pad:-pad, pad:-pad]
    return x_pad

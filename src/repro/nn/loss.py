"""Losses.

``SoftmaxCrossEntropy`` is the standard 2-class head.  Its *biased*
variant weights the two classes asymmetrically — the mechanism behind the
survey's biased-learning recipe (penalize missed hotspots more than false
alarms, or vice versa).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class SoftmaxCrossEntropy:
    """Mean softmax cross-entropy with optional per-class weights.

    ``forward(logits, labels)`` returns the scalar loss;
    ``backward()`` returns d(loss)/d(logits).
    """

    def __init__(self, class_weights: Optional[Tuple[float, float]] = None) -> None:
        self.class_weights = class_weights
        self._cache: Optional[tuple] = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2 or logits.shape[1] != 2:
            raise ValueError("expected (N, 2) logits")
        labels = np.asarray(labels, dtype=np.int64)
        probs = softmax(logits)
        n = len(labels)
        if self.class_weights is None:
            weights = np.ones(n)  # lint: disable=no-per-call-alloc-in-forward  (training-only loss; never on the inference path)
        else:
            w = np.asarray(self.class_weights, dtype=np.float64)
            weights = w[labels]
        weights = weights / weights.sum() * n  # keep mean weight 1
        eps = 1e-12
        nll = -np.log(probs[np.arange(n), labels] + eps)
        self._cache = (probs, labels, weights)
        return float((weights * nll).mean())

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("forward() before backward()")
        probs, labels, weights = self._cache
        n = len(labels)
        grad = probs.copy()
        grad[np.arange(n), labels] -= 1.0
        return grad * weights[:, None] / n


def soft_labels_shift(labels: np.ndarray, epsilon: float) -> np.ndarray:
    """Biased-learning ground-truth shift for the non-hotspot class.

    Following the biased-learning idea (Yang et al., TCAD'19): instead of
    training non-hotspots toward the hard target (1, 0), shift it to
    ``(1 - eps, eps)``.  Non-hotspot samples then stop dragging nearby
    borderline *hotspots* below the decision threshold, so hotspot recall
    rises — the price is a controlled increase in false alarms.  Epsilon
    is the knob on that trade-off.  Returns an ``(N, 2)`` soft-target
    matrix.
    """
    if not 0.0 <= epsilon < 0.5:
        raise ValueError("epsilon must be in [0, 0.5)")
    labels = np.asarray(labels, dtype=np.int64)
    targets = np.zeros((len(labels), 2), dtype=np.float64)
    targets[labels == 1, 1] = 1.0
    targets[labels == 0, 0] = 1.0 - epsilon
    targets[labels == 0, 1] = epsilon
    return targets


class SoftTargetCrossEntropy:
    """Cross-entropy against soft (probability) targets."""

    def __init__(self) -> None:
        self._cache: Optional[tuple] = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        probs = softmax(logits)
        eps = 1e-12
        self._cache = (probs, targets)
        return float(-(targets * np.log(probs + eps)).sum(axis=1).mean())

    def backward(self) -> np.ndarray:
        probs, targets = self._cache
        return (probs - targets) / len(targets)

"""Optimizers: SGD with momentum, and Adam."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .init import Param


class Optimizer:
    def __init__(self, params: Sequence[Param], lr: float) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.params = list(params)
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with classical momentum and decoupled weight decay."""

    def __init__(
        self,
        params: Sequence[Param],
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[np.ndarray] = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if self.weight_decay:
                p.value *= 1.0 - self.lr * self.weight_decay
            v *= self.momentum
            v -= self.lr * p.grad
            p.value += v


class Adam(Optimizer):
    """Adam with bias correction and decoupled weight decay (AdamW-style)."""

    def __init__(
        self,
        params: Sequence[Param],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bc1 = 1.0 - b1**self._t
        bc2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if self.weight_decay:
                p.value *= 1.0 - self.lr * self.weight_decay
            m *= b1
            m += (1 - b1) * p.grad
            v *= b2
            v += (1 - b2) * p.grad**2
            p.value -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

"""Hierarchical span tracing and progress heartbeats for scan runs.

The observability tentpole has three sinks; this module owns two of them:

* **span tracer** — a scan is a tree of spans (``scan`` → ``phase`` →
  ``chunk``).  Every span open/close is one JSON line in the scan's
  trace file, and a close record carries wall time, CPU time, and the
  *delta* of every telemetry counter that moved while the span was open
  — so a chunk span shows exactly how many cache hits, retries, or
  degradations it was responsible for.  Point **events** (checkpoint
  saves, pool retries, cache saves, fault firings) interleave with the
  spans in the same file.
* **progress reporter** — windows/s, dedup ratio, and ETA emitted every
  N chunks to stderr or a callback (:class:`ProgressEvent`).

Tracing off must cost nothing: :data:`NULL_TRACER` is a singleton whose
``span()`` returns one reusable no-op context manager and whose
``event()`` is an empty method — the per-call price is one attribute
lookup and a call, measured (and gated in CI) by
``benchmarks/test_trace_overhead.py``.  The engine threads a tracer
through :class:`~repro.runtime.pool.WorkerPool`,
:class:`~repro.runtime.checkpoint.Checkpointer`,
:class:`~repro.runtime.cache.ScoreCache`, and
:class:`~repro.runtime.cascade.CascadeDetector`; none of them ever
checks "is tracing on" — they emit unconditionally into whichever
tracer they were handed.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, TextIO, Union

from .telemetry import Telemetry

PathLike = Union[str, Path]

#: bump when the JSONL record layout changes incompatibly
TRACE_SCHEMA = 1

#: per-scan trace file name inside ``ObservabilityConfig.trace_dir``
TRACE_NAME = "scan-trace.jsonl"


# --------------------------------------------------------------------------
# null tracer (the always-on default; must be near-zero overhead)
# --------------------------------------------------------------------------
class _NullSpan:
    """Reusable no-op span: context manager + attribute setter."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Do-nothing tracer: the default when observability is off.

    Every method is a constant-time no-op; ``span()`` hands back one
    shared context manager so the disabled hot path allocates nothing.
    """

    __slots__ = ()
    enabled = False

    def span(self, name: str, kind: str = "span", **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **fields) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()


# --------------------------------------------------------------------------
# real tracer
# --------------------------------------------------------------------------
class _Span:
    """Live span handle: opened by :meth:`Tracer.span`, closed by ``with``."""

    __slots__ = (
        "_tracer",
        "name",
        "kind",
        "span_id",
        "parent_id",
        "_attrs",
        "_close_attrs",
        "_wall0",
        "_cpu0",
        "_counters0",
    )

    def __init__(self, tracer: "Tracer", name: str, kind: str, attrs) -> None:
        self._tracer = tracer
        self.name = name
        self.kind = kind
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self._attrs = attrs
        self._close_attrs: Dict[str, object] = {}
        self._wall0 = 0.0
        self._cpu0 = 0.0
        self._counters0: Dict[str, int] = {}

    def set(self, **attrs) -> None:
        """Attach attributes that land on the span's *close* record."""
        self._close_attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self._tracer._open_span(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._close_span(self, error=exc_type is not None)
        return False


class Tracer:
    """JSONL span/event tracer bound to one scan.

    Records are one JSON object per line, ``sort_keys=True`` so the file
    is byte-stable given identical inputs:

    * ``{"ev": "trace_start", "schema": 1, ...}`` — first line,
    * ``{"ev": "span_open", "id": n, "parent": p, "name": ..., "kind":
      "scan"|"phase"|"chunk", "t": rel_s, ...attrs}``,
    * ``{"ev": "span_close", "id": n, "name": ..., "t": rel_s,
      "wall_s": ..., "cpu_s": ..., "counters": {delta}, ...attrs}``,
    * ``{"ev": "event", "name": ..., "t": rel_s, ...fields}``.

    Counter deltas come from the bound :class:`Telemetry`: a span open
    snapshots the counters, close records only the ones that moved.
    Writes flush per record — a killed scan leaves a readable prefix.
    """

    enabled = True

    def __init__(
        self,
        stream: TextIO,
        telemetry: Optional[Telemetry] = None,
        close_stream: bool = False,
    ) -> None:
        self._stream = stream
        self._close_stream = close_stream
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._t0 = time.perf_counter()
        self._next_id = 1
        self._stack: List[int] = []
        self._closed = False
        self._emit(
            {
                "ev": "trace_start",
                "schema": TRACE_SCHEMA,
                "t": 0.0,
            }
        )

    @classmethod
    def to_dir(
        cls, trace_dir: PathLike, telemetry: Optional[Telemetry] = None
    ) -> "Tracer":
        """Open the canonical per-scan trace file inside ``trace_dir``."""
        directory = Path(trace_dir)
        directory.mkdir(parents=True, exist_ok=True)
        stream = open(directory / TRACE_NAME, "w", encoding="utf-8")
        return cls(stream, telemetry=telemetry, close_stream=True)

    @staticmethod
    def path_in(trace_dir: PathLike) -> Path:
        """Where :meth:`to_dir` writes the trace for ``trace_dir``."""
        return Path(trace_dir) / TRACE_NAME

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, kind: str = "span", **attrs) -> _Span:
        """A context manager tracing one span under the current parent."""
        return _Span(self, name, kind, attrs)

    def event(self, name: str, **fields) -> None:
        """One point event, parented to the innermost open span."""
        record = {
            "ev": "event",
            "name": name,
            "t": self._now(),
        }
        if self._stack:
            record["parent"] = self._stack[-1]
        record.update(fields)
        self._emit(record)

    def close(self) -> None:
        """Flush and (when owned) close the underlying stream."""
        if self._closed:
            return
        self._emit({"ev": "trace_end", "t": self._now()})
        self._closed = True
        self._stream.flush()
        if self._close_stream:
            self._stream.close()

    # ------------------------------------------------------------------
    # span plumbing
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return round(time.perf_counter() - self._t0, 6)

    def _open_span(self, span: _Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        span.parent_id = self._stack[-1] if self._stack else None
        self._stack.append(span.span_id)
        span._wall0 = time.perf_counter()
        span._cpu0 = time.process_time()
        span._counters0 = dict(self.telemetry.counters)
        record = {
            "ev": "span_open",
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "kind": span.kind,
            "t": self._now(),
        }
        record.update(span._attrs)
        self._emit(record)

    def _close_span(self, span: _Span, error: bool = False) -> None:
        wall = time.perf_counter() - span._wall0
        cpu = time.process_time() - span._cpu0
        if self._stack and self._stack[-1] == span.span_id:
            self._stack.pop()
        elif span.span_id in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span.span_id)
        before = span._counters0
        delta = {
            name: count - before.get(name, 0)
            for name, count in self.telemetry.counters.items()
            if count != before.get(name, 0)
        }
        record = {
            "ev": "span_close",
            "id": span.span_id,
            "name": span.name,
            "kind": span.kind,
            "t": self._now(),
            "wall_s": round(wall, 6),
            "cpu_s": round(cpu, 6),
            "counters": delta,
        }
        if error:
            record["error"] = True
        record.update(span._close_attrs)
        self._emit(record)

    def _emit(self, record: Dict[str, object]) -> None:
        if self._closed:
            return
        self._stream.write(json.dumps(record, sort_keys=True) + "\n")
        self._stream.flush()


def read_trace(path: PathLike) -> List[Dict[str, object]]:
    """Parse a JSONL trace file back into a list of record dicts."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# --------------------------------------------------------------------------
# progress heartbeats
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class ProgressEvent:
    """One heartbeat: where the scan is and how fast it is moving."""

    phase: str
    windows_done: int
    windows_total: int
    chunks_done: int
    scored: int
    elapsed_s: float
    windows_per_s: float
    dedup_ratio: float
    eta_s: Optional[float]

    @property
    def fraction(self) -> float:
        if not self.windows_total:
            return 0.0
        return self.windows_done / self.windows_total

    def format(self) -> str:
        eta = "?" if self.eta_s is None else f"{self.eta_s:.1f}s"
        return (
            f"scan {100 * self.fraction:5.1f}% "
            f"[{self.phase}] {self.windows_done}/{self.windows_total} windows, "
            f"{self.windows_per_s:,.0f} w/s, "
            f"{100 * self.dedup_ratio:.0f}% dedup, ETA {eta}"
        )


def _stderr_sink(event: ProgressEvent) -> None:
    print(event.format(), file=sys.stderr)


class ProgressReporter:
    """Emit :class:`ProgressEvent` heartbeats every N chunks.

    Reads everything it reports out of the scan's shared
    :class:`Telemetry` (the ``windows`` / ``scored`` / dedup counters
    the engine already maintains), so reporting adds no bookkeeping to
    the scan strategies beyond one :meth:`tick` per chunk.
    """

    def __init__(
        self,
        telemetry: Telemetry,
        windows_total: int,
        every_chunks: int = 8,
        sinks: Sequence[Callable[[ProgressEvent], None]] = (),
    ) -> None:
        if every_chunks < 1:
            raise ValueError("every_chunks must be >= 1")
        self.telemetry = telemetry
        self.windows_total = windows_total
        self.every_chunks = every_chunks
        self.sinks = list(sinks)
        self.events_emitted = 0
        self._chunks = 0
        self._t0 = time.perf_counter()

    @classmethod
    def from_config(
        cls,
        progress,
        telemetry: Telemetry,
        windows_total: int,
        every_chunks: int,
        extra_sink: Optional[Callable[[ProgressEvent], None]] = None,
    ) -> Optional["ProgressReporter"]:
        """Resolve an ``ObservabilityConfig.progress`` spec to a reporter.

        Returns ``None`` when neither a configured sink nor an
        ``extra_sink`` (a :class:`ScanSession` hook) wants events.
        """
        sinks: List[Callable[[ProgressEvent], None]] = []
        if progress == "stderr":
            sinks.append(_stderr_sink)
        elif callable(progress):
            sinks.append(progress)
        if extra_sink is not None:
            sinks.append(extra_sink)
        if not sinks:
            return None
        return cls(
            telemetry, windows_total, every_chunks=every_chunks, sinks=sinks
        )

    def snapshot(self, phase: str) -> ProgressEvent:
        """The current progress, computed from the live telemetry."""
        done = self.telemetry.counter("windows")
        scored = self.telemetry.counter("scored")
        elapsed = time.perf_counter() - self._t0
        rate = done / elapsed if elapsed > 0 else 0.0
        dedup = 1.0 - scored / done if done else 0.0
        eta: Optional[float] = None
        if 0 < done and rate > 0 and self.windows_total >= done:
            eta = (self.windows_total - done) / rate
        return ProgressEvent(
            phase=phase,
            windows_done=done,
            windows_total=self.windows_total,
            chunks_done=self._chunks,
            scored=scored,
            elapsed_s=elapsed,
            windows_per_s=rate,
            dedup_ratio=dedup,
            eta_s=eta,
        )

    def tick(self, phase: str) -> None:
        """Count one processed chunk; emit on the heartbeat cadence."""
        self._chunks += 1
        if self._chunks % self.every_chunks == 0:
            self.emit(phase)

    def emit(self, phase: str) -> None:
        """Force one heartbeat now (the engine calls this at scan end)."""
        event = self.snapshot(phase)
        self.events_emitted += 1
        for sink in self.sinks:
            sink(event)


class ScanObservability:
    """Per-scan bundle of the three sinks the engine threads through.

    ``tracer`` is always usable (:data:`NULL_TRACER` when off) and
    ``tick``/``finish`` are safe to call unconditionally — the engine
    never branches on whether observability is configured.
    """

    def __init__(
        self,
        tracer=NULL_TRACER,
        progress: Optional[ProgressReporter] = None,
        metrics: Optional[PathLike] = None,
    ) -> None:
        self.tracer = tracer
        self.progress = progress
        self.metrics = metrics

    @classmethod
    def off(cls) -> "ScanObservability":
        return cls()

    @classmethod
    def for_scan(
        cls,
        config,
        telemetry: Telemetry,
        windows_total: int,
        extra_progress: Optional[Callable[[ProgressEvent], None]] = None,
    ) -> "ScanObservability":
        """Build the bundle an ``ObservabilityConfig`` asks for."""
        tracer = (
            Tracer.to_dir(config.trace_dir, telemetry=telemetry)
            if config.trace_dir is not None
            else NULL_TRACER
        )
        progress = ProgressReporter.from_config(
            config.progress,
            telemetry,
            windows_total,
            every_chunks=config.progress_every_chunks,
            extra_sink=extra_progress,
        )
        return cls(tracer=tracer, progress=progress, metrics=config.metrics)

    def tick(self, phase: str) -> None:
        if self.progress is not None:
            self.progress.tick(phase)

    def finish(self, report) -> None:
        """Final heartbeat, metrics export, trace close — in that order."""
        if self.progress is not None:
            self.progress.emit("done")
        if self.metrics is not None:
            from .metrics import export_metrics

            json_path, prom_path = export_metrics(report, self.metrics)
            self.tracer.event(
                "metrics_export",
                json_path=str(json_path),
                prom_path=str(prom_path),
            )
        self.tracer.close()

"""Multiprocessing scoring pool for the scan engine.

Scoring is embarrassingly parallel across clip chunks, and the numpy
detectors release no work to threads (single-process BLAS here), so the
engine parallelizes with **processes**.  The pool is ``spawn``-safe:

* the detector is shipped once per worker via
  :func:`repro.core.detector.detector_to_state` in the pool initializer
  (workers then score every chunk against their private copy),
* chunk dispatch uses ``imap`` so results stream back **in submission
  order** — reassembly is trivial and scores are byte-identical to the
  single-process path,
* ``workers=1`` never touches ``multiprocessing`` at all: scoring runs
  in-process, which keeps tests deterministic and debuggable.

Top-level functions (not closures) carry the worker-side logic, as the
``spawn`` start method requires.
"""

from __future__ import annotations

import multiprocessing
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..contracts import shaped
from ..core.detector import detector_from_state, detector_to_state
from ..geometry.layout import Clip

# per-worker detector instance, installed by _init_worker in each child
_WORKER_DETECTOR = None


def _init_worker(state: bytes) -> None:
    """Pool initializer: decode the detector once per worker process."""
    global _WORKER_DETECTOR
    _WORKER_DETECTOR = detector_from_state(state)


@shaped("[n]->(n,):float64")
def _score_chunk(clips: List[Clip]) -> np.ndarray:
    """Worker-side chunk scorer (runs against the per-process detector)."""
    if _WORKER_DETECTOR is None:  # pragma: no cover - initializer contract
        raise RuntimeError("worker pool used before initialization")
    return np.asarray(_WORKER_DETECTOR.predict_proba(clips), dtype=np.float64)


@shaped("(n,h,w)->(n,):float64")
def _score_raster_chunk(rasters: np.ndarray) -> np.ndarray:
    """Worker-side raster-batch scorer (raster-plane scan path)."""
    if _WORKER_DETECTOR is None:  # pragma: no cover - initializer contract
        raise RuntimeError("worker pool used before initialization")
    return np.asarray(
        _WORKER_DETECTOR.predict_proba_rasters(rasters), dtype=np.float64
    )


class WorkerPool:
    """Chunked detector scoring over 1..N processes with ordered results.

    Usable as a context manager; the process pool (if any) is created
    lazily on first use and torn down on :meth:`close`.
    """

    def __init__(
        self,
        detector,
        workers: int = 1,
        mp_context: str = "spawn",
        chunks_in_flight: int = 4,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.detector = detector
        self.workers = workers
        self.mp_context = mp_context
        self.chunks_in_flight = max(1, chunks_in_flight)
        self._pool: Optional[multiprocessing.pool.Pool] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            ctx = multiprocessing.get_context(self.mp_context)
            self._pool = ctx.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(detector_to_state(self.detector),),
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def map_scores(
        self, chunks: Iterable[Sequence[Clip]]
    ) -> Iterator[np.ndarray]:
        """Score clip chunks, yielding one score array per chunk in order.

        The in-process path consumes the chunk iterable lazily; the
        multiprocess path uses ``imap`` (ordered) with a bounded chunk
        pipeline so huge scans never materialize all chunks at once.
        """
        if self.workers == 1:
            for chunk in chunks:
                yield np.asarray(
                    self.detector.predict_proba(list(chunk)),
                    dtype=np.float64,
                )
            return
        pool = self._ensure_pool()
        yield from pool.imap(
            _score_chunk,
            (list(chunk) for chunk in chunks),
            chunksize=1,
        )

    def map_scores_rasters(
        self, batches: Iterable[np.ndarray]
    ) -> Iterator[np.ndarray]:
        """Score ``(n, H, W)`` raster batches, one score array per batch.

        Mirrors :meth:`map_scores` but ships dense float arrays instead
        of pickled clip lists — the raster-plane counterpart.  Order is
        preserved; ``workers=1`` stays fully in-process.
        """
        if self.workers == 1:
            for batch in batches:
                yield np.asarray(
                    self.detector.predict_proba_rasters(batch),
                    dtype=np.float64,
                )
            return
        pool = self._ensure_pool()
        yield from pool.imap(_score_raster_chunk, batches, chunksize=1)

    @shaped("[n]->(n,):float64")
    def score(
        self, clips: Sequence[Clip], chunk_clips: int = 256
    ) -> np.ndarray:
        """Convenience: score a flat clip list via chunked dispatch."""
        if not clips:
            return np.empty(0, dtype=np.float64)
        chunks = [
            clips[i : i + chunk_clips]
            for i in range(0, len(clips), chunk_clips)
        ]
        return np.concatenate(list(self.map_scores(chunks)))

"""Multiprocessing scoring pool with worker supervision.

Scoring is embarrassingly parallel across clip chunks, and the numpy
detectors release no work to threads (single-process BLAS here), so the
engine parallelizes with **processes**.  The pool is ``spawn``-safe:

* the detector is shipped once per worker via
  :func:`repro.core.detector.detector_to_state` in the pool initializer
  (workers then score every chunk against their private copy),
* chunks are dispatched individually (``apply_async``) with a bounded
  in-flight window and results are consumed **in submission order** —
  reassembly is trivial and scores are byte-identical to the
  single-process path,
* ``workers=1`` never touches ``multiprocessing`` at all: scoring runs
  in-process, which keeps tests deterministic and debuggable.

Supervision (the fault-tolerance layer)
---------------------------------------
Full-chip scans run for hours; a single lost worker must not lose the
run.  Every chunk result passes through one ladder:

1. **validate** — scores must be finite float64 in [0, 1]
   (:func:`repro.contracts.require_scores`); with
   ``on_invalid_score="repair"`` an invalid array is treated as a chunk
   failure rather than raised,
2. **retry** — a failed chunk (timeout, worker death, exception,
   invalid scores) is resubmitted up to ``max_chunk_retries`` times with
   exponential backoff; chunk scoring is pure, so a retried chunk
   returns byte-identical scores,
3. **rebuild** — when retries are exhausted, or every worker process is
   dead, the pool is torn down and rebuilt (``max_pool_rebuilds`` times
   per pool lifetime) and the chunk retried there,
4. **degrade** — as the last resort the chunk is scored in-process on
   the parent's detector; after ``degrade_after_failures`` cumulative
   failures the pool stops dispatching entirely and the rest of the scan
   runs in-process (slow, but correct and identical).

Each rung increments a telemetry counter (``pool_retries``,
``pool_timeouts``, ``worker_errors``, ``score_repairs``,
``pool_rebuilds``, ``pool_degraded_chunks``, ``pool_degradations``) so a
report always shows what the scan survived.

Top-level functions (not closures) carry the worker-side logic, as the
``spawn`` start method requires.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..contracts import ContractViolation, require_scores, shaped
from ..core.detector import detector_from_state, detector_to_state
from ..geometry.layout import Clip
from .faults import FaultInjector, corrupt_scores, execute_chunk_fault
from .telemetry import Telemetry
from .trace import NULL_TRACER

# per-worker detector instance, installed by _init_worker in each child
_WORKER_DETECTOR = None


def _init_worker(state: bytes) -> None:
    """Pool initializer: decode the detector once per worker process."""
    global _WORKER_DETECTOR
    _WORKER_DETECTOR = detector_from_state(state)


@shaped("[n]->(n,):float64")
def _score_chunk(clips: List[Clip]) -> np.ndarray:
    """Worker-side chunk scorer (runs against the per-process detector)."""
    if _WORKER_DETECTOR is None:  # pragma: no cover - initializer contract
        raise RuntimeError("worker pool used before initialization")
    return np.asarray(_WORKER_DETECTOR.predict_proba(clips), dtype=np.float64)


@shaped("(n,h,w)->(n,):float64")
def _score_raster_chunk(rasters: np.ndarray) -> np.ndarray:
    """Worker-side raster-batch scorer (raster-plane scan path)."""
    if _WORKER_DETECTOR is None:  # pragma: no cover - initializer contract
        raise RuntimeError("worker pool used before initialization")
    return np.asarray(
        _WORKER_DETECTOR.predict_proba_rasters(rasters), dtype=np.float64
    )


def _score_chunk_task(task) -> np.ndarray:
    """Worker task wrapper: run the injected fault (if any), then score."""
    chunk, fault = task
    execute_chunk_fault(fault)
    return _score_chunk(chunk)


def _score_raster_chunk_task(task) -> np.ndarray:
    """Raster counterpart of :func:`_score_chunk_task`."""
    batch, fault = task
    execute_chunk_fault(fault)
    return _score_raster_chunk(batch)


@shaped("(n,c,h,w)->(n,):float64")
def _score_feature_chunk(feats: np.ndarray) -> np.ndarray:
    """Worker-side feature-batch scorer (plane-feature scan path)."""
    if _WORKER_DETECTOR is None:  # pragma: no cover - initializer contract
        raise RuntimeError("worker pool used before initialization")
    return np.asarray(
        _WORKER_DETECTOR.predict_proba_features(feats), dtype=np.float64
    )


def _score_feature_chunk_task(task) -> np.ndarray:
    """Feature counterpart of :func:`_score_chunk_task`."""
    batch, fault = task
    execute_chunk_fault(fault)
    return _score_feature_chunk(batch)


class _Chunk:
    """Supervision record for one submitted chunk (payload + fate)."""

    __slots__ = (
        "payload",
        "task_fn",
        "async_result",
        "chunk_fault",
        "score_fault",
        "chunk_fault_spent",
        "score_fault_spent",
        "attempts",
        "rebuilt",
        "degraded",
    )

    def __init__(self, payload, task_fn, chunk_fault, score_fault) -> None:
        self.payload = payload
        self.task_fn = task_fn
        self.async_result = None  # None => score in-process
        self.chunk_fault = chunk_fault
        self.score_fault = score_fault
        self.chunk_fault_spent = False
        self.score_fault_spent = False
        self.attempts = 0
        self.rebuilt = False
        self.degraded = False


class WorkerPool:
    """Chunked detector scoring over 1..N processes with ordered results.

    Usable as a context manager; the process pool (if any) is created
    lazily on first use, drained gracefully on :meth:`close` (the
    ``__exit__`` path without a pending exception), and torn down hard
    by :meth:`terminate` (error paths).

    Parameters
    ----------
    chunk_timeout_s:
        Per-chunk wall-clock budget before the supervision ladder treats
        the chunk as lost (covers worker crashes and stalls).  ``None``
        disables the timeout (a dead worker then hangs the scan — only
        sensible for debugging).
    max_chunk_retries:
        Resubmissions per chunk before escalating to a pool rebuild.
    retry_backoff_s:
        Base of the exponential backoff between resubmissions.
    max_pool_rebuilds:
        Pool teardown+rebuild budget for the pool's lifetime.
    degrade_after_failures:
        Cumulative chunk-failure count after which the pool stops
        dispatching and scores everything in-process.
    on_invalid_score:
        ``"repair"`` (default) treats a NaN / out-of-range score array
        as a chunk failure (retry, then rescore in-process);
        ``"raise"`` surfaces the
        :class:`~repro.contracts.spec.ContractViolation` immediately.
    telemetry:
        Shared :class:`~repro.runtime.telemetry.Telemetry` to record
        supervision events into (the engine passes its per-scan object).
    faults:
        Optional :class:`~repro.runtime.faults.FaultInjector` (or spec
        string) driving deterministic fault injection.
    tracer:
        Span tracer (:mod:`repro.runtime.trace`).  Every collected chunk
        becomes a ``chunk`` span carrying its supervision fate
        (attempts, rebuilt, degraded) and every ladder rung emits a
        point event; the default :data:`~repro.runtime.trace.NULL_TRACER`
        makes all of it free.
    """

    def __init__(
        self,
        detector,
        workers: int = 1,
        mp_context: str = "spawn",
        chunks_in_flight: int = 4,
        chunk_timeout_s: Optional[float] = 300.0,
        max_chunk_retries: int = 2,
        retry_backoff_s: float = 0.05,
        max_pool_rebuilds: int = 1,
        degrade_after_failures: int = 8,
        on_invalid_score: str = "repair",
        telemetry: Optional[Telemetry] = None,
        faults=None,
        tracer=NULL_TRACER,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if on_invalid_score not in ("repair", "raise"):
            raise ValueError("on_invalid_score must be 'repair' or 'raise'")
        if max_chunk_retries < 0:
            raise ValueError("max_chunk_retries must be >= 0")
        self.detector = detector
        self.workers = workers
        self.mp_context = mp_context
        self.chunks_in_flight = max(1, chunks_in_flight)
        self.chunk_timeout_s = chunk_timeout_s
        self.max_chunk_retries = max_chunk_retries
        self.retry_backoff_s = retry_backoff_s
        self.max_pool_rebuilds = max_pool_rebuilds
        self.degrade_after_failures = max(1, degrade_after_failures)
        self.on_invalid_score = on_invalid_score
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.tracer = tracer
        if isinstance(faults, str):
            faults = FaultInjector(faults)
        self.faults: Optional[FaultInjector] = faults
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._chunk_seq = 0
        self._rebuilds_done = 0
        self._failures_total = 0
        self._degraded = False
        # set on any sign of a lost worker (chunk timeout, dead procs);
        # a suspect pool cannot be drained safely — see close()
        self._suspect_pool = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.terminate()
        else:
            self.close()

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            ctx = multiprocessing.get_context(self.mp_context)
            self._pool = ctx.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(detector_to_state(self.detector),),
            )
        return self._pool

    def close(self) -> None:
        """Gracefully drain in-flight chunks, then join the workers.

        A pool that showed signs of a lost worker (a chunk timeout, dead
        processes) is torn down hard instead: with a crashed worker,
        ``Pool.close(); Pool.join()`` can block forever on the lost
        task, and every result the caller asked for has already been
        collected through the supervision ladder anyway.
        """
        if self._pool is not None:
            if self._suspect_pool:
                self.terminate()
                return
            self._pool.close()
            self._pool.join()
            self._pool = None

    def terminate(self) -> None:
        """Hard teardown for error paths: kill workers without draining."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def _pool_is_dead(self) -> bool:
        """True when every worker process of the live pool has exited."""
        if self._pool is None:
            return False
        procs = getattr(self._pool, "_pool", None)
        if not procs:
            return False
        return all(not p.is_alive() for p in procs)

    def _rebuild_pool(self) -> None:
        self.terminate()
        self._rebuilds_done += 1
        self.telemetry.count("pool_rebuilds")
        self.tracer.event("pool_rebuild", rebuilds=self._rebuilds_done)
        self._suspect_pool = False
        self._ensure_pool()

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def map_scores(
        self, chunks: Iterable[Sequence[Clip]]
    ) -> Iterator[np.ndarray]:
        """Score clip chunks, yielding one score array per chunk in order.

        The in-process path consumes the chunk iterable lazily; the
        multiprocess path keeps a bounded submission window so huge
        scans never materialize all chunks at once.  Every result passes
        through the supervision ladder (validate / retry / rebuild /
        degrade) before it is yielded.
        """

        def local_fn(chunk) -> np.ndarray:
            return np.asarray(
                self.detector.predict_proba(list(chunk)), dtype=np.float64
            )

        yield from self._supervised_map(
            (list(chunk) for chunk in chunks), _score_chunk_task, local_fn
        )

    def map_scores_rasters(
        self, batches: Iterable[np.ndarray]
    ) -> Iterator[np.ndarray]:
        """Score ``(n, H, W)`` raster batches, one score array per batch.

        Mirrors :meth:`map_scores` but ships dense float arrays instead
        of pickled clip lists — the raster-plane counterpart.  Order is
        preserved; ``workers=1`` stays fully in-process.
        """

        def local_fn(batch) -> np.ndarray:
            return np.asarray(
                self.detector.predict_proba_rasters(batch), dtype=np.float64
            )

        yield from self._supervised_map(
            batches, _score_raster_chunk_task, local_fn
        )

    def map_scores_features(
        self, batches: Iterable[np.ndarray]
    ) -> Iterator[np.ndarray]:
        """Score ``(n, C, h, w)`` feature-tensor batches, in order.

        The plane-feature counterpart of :meth:`map_scores_rasters`:
        the engine extracts features once per band plane and ships the
        (much smaller) per-window feature slices instead of raw window
        rasters.  Requires a detector with ``predict_proba_features``.
        """

        def local_fn(batch) -> np.ndarray:
            return np.asarray(
                self.detector.predict_proba_features(batch),
                dtype=np.float64,
            )

        yield from self._supervised_map(
            batches, _score_feature_chunk_task, local_fn
        )

    @shaped("[n]->(n,):float64")
    def score(
        self, clips: Sequence[Clip], chunk_clips: int = 256
    ) -> np.ndarray:
        """Convenience: score a flat clip list via chunked dispatch."""
        if not clips:
            return np.empty(0, dtype=np.float64)
        chunks = [
            clips[i : i + chunk_clips]
            for i in range(0, len(clips), chunk_clips)
        ]
        return np.concatenate(list(self.map_scores(chunks)))

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    def _supervised_map(
        self, payloads: Iterable, task_fn, local_fn
    ) -> Iterator[np.ndarray]:
        """Ordered, fault-tolerant dispatch shared by both score paths."""
        if self.workers == 1:
            for payload in payloads:
                yield self._collect(
                    self._new_record(payload, task_fn, local=True), local_fn
                )
            return
        pending: "deque[_Chunk]" = deque()
        payload_iter = iter(payloads)
        exhausted = False
        while True:
            while not exhausted and len(pending) < self.chunks_in_flight:
                try:
                    payload = next(payload_iter)
                except StopIteration:
                    exhausted = True
                    break
                pending.append(
                    self._new_record(payload, task_fn, local=self._degraded)
                )
            if not pending:
                return
            yield self._collect(pending.popleft(), local_fn)

    def _new_record(self, payload, task_fn, local: bool) -> _Chunk:
        chunk_fault = score_fault = None
        if self.faults is not None:
            chunk_fault = self.faults.chunk_fault()
            if chunk_fault is not None:
                self.telemetry.count(f"fault_{chunk_fault[0]}")
                self.tracer.event("fault_fired", point=chunk_fault[0])
            score_fault = self.faults.score_fault()
            if score_fault is not None:
                self.telemetry.count(f"fault_{score_fault}")
                self.tracer.event("fault_fired", point=score_fault)
        record = _Chunk(payload, task_fn, chunk_fault, score_fault)
        if not local:
            self._submit(record, first=True)
        return record

    def _submit(self, record: _Chunk, first: bool) -> None:
        """Dispatch (or re-dispatch) a chunk to the process pool."""
        fault = record.chunk_fault if first else None
        record.async_result = self._ensure_pool().apply_async(
            record.task_fn, ((record.payload, fault),)
        )

    def _score_attempt(self, record: _Chunk, local_fn) -> np.ndarray:
        """One attempt at a chunk: fetch scores, inject, validate."""
        record.attempts += 1
        if record.async_result is None:
            if record.chunk_fault is not None and not record.chunk_fault_spent:
                record.chunk_fault_spent = True
                execute_chunk_fault(record.chunk_fault, in_process=True)
            scores = local_fn(record.payload)
        else:
            scores = record.async_result.get(timeout=self.chunk_timeout_s)
        scores = np.asarray(scores, dtype=np.float64)
        if record.score_fault is not None and not record.score_fault_spent:
            record.score_fault_spent = True
            scores = corrupt_scores(scores, record.score_fault)
        require_scores(scores, func="WorkerPool.map_scores")
        return scores

    def _collect(self, record: _Chunk, local_fn) -> np.ndarray:
        """One chunk span around the supervision ladder (worker fate)."""
        self._chunk_seq += 1
        with self.tracer.span(
            "chunk",
            kind="chunk",
            seq=self._chunk_seq,
            local=record.async_result is None,
        ) as span:
            scores = self._supervise(record, local_fn)
            span.set(
                n=len(scores),
                attempts=record.attempts,
                rebuilt=record.rebuilt,
                degraded=record.degraded,
            )
        return scores

    def _supervise(self, record: _Chunk, local_fn) -> np.ndarray:
        """Drive one chunk through the supervision ladder to a score array."""
        while True:
            try:
                return self._score_attempt(record, local_fn)
            except multiprocessing.TimeoutError:
                self._suspect_pool = True
                self.telemetry.count("pool_timeouts")
                self.tracer.event("pool_timeout", attempt=record.attempts)
            except ContractViolation:
                if self.on_invalid_score == "raise":
                    raise
                self.telemetry.count("score_repairs")
                self.tracer.event("score_repair", attempt=record.attempts)
            # The fault barrier: a worker-side failure can surface as any
            # exception type (the detector's own errors included), and the
            # whole point of supervision is to retry/rescore rather than
            # lose an hours-long scan to one bad chunk.
            except Exception as exc:  # lint: disable=broad-except  (supervision fault barrier; re-raised once the retry/rebuild/degrade ladder is exhausted)
                self.telemetry.count("worker_errors")
                self.tracer.event(
                    "worker_error", attempt=record.attempts, error=repr(exc)
                )
            self._failures_total += 1
            self.telemetry.count("pool_retries")
            self.tracer.event("pool_retry", attempt=record.attempts)
            if self._failures_total >= self.degrade_after_failures:
                self._enter_degraded_mode()
            if record.attempts <= self.max_chunk_retries:
                time.sleep(
                    self.retry_backoff_s * 2.0 ** (record.attempts - 1)
                )
                self._resubmit(record)
                continue
            # retries exhausted: escalate
            if (
                record.async_result is not None
                and not record.rebuilt
                and self._rebuilds_done < self.max_pool_rebuilds
                and not self._degraded
            ):
                record.rebuilt = True
                record.attempts = 0
                self._rebuild_pool()
                self._submit(record, first=False)
                continue
            if record.async_result is not None and not record.degraded:
                # last rung: rescore this chunk on the parent's detector
                record.degraded = True
                record.attempts = 0
                record.async_result = None
                self.telemetry.count("pool_degraded_chunks")
                self.tracer.event("pool_degraded_chunk")
                continue
            # in-process scoring failed too — surface the real error
            return self._score_attempt(record, local_fn)

    def _resubmit(self, record: _Chunk) -> None:
        """Retry a chunk, rebuilding first if every worker is dead."""
        if record.async_result is None or self._degraded:
            record.async_result = None
            return
        if self._pool_is_dead():
            self._suspect_pool = True
            if self._rebuilds_done < self.max_pool_rebuilds:
                self._rebuild_pool()
        self._submit(record, first=False)

    def _enter_degraded_mode(self) -> None:
        if not self._degraded:
            self._degraded = True
            self.telemetry.count("pool_degradations")
            self.tracer.event(
                "pool_degradation", failures=self._failures_total
            )

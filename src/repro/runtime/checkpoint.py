"""Atomic checkpoint / resume for interrupted full-chip scans.

A chip-scale scan is an hours-long pure computation over a deterministic
window enumeration, which makes it ideal checkpoint material: progress
is fully described by *which chunks have been scored* plus their score
values.  :class:`Checkpointer` persists exactly that, atomically
(tmp-file + ``os.replace``), every ``every_chunks`` scored chunks, and
:meth:`ScanEngine.scan(..., resume=True)
<repro.runtime.engine.ScanEngine.scan>` replays a saved prefix so the
continued scan produces a report byte-identical to an uninterrupted run.

Two progress models, matching the engine's scan strategies:

* **direct** (``dedup=False``) — the committed per-chunk score arrays,
  concatenated, plus the chunk sizes.  Resume replays the stored prefix
  chunk-for-chunk (the enumeration is deterministic) and resumes
  scoring at the cursor.
* **dedup** — the ``fingerprint -> score`` pairs scored so far.  Resume
  re-runs the cheap fingerprint phase (deterministic), marks the stored
  fingerprints as already scored, and only scores the remainder.

The checkpoint is one ``.npz`` file carrying a **manifest** (schema
version, detector tag, scan-config hash) and a BLAKE2 **checksum** of
the payload.  A resume against a different config or detector is
refused (:class:`CheckpointMismatch`); a corrupt or truncated file is
quarantined (renamed ``*.quarantined``) and the scan restarts from
scratch rather than crashing or silently mis-resuming.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from .telemetry import Telemetry
from .trace import NULL_TRACER

#: bump when the checkpoint layout changes incompatibly
CHECKPOINT_SCHEMA = 1

CHECKPOINT_NAME = "scan-checkpoint.npz"

PathLike = Union[str, Path]


class CheckpointMismatch(ValueError):
    """Resume refused: the checkpoint belongs to a different scan."""


def scan_config_hash(**fields) -> str:
    """Canonical hash of everything that must match for a resume.

    The engine passes region coordinates, window/core/step geometry,
    scan path, dedup mode, chunking parameters, detector tag/threshold,
    and a cheap layer signature — any difference makes the stored
    progress meaningless, so any difference must change the hash.
    """
    canonical = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()


def _payload_checksum(
    config_hash: str,
    detector_tag: str,
    mode: str,
    chunk_sizes: np.ndarray,
    scores: np.ndarray,
    fingerprints: List[str],
    fp_scores: np.ndarray,
) -> str:
    h = hashlib.blake2b(digest_size=16)
    h.update(config_hash.encode())
    h.update(detector_tag.encode())
    h.update(mode.encode())
    h.update(np.ascontiguousarray(chunk_sizes, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(scores, dtype=np.float64).tobytes())
    h.update("\0".join(fingerprints).encode())
    h.update(np.ascontiguousarray(fp_scores, dtype=np.float64).tobytes())
    return h.hexdigest()


def quarantine_file(path: PathLike) -> Path:
    """Move a corrupt file aside (never delete evidence) and return it."""
    path = Path(path)
    target = path.with_name(path.name + ".quarantined")
    os.replace(path, target)
    return target


class Checkpointer:
    """Engine-side driver: accumulate progress, save atomically, replay.

    One instance serves one ``scan()`` call.  The engine records every
    committed chunk (direct mode) or scored fingerprint chunk (dedup
    mode); every ``every_chunks`` records the full state is rewritten
    atomically.  On success :meth:`finalize` deletes the file — a
    completed scan must not feed a later, different-looking resume.
    """

    def __init__(
        self,
        path: PathLike,
        *,
        config_hash: str,
        detector_tag: str,
        mode: str,
        every_chunks: int = 16,
        telemetry: Optional[Telemetry] = None,
        faults=None,
        tracer=NULL_TRACER,
    ) -> None:
        if mode not in ("direct", "dedup"):
            raise ValueError("mode must be 'direct' or 'dedup'")
        if every_chunks < 1:
            raise ValueError("every_chunks must be >= 1")
        self.path = Path(path)
        self.config_hash = config_hash
        self.detector_tag = detector_tag
        self.mode = mode
        self.every_chunks = every_chunks
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.faults = faults
        self.tracer = tracer
        # accumulated state (direct) — everything save() persists
        self._chunk_sizes: List[int] = []
        self._score_parts: List[np.ndarray] = []
        # accumulated state (dedup)
        self._fp_scores: Dict[str, float] = {}
        # the loaded prefix, kept SEPARATE from the accumulation lists:
        # record_chunk appends to the latter while the engine is still
        # replaying, so sharing one list would replay fresh chunks
        self._replay_sizes: List[int] = []
        self._replay_parts: List[np.ndarray] = []
        self._replay_pos = 0
        self._chunks_since_save = 0

    # ------------------------------------------------------------------
    # resume
    # ------------------------------------------------------------------
    def load_for_resume(self) -> bool:
        """Load prior progress; True when a valid checkpoint was restored.

        A corrupt/truncated file is quarantined and ``False`` returned
        (the scan restarts cleanly); a structurally valid checkpoint for
        a *different* scan config or detector raises
        :class:`CheckpointMismatch` — silently rescanning would be
        surprising, mis-resuming would be wrong.
        """
        if not self.path.exists():
            return False
        try:
            with np.load(self.path, allow_pickle=False) as data:
                schema = int(data["schema"])
                if schema != CHECKPOINT_SCHEMA:
                    raise ValueError(f"unsupported schema {schema}")
                config_hash = str(data["config_hash"])
                detector_tag = str(data["detector_tag"])
                mode = str(data["mode"])
                chunk_sizes = np.asarray(data["chunk_sizes"], dtype=np.int64)
                scores = np.asarray(data["scores"], dtype=np.float64)
                fingerprints = [str(fp) for fp in data["fingerprints"]]
                fp_scores = np.asarray(data["fp_scores"], dtype=np.float64)
                checksum = str(data["checksum"])
        except (zipfile.BadZipFile, OSError, EOFError, ValueError, KeyError):
            self._quarantine()
            return False
        expected = _payload_checksum(
            config_hash, detector_tag, mode, chunk_sizes, scores,
            fingerprints, fp_scores,
        )
        if checksum != expected:
            self._quarantine()
            return False
        if config_hash != self.config_hash:
            raise CheckpointMismatch(
                f"checkpoint at {self.path} was written by a different scan "
                f"configuration (hash {config_hash} != {self.config_hash}); "
                "pass resume=False (or a fresh checkpoint dir) to rescan"
            )
        if detector_tag != self.detector_tag or mode != self.mode:
            raise CheckpointMismatch(
                f"checkpoint at {self.path} belongs to detector "
                f"{detector_tag!r} in {mode!r} mode, not "
                f"{self.detector_tag!r}/{self.mode!r}"
            )
        self._chunk_sizes = [int(n) for n in chunk_sizes]
        offsets = np.concatenate(([0], np.cumsum(chunk_sizes)))
        self._score_parts = [
            scores[offsets[i] : offsets[i + 1]]
            for i in range(len(self._chunk_sizes))
        ]
        self._fp_scores = dict(
            zip(fingerprints, (float(s) for s in fp_scores))
        )
        self._replay_sizes = list(self._chunk_sizes)
        self._replay_parts = list(self._score_parts)
        self._replay_pos = 0
        self.telemetry.count("checkpoint_resumed")
        self.tracer.event(
            "checkpoint_resume",
            chunks=len(self._chunk_sizes),
            fingerprints=len(self._fp_scores),
        )
        return True

    def _quarantine(self) -> None:
        quarantined = quarantine_file(self.path)
        self.telemetry.count("checkpoint_quarantined")
        self.tracer.event("checkpoint_quarantine", path=str(quarantined))

    # ------------------------------------------------------------------
    # direct-mode progress
    # ------------------------------------------------------------------
    def next_resumed_chunk(self, expected_len: int) -> Optional[np.ndarray]:
        """Replay the next prefix chunk, or None once the prefix is spent.

        The resumed enumeration must reproduce the original chunk
        boundaries (they are deterministic given the hashed config); a
        size mismatch means the checkpoint cannot be trusted.
        """
        if self._replay_pos >= len(self._replay_sizes):
            return None
        size = self._replay_sizes[self._replay_pos]
        if size != expected_len:
            raise CheckpointMismatch(
                f"resumed chunk {self._replay_pos} has {expected_len} "
                f"windows but the checkpoint recorded {size}"
            )
        part = self._replay_parts[self._replay_pos]
        self._replay_pos += 1
        return part

    def record_chunk(self, scores: np.ndarray) -> None:
        """Commit one newly scored chunk (direct mode) in submission order."""
        scores = np.asarray(scores, dtype=np.float64)
        self._chunk_sizes.append(len(scores))
        self._score_parts.append(scores)
        self._tick()

    # ------------------------------------------------------------------
    # dedup-mode progress
    # ------------------------------------------------------------------
    def resumed_fp_scores(self) -> Dict[str, float]:
        """fingerprint -> score pairs restored from the checkpoint."""
        return dict(self._fp_scores)

    def record_fp_chunk(self, fingerprints, scores) -> None:
        """Commit one scored fingerprint chunk (dedup mode)."""
        for fp, score in zip(fingerprints, scores):
            self._fp_scores[fp] = float(score)
        self._tick()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._chunks_since_save += 1
        if self._chunks_since_save >= self.every_chunks:
            self.save()

    def save(self) -> Path:
        """Atomically rewrite the checkpoint file with current progress."""
        self._chunks_since_save = 0
        chunk_sizes = np.asarray(self._chunk_sizes, dtype=np.int64)
        scores = (
            np.concatenate(self._score_parts)
            if self._score_parts
            else np.empty(0, dtype=np.float64)
        )
        fingerprints = list(self._fp_scores)
        fp_scores = np.asarray(
            list(self._fp_scores.values()), dtype=np.float64
        )
        checksum = _payload_checksum(
            self.config_hash, self.detector_tag, self.mode, chunk_sizes,
            scores, fingerprints, fp_scores,
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh,
                schema=np.array(CHECKPOINT_SCHEMA),
                config_hash=np.array(self.config_hash),
                detector_tag=np.array(self.detector_tag),
                mode=np.array(self.mode),
                chunk_sizes=chunk_sizes,
                scores=scores,
                fingerprints=np.array(fingerprints, dtype=np.str_),
                fp_scores=fp_scores,
                checksum=np.array(checksum),
            )
        os.replace(tmp, self.path)
        self.telemetry.count("checkpoint_saves")
        self.tracer.event(
            "checkpoint_save",
            chunks=len(self._chunk_sizes),
            fingerprints=len(self._fp_scores),
        )
        if self.faults is not None and self.faults.truncate_file(
            self.path, "checkpoint_truncate"
        ):
            self.telemetry.count("fault_checkpoint_truncate")
            self.tracer.event("fault_fired", point="checkpoint_truncate")
        return self.path

    def finalize(self) -> None:
        """Delete the checkpoint — the scan completed, progress is moot."""
        if self.path.exists():
            self.path.unlink()

"""Grouped, frozen scan-engine configuration: the ``EngineConfig`` surface.

``ScanEngine.__init__`` historically grew one keyword per subsystem until
the front door carried ~20 flat knobs across five concerns.  This module
replaces that with one frozen :class:`EngineConfig` composed of six
grouped sub-configs — construction-time validated, hashable-by-identity,
and safe to share between engines:

* :class:`BatchConfig` — chunking, workers, dedup cache sizing,
* :class:`RasterConfig` — raster-plane fast-path policy,
* :class:`SupervisionConfig` — the WorkerPool retry/rebuild/degrade ladder,
* :class:`CheckpointConfig` — periodic atomic checkpoint/resume,
* :class:`ObservabilityConfig` — span tracing, metrics export, progress
  heartbeats (:mod:`repro.runtime.trace` / :mod:`repro.runtime.metrics`),
* :class:`ChipScanConfig` — full-chip shard fan-out, instance-level
  dedup, and incremental re-scan (:func:`repro.runtime.scan_chip`).

Every legacy flat kwarg maps to exactly one grouped field
(:data:`LEGACY_KWARGS`); :meth:`EngineConfig.from_kwargs` builds a config
from the flat names (the supported spelling), while passing them straight
to ``ScanEngine(...)`` still works through a ``DeprecationWarning`` shim.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

PathLike = Union[str, Path]

#: progress sink spellings accepted by :class:`ObservabilityConfig`
_PROGRESS_SINKS = ("stderr",)


@dataclass(frozen=True)
class BatchConfig:
    """Chunking, worker fan-out, and dedup-cache sizing."""

    workers: int = 1
    chunk_clips: int = 256
    dedup: bool = True
    cache_dir: Optional[PathLike] = None
    max_cache_entries: int = 200_000
    mp_context: str = "spawn"
    #: inference backend applied to backend-aware detectors before the
    #: scan starts: None keeps the detector's own setting, otherwise
    #: "layers" | "fused" | "fused-int8" (see repro.nn.infer)
    infer_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunk_clips < 1:
            raise ValueError("chunk_clips must be >= 1")
        if self.max_cache_entries < 1:
            raise ValueError("max_cache_entries must be >= 1")
        if self.infer_backend is not None:
            from ..nn.infer import BACKENDS

            if self.infer_backend not in BACKENDS:
                raise ValueError(
                    f"infer_backend must be one of {BACKENDS}, "
                    f"got {self.infer_backend!r}"
                )


@dataclass(frozen=True)
class RasterConfig:
    """Raster-plane fast-path policy and plane memory budget."""

    #: ``None`` auto-selects, ``True`` requires, ``False`` forbids
    raster_plane: Optional[bool] = None
    band_rows: int = 8
    max_plane_pixels: int = 32_000_000

    def __post_init__(self) -> None:
        if self.band_rows < 1:
            raise ValueError("band_rows must be >= 1")
        if self.max_plane_pixels < 1:
            raise ValueError("max_plane_pixels must be >= 1")


@dataclass(frozen=True)
class SupervisionConfig:
    """WorkerPool fault-tolerance ladder (timeout/retry/rebuild/degrade)."""

    chunk_timeout_s: Optional[float] = 300.0
    max_chunk_retries: int = 2
    retry_backoff_s: float = 0.05
    max_pool_rebuilds: int = 1
    degrade_after_failures: int = 8
    on_invalid_score: str = "repair"

    def __post_init__(self) -> None:
        if self.max_chunk_retries < 0:
            raise ValueError("max_chunk_retries must be >= 0")
        if self.on_invalid_score not in ("repair", "raise"):
            raise ValueError("on_invalid_score must be 'repair' or 'raise'")


@dataclass(frozen=True)
class CheckpointConfig:
    """Periodic atomic checkpointing for ``scan(resume=True)``."""

    dir: Optional[PathLike] = None
    every_chunks: int = 16

    def __post_init__(self) -> None:
        if self.every_chunks < 1:
            raise ValueError("every_chunks must be >= 1")


@dataclass(frozen=True)
class ObservabilityConfig:
    """Span tracing, metrics export, and progress heartbeats.

    All three sinks default off; a default-constructed config keeps the
    scan on the zero-overhead null tracer.

    Parameters
    ----------
    trace_dir:
        Directory for the per-scan JSONL span/event log
        (:data:`repro.runtime.trace.TRACE_NAME`).  ``None`` disables
        tracing entirely.
    metrics:
        Output basename for the end-of-scan metrics snapshot; the scan
        writes ``<metrics>.json`` and ``<metrics>.prom`` (Prometheus
        text exposition) via :func:`repro.runtime.metrics.export_metrics`.
    progress:
        ``"stderr"`` prints heartbeat lines, a callable receives
        :class:`~repro.runtime.trace.ProgressEvent` objects, ``None``
        disables heartbeats (a :class:`~repro.runtime.engine.ScanSession`
        still observes progress through its own hook).
    progress_every_chunks:
        Chunks between heartbeats (the final heartbeat always fires).
    """

    trace_dir: Optional[PathLike] = None
    metrics: Optional[PathLike] = None
    progress: Union[None, str, Callable] = None
    progress_every_chunks: int = 8

    def __post_init__(self) -> None:
        if self.progress_every_chunks < 1:
            raise ValueError("progress_every_chunks must be >= 1")
        if (
            self.progress is not None
            and not callable(self.progress)
            and self.progress not in _PROGRESS_SINKS
        ):
            raise ValueError(
                f"progress must be None, a callable, or one of "
                f"{_PROGRESS_SINKS}, got {self.progress!r}"
            )

    @property
    def enabled(self) -> bool:
        """True when any sink (trace, metrics, progress) is configured."""
        return (
            self.trace_dir is not None
            or self.metrics is not None
            or self.progress is not None
        )


@dataclass(frozen=True)
class ChipScanConfig:
    """Full-chip sharded scan policy (:func:`repro.runtime.scan_chip`).

    The :class:`~repro.runtime.shard.ShardRunner` reads this group; a
    plain :class:`~repro.runtime.engine.ScanEngine` ignores it, so one
    config object can drive both entry points.

    Parameters
    ----------
    shards:
        Target shard count for the planner (1 = monolithic; the planner
        may return fewer shards than requested on small center grids).
    shard_workers:
        Shards scanned concurrently; each shard runs its own engine
        (which may itself fan scoring out over ``workers`` processes).
    halo_nm:
        Overlap margin in nm beyond each shard's owned windows.  ``None``
        defaults to the full window extent, the margin under which every
        boundary window sees exactly the context a monolithic scan does.
    snap_nm:
        Snap shard boundaries to multiples of this pitch (nm), e.g. an
        instance-array pitch so repeated placements land in congruent
        shards.  ``None`` balances shard sizes freely.
    instance_dedup:
        Fingerprint each shard's halo region and replay scores across
        shards whose geometry is an exact translated copy.
    manifest:
        Explicit path for the fingerprint→score manifest written after
        the scan; ``None`` writes ``chip-manifest.npz`` next to the
        checkpoint when a checkpoint dir is configured, else nothing.
    rescan_from:
        Path of a prior scan's manifest (or the directory holding it):
        shards whose region fingerprint is unchanged replay their stored
        scores and only changed-cone shards are re-scored.
    """

    shards: int = 1
    shard_workers: int = 1
    halo_nm: Optional[int] = None
    snap_nm: Optional[int] = None
    instance_dedup: bool = True
    manifest: Optional[PathLike] = None
    rescan_from: Optional[PathLike] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shard_workers < 1:
            raise ValueError("shard_workers must be >= 1")
        if self.halo_nm is not None and self.halo_nm < 0:
            raise ValueError("halo_nm must be >= 0 or None")
        if self.snap_nm is not None and self.snap_nm < 1:
            raise ValueError("snap_nm must be >= 1 or None")


@dataclass(frozen=True)
class EngineConfig:
    """The full :class:`~repro.runtime.engine.ScanEngine` configuration."""

    batch: BatchConfig = field(default_factory=BatchConfig)
    raster: RasterConfig = field(default_factory=RasterConfig)
    supervision: SupervisionConfig = field(default_factory=SupervisionConfig)
    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    observability: ObservabilityConfig = field(
        default_factory=ObservabilityConfig
    )
    chip: ChipScanConfig = field(default_factory=ChipScanConfig)

    @classmethod
    def from_kwargs(cls, **kwargs) -> "EngineConfig":
        """Build a config from flat legacy kwarg names.

        ``EngineConfig.from_kwargs(workers=4, checkpoint_dir="ckpt")`` is
        the supported one-liner for callers migrating off the flat
        ``ScanEngine`` signature; unknown names raise ``TypeError`` with
        the offending keys.
        """
        return cls().replace_kwargs(**kwargs)

    def replace_kwargs(self, **kwargs) -> "EngineConfig":
        """A copy of this config with flat legacy kwargs applied."""
        unknown = sorted(set(kwargs) - set(LEGACY_KWARGS))
        if unknown:
            raise TypeError(
                f"unknown ScanEngine option(s) {unknown}; "
                f"valid flat names: {sorted(LEGACY_KWARGS)}"
            )
        by_group: Dict[str, Dict[str, object]] = {}
        for name, value in kwargs.items():
            group, field_name = LEGACY_KWARGS[name]
            by_group.setdefault(group, {})[field_name] = value
        updates = {
            group: replace(getattr(self, group), **changes)
            for group, changes in by_group.items()
        }
        return replace(self, **updates)

    def flat_items(self) -> Dict[str, object]:
        """The config flattened back to ``legacy-kwarg -> value`` pairs."""
        return {
            name: getattr(getattr(self, group), field_name)
            for name, (group, field_name) in LEGACY_KWARGS.items()
        }


#: legacy flat ``ScanEngine`` kwarg -> (sub-config attribute, field name)
LEGACY_KWARGS: Dict[str, Tuple[str, str]] = {
    "workers": ("batch", "workers"),
    "chunk_clips": ("batch", "chunk_clips"),
    "dedup": ("batch", "dedup"),
    "cache_dir": ("batch", "cache_dir"),
    "max_cache_entries": ("batch", "max_cache_entries"),
    "mp_context": ("batch", "mp_context"),
    "infer_backend": ("batch", "infer_backend"),
    "raster_plane": ("raster", "raster_plane"),
    "band_rows": ("raster", "band_rows"),
    "max_plane_pixels": ("raster", "max_plane_pixels"),
    "chunk_timeout_s": ("supervision", "chunk_timeout_s"),
    "max_chunk_retries": ("supervision", "max_chunk_retries"),
    "retry_backoff_s": ("supervision", "retry_backoff_s"),
    "max_pool_rebuilds": ("supervision", "max_pool_rebuilds"),
    "degrade_after_failures": ("supervision", "degrade_after_failures"),
    "on_invalid_score": ("supervision", "on_invalid_score"),
    "checkpoint_dir": ("checkpoint", "dir"),
    "checkpoint_every_chunks": ("checkpoint", "every_chunks"),
    "trace_dir": ("observability", "trace_dir"),
    "metrics": ("observability", "metrics"),
    "progress": ("observability", "progress"),
    "progress_every_chunks": ("observability", "progress_every_chunks"),
    "shards": ("chip", "shards"),
    "shard_workers": ("chip", "shard_workers"),
    "halo_nm": ("chip", "halo_nm"),
    "snap_nm": ("chip", "snap_nm"),
    "instance_dedup": ("chip", "instance_dedup"),
    "manifest": ("chip", "manifest"),
    "rescan_from": ("chip", "rescan_from"),
}

# every mapped field must actually exist on its sub-config (import-time
# self-check: a typo here would otherwise surface as a confusing
# dataclasses.replace error at first use)
for _name, (_group, _field) in LEGACY_KWARGS.items():
    _cls = EngineConfig.__dataclass_fields__[_group].default_factory
    if _field not in {f.name for f in fields(_cls)}:  # pragma: no cover
        raise AssertionError(f"LEGACY_KWARGS maps {_name} to missing field")
del _name, _group, _field, _cls

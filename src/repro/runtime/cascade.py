"""Staged detector cascade: the EPIC-style meta-detector.

The accuracy-vs-runtime trade-off the survey closes on is not "pick one
detector" but "spend expensive detectors only where cheap ones are
unsure".  :class:`CascadeDetector` chains the library's generations into
one :class:`~repro.core.detector.Detector`:

1. **matcher** (optional) — an exact/fuzzy pattern matcher; windows that
   match a known-bad library pattern are resolved *hot* immediately,
2. **prefilter** (optional) — a cheap shallow model run at a high-recall
   (i.e. deliberately low) cutoff; windows it scores confidently cold are
   resolved without ever reaching the expensive stage,
3. **primary** — the expensive detector (typically the CNN) scores
   whatever survives,
4. **verifier** (optional) — a :class:`~repro.litho.HotspotOracle` (or
   anything with ``label(clip)``) re-checks flagged windows on demand via
   :meth:`verify_flagged`.

Per-stage resolution counts accumulate in :class:`CascadeStats` so the
scan report can show exactly where windows were decided.  Every stage is a
pure per-clip function, so cascade scores are independent of batching —
the property the dedup cache and the worker pool both rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..contracts import shaped
from ..core.detector import Detector, FitReport
from ..data.dataset import ClipDataset
from ..geometry.layout import Clip
from .trace import NULL_TRACER


@dataclass
class CascadeStats:
    """Where windows got resolved, accumulated across predict calls."""

    windows: int = 0
    matched_hot: int = 0
    filtered_cold: int = 0
    primary_scored: int = 0
    verified: int = 0
    verified_hot: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "windows": self.windows,
            "matched_hot": self.matched_hot,
            "filtered_cold": self.filtered_cold,
            "primary_scored": self.primary_scored,
            "verified": self.verified,
            "verified_hot": self.verified_hot,
        }

    def merge(self, other: "CascadeStats") -> None:
        self.windows += other.windows
        self.matched_hot += other.matched_hot
        self.filtered_cold += other.filtered_cold
        self.primary_scored += other.primary_scored
        self.verified += other.verified
        self.verified_hot += other.verified_hot

    def summary(self) -> str:
        return (
            f"cascade: {self.windows} windows -> "
            f"{self.matched_hot} matched hot, "
            f"{self.filtered_cold} filtered cold, "
            f"{self.primary_scored} primary-scored"
            + (
                f", {self.verified_hot}/{self.verified} verified hot"
                if self.verified
                else ""
            )
        )


class CascadeDetector(Detector):  # lint: disable=raster-parity  (stages are heterogeneous; engine picks the path per stage)
    """matcher -> prefilter -> primary staged flow behind the Detector API.

    Resolution semantics (per clip, order matters):

    * matcher score ``>= matcher.threshold`` resolves **hot** with final
      score ``max(match_score, self.threshold)`` (always flagged),
    * prefilter score ``< filter_cutoff`` resolves **cold** with the
      prefilter's own score (the cutoff is clamped below the cascade
      threshold, so resolved-cold windows are never flagged),
    * everything else gets the primary detector's score verbatim.

    ``filter_cutoff`` is the recall knob: it must stay small (high recall
    on the prefilter) or the cascade trades hotspots for speed.
    """

    #: per-scan span tracer, swapped in by the engine around a scan;
    #: never pickled (see __getstate__) so spawn workers ship clean
    _tracer = NULL_TRACER

    def __init__(
        self,
        primary: Detector,
        matcher=None,
        prefilter=None,
        filter_cutoff: float = 0.05,
        verifier=None,
        name: str = "cascade",
        fit_primary: bool = True,
    ) -> None:
        if not 0.0 <= filter_cutoff < 1.0:
            raise ValueError("filter_cutoff must be in [0, 1)")
        self.name = name
        self.primary = primary
        self.matcher = matcher
        self.prefilter = prefilter
        self.filter_cutoff = filter_cutoff
        self.verifier = verifier
        self.fit_primary = fit_primary
        self.threshold = float(primary.threshold)
        self.stats = CascadeStats()

    # ------------------------------------------------------------------
    # Detector API
    # ------------------------------------------------------------------
    def fit(
        self, train: ClipDataset, rng: Optional[np.random.Generator] = None
    ) -> FitReport:
        """Fit every stage on the same data (primary unless pre-fitted)."""
        notes = []
        seconds = 0.0
        stages = [("matcher", self.matcher), ("prefilter", self.prefilter)]
        if self.fit_primary:
            stages.append(("primary", self.primary))
        for label, stage in stages:
            if stage is None:
                continue
            report = stage.fit(train, rng=rng)
            seconds += report.train_seconds
            notes.append(f"{label}={type(stage).__name__}")
        self.threshold = float(self.primary.threshold)
        return FitReport(
            train_seconds=seconds, n_train=len(train), notes=" ".join(notes)
        )

    @shaped("[n]->(n,):float64")
    def predict_proba(self, clips: Sequence[Clip]) -> np.ndarray:
        n = len(clips)
        scores = np.zeros(n, dtype=np.float64)
        unresolved = np.ones(n, dtype=bool)
        self.stats.windows += n
        if n == 0:
            return scores

        n_matched = n_filtered = n_primary = 0
        if self.matcher is not None:
            match_scores = np.asarray(self.matcher.predict_proba(clips))
            hot = match_scores >= self.matcher.threshold
            scores[hot] = np.maximum(match_scores[hot], self.threshold)
            unresolved &= ~hot
            n_matched = int(hot.sum())
            self.stats.matched_hot += n_matched

        if self.prefilter is not None and unresolved.any():
            idx = np.flatnonzero(unresolved)
            sub = [clips[i] for i in idx]
            filter_scores = np.asarray(self.prefilter.predict_proba(sub))
            # clamp so a resolved-cold window can never cross the flag line
            cutoff = min(self.filter_cutoff, 0.5 * self.threshold)
            cold = filter_scores < cutoff
            scores[idx[cold]] = filter_scores[cold]
            unresolved[idx[cold]] = False
            n_filtered = int(cold.sum())
            self.stats.filtered_cold += n_filtered

        if unresolved.any():
            idx = np.flatnonzero(unresolved)
            sub = [clips[i] for i in idx]
            scores[idx] = np.asarray(self.primary.predict_proba(sub))
            n_primary = len(idx)
            self.stats.primary_scored += n_primary
        self._tracer.event(
            "cascade_batch",
            windows=n,
            matched_hot=n_matched,
            filtered_cold=n_filtered,
            primary_scored=n_primary,
        )
        return scores

    # ------------------------------------------------------------------
    # verification stage
    # ------------------------------------------------------------------
    @shaped("[n]->(n,):bool")
    def verify_flagged(self, clips: Sequence[Clip]) -> np.ndarray:
        """Oracle-check flagged clips; bool array aligned with ``clips``."""
        if self.verifier is None:
            raise RuntimeError("cascade has no verifier stage")
        confirmed = np.array(
            [bool(self.verifier.label(clip)) for clip in clips], dtype=bool
        )
        self.stats.verified += len(clips)
        self.stats.verified_hot += int(confirmed.sum())
        return confirmed

    def reset_stats(self) -> None:
        self.stats = CascadeStats()

    def __getstate__(self):
        """Pickle without the tracer.

        ``detector_to_state`` pickles the whole detector graph to ship
        it to spawn workers; a live tracer holds an open file handle and
        must stay in the parent (workers score against the null tracer).
        """
        state = self.__dict__.copy()
        state.pop("_tracer", None)
        return state

"""Staged detector cascade: the EPIC-style meta-detector.

The accuracy-vs-runtime trade-off the survey closes on is not "pick one
detector" but "spend expensive detectors only where cheap ones are
unsure".  :class:`CascadeDetector` chains the library's generations into
one :class:`~repro.core.detector.Detector`:

1. **matcher** (optional) — an exact/fuzzy pattern matcher; windows that
   match a known-bad library pattern are resolved *hot* immediately,
2. **prefilter** (optional) — a cheap shallow model run at a high-recall
   (i.e. deliberately low) cutoff; windows it scores confidently cold are
   resolved without ever reaching the expensive stage,
3. **primary** — the expensive detector (typically the CNN) scores
   whatever survives,
4. **verifier** (optional) — a :class:`~repro.litho.HotspotOracle` (or
   anything with ``label(clip)``) re-checks flagged windows on demand via
   :meth:`verify_flagged`.

Per-stage resolution counts accumulate in :class:`CascadeStats` so the
scan report can show exactly where windows were decided.  Every stage is a
pure per-clip function, so cascade scores are independent of batching —
the property the dedup cache and the worker pool both rely on.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..contracts import shaped
from ..core.detector import Detector, FitReport
from ..data.dataset import ClipDataset
from ..geometry.layout import Clip
from .trace import NULL_TRACER

PathLike = Union[str, Path]

#: bump when the persisted tuning layout changes incompatibly
TUNING_SCHEMA = 1


@dataclass
class CascadeStats:
    """Where windows got resolved, accumulated across predict calls."""

    windows: int = 0
    matched_hot: int = 0
    filtered_cold: int = 0
    primary_scored: int = 0
    verified: int = 0
    verified_hot: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "windows": self.windows,
            "matched_hot": self.matched_hot,
            "filtered_cold": self.filtered_cold,
            "primary_scored": self.primary_scored,
            "verified": self.verified,
            "verified_hot": self.verified_hot,
        }

    def merge(self, other: "CascadeStats") -> None:
        self.windows += other.windows
        self.matched_hot += other.matched_hot
        self.filtered_cold += other.filtered_cold
        self.primary_scored += other.primary_scored
        self.verified += other.verified
        self.verified_hot += other.verified_hot

    def summary(self) -> str:
        return (
            f"cascade: {self.windows} windows -> "
            f"{self.matched_hot} matched hot, "
            f"{self.filtered_cold} filtered cold, "
            f"{self.primary_scored} primary-scored"
            + (
                f", {self.verified_hot}/{self.verified} verified hot"
                if self.verified
                else ""
            )
        )


class CascadeDetector(Detector):  # lint: disable=raster-parity  (stages are heterogeneous; engine picks the path per stage)
    """matcher -> prefilter -> primary staged flow behind the Detector API.

    Resolution semantics (per clip, order matters):

    * matcher score ``>= matcher.threshold`` resolves **hot** with final
      score ``max(match_score, self.threshold)`` (always flagged),
    * prefilter score ``< filter_cutoff`` resolves **cold** with the
      prefilter's own score (the cutoff is clamped below the cascade
      threshold, so resolved-cold windows are never flagged),
    * everything else gets the primary detector's score verbatim.

    ``filter_cutoff`` is the recall knob: it must stay small (high recall
    on the prefilter) or the cascade trades hotspots for speed.
    """

    #: per-scan span tracer, swapped in by the engine around a scan;
    #: never pickled (see __getstate__) so spawn workers ship clean
    _tracer = NULL_TRACER

    def __init__(
        self,
        primary: Detector,
        matcher=None,
        prefilter=None,
        filter_cutoff: float = 0.05,
        verifier=None,
        name: str = "cascade",
        fit_primary: bool = True,
    ) -> None:
        if not 0.0 <= filter_cutoff < 1.0:
            raise ValueError("filter_cutoff must be in [0, 1)")
        self.name = name
        self.primary = primary
        self.matcher = matcher
        self.prefilter = prefilter
        self.filter_cutoff = filter_cutoff
        self.verifier = verifier
        self.fit_primary = fit_primary
        self.threshold = float(primary.threshold)
        self.stats = CascadeStats()

    # ------------------------------------------------------------------
    # Detector API
    # ------------------------------------------------------------------
    def fit(
        self, train: ClipDataset, rng: Optional[np.random.Generator] = None
    ) -> FitReport:
        """Fit every stage on the same data (primary unless pre-fitted)."""
        notes = []
        seconds = 0.0
        stages = [("matcher", self.matcher), ("prefilter", self.prefilter)]
        if self.fit_primary:
            stages.append(("primary", self.primary))
        for label, stage in stages:
            if stage is None:
                continue
            report = stage.fit(train, rng=rng)
            seconds += report.train_seconds
            notes.append(f"{label}={type(stage).__name__}")
        self.threshold = float(self.primary.threshold)
        return FitReport(
            train_seconds=seconds, n_train=len(train), notes=" ".join(notes)
        )

    @shaped("[n]->(n,):float64")
    def predict_proba(self, clips: Sequence[Clip]) -> np.ndarray:
        n = len(clips)
        scores = np.zeros(n, dtype=np.float64)
        unresolved = np.ones(n, dtype=bool)
        self.stats.windows += n
        if n == 0:
            return scores

        n_matched = n_filtered = n_primary = 0
        if self.matcher is not None:
            match_scores = np.asarray(self.matcher.predict_proba(clips))
            hot = match_scores >= self.matcher.threshold
            scores[hot] = np.maximum(match_scores[hot], self.threshold)
            unresolved &= ~hot
            n_matched = int(hot.sum())
            self.stats.matched_hot += n_matched

        if self.prefilter is not None and unresolved.any():
            idx = np.flatnonzero(unresolved)
            sub = [clips[i] for i in idx]
            filter_scores = np.asarray(self.prefilter.predict_proba(sub))
            # clamp so a resolved-cold window can never cross the flag line
            cutoff = min(self.filter_cutoff, 0.5 * self.threshold)
            cold = filter_scores < cutoff
            scores[idx[cold]] = filter_scores[cold]
            unresolved[idx[cold]] = False
            n_filtered = int(cold.sum())
            self.stats.filtered_cold += n_filtered

        if unresolved.any():
            idx = np.flatnonzero(unresolved)
            sub = [clips[i] for i in idx]
            scores[idx] = np.asarray(self.primary.predict_proba(sub))
            n_primary = len(idx)
            self.stats.primary_scored += n_primary
        self._tracer.event(
            "cascade_batch",
            windows=n,
            matched_hot=n_matched,
            filtered_cold=n_filtered,
            primary_scored=n_primary,
        )
        return scores

    # ------------------------------------------------------------------
    # verification stage
    # ------------------------------------------------------------------
    @shaped("[n]->(n,):bool")
    def verify_flagged(self, clips: Sequence[Clip]) -> np.ndarray:
        """Oracle-check flagged clips; bool array aligned with ``clips``."""
        if self.verifier is None:
            raise RuntimeError("cascade has no verifier stage")
        confirmed = np.array(
            [bool(self.verifier.label(clip)) for clip in clips], dtype=bool
        )
        self.stats.verified += len(clips)
        self.stats.verified_hot += int(confirmed.sum())
        return confirmed

    def reset_stats(self) -> None:
        self.stats = CascadeStats()

    def apply_tuning(self, tuning: "CascadeTuning") -> None:
        """Adopt a :func:`tune_cascade` result as the live filter cutoff.

        Refuses a tuning computed against a different flag threshold:
        the zero-missed guarantee only holds for the threshold the
        calibration sweep was run with.
        """
        if abs(tuning.threshold - self.threshold) > 1e-12:
            raise ValueError(
                f"tuning was computed for threshold={tuning.threshold}, "
                f"cascade has threshold={self.threshold}"
            )
        if not 0.0 <= tuning.filter_cutoff < 1.0:
            raise ValueError("tuned filter_cutoff must be in [0, 1)")
        self.filter_cutoff = float(tuning.filter_cutoff)

    def __getstate__(self):
        """Pickle without the tracer.

        ``detector_to_state`` pickles the whole detector graph to ship
        it to spawn workers; a live tracer holds an open file handle and
        must stay in the parent (workers score against the null tracer).
        """
        state = self.__dict__.copy()
        state.pop("_tracer", None)
        return state


# --------------------------------------------------------------------------
# EPIC-style cascade threshold auto-tuning
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class CascadeTuning:
    """Result of a :func:`tune_cascade` sweep, JSON-persistable.

    ``filter_cutoff`` is the largest prefilter cutoff that resolves the
    most calibration windows cold while missing **zero** true hotspots;
    ``sweep`` keeps the full candidate table (cutoff, skip_rate, missed)
    so reports can show the whole trade-off curve, not just the pick.
    """

    filter_cutoff: float
    skip_rate: float
    threshold: float
    n_calibration: int
    n_hot: int
    #: smallest prefilter score over true-hot calibration windows — the
    #: binding constraint; infinity when calibration has no hot windows
    min_hot_score: float
    #: True when the 0.5*threshold runtime clamp, not ``min_hot_score``,
    #: limited the chosen cutoff
    clamped: bool
    sweep: Tuple[Tuple[float, float, int], ...]

    def summary(self) -> str:
        limit = "threshold clamp" if self.clamped else "min hot score"
        return (
            f"tuned filter_cutoff={self.filter_cutoff:.6g} "
            f"(skip {self.skip_rate:.1%} of {self.n_calibration} windows, "
            f"0 of {self.n_hot} hotspots missed; bound by {limit})"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": TUNING_SCHEMA,
            "filter_cutoff": self.filter_cutoff,
            "skip_rate": self.skip_rate,
            "threshold": self.threshold,
            "n_calibration": self.n_calibration,
            "n_hot": self.n_hot,
            # null, not Infinity: the bare IEEE value is a JSON extension
            # that strict parsers (jq, browsers) reject
            "min_hot_score": (
                None if math.isinf(self.min_hot_score) else self.min_hot_score
            ),
            "clamped": self.clamped,
            "sweep": [list(row) for row in self.sweep],
        }

    def save(self, path: PathLike) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, path: PathLike) -> "CascadeTuning":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        schema = payload.pop("schema", None)
        if schema != TUNING_SCHEMA:
            raise ValueError(
                f"unsupported cascade tuning schema {schema!r} "
                f"(expected {TUNING_SCHEMA})"
            )
        payload["sweep"] = tuple(
            (float(c), float(s), int(m)) for c, s, m in payload["sweep"]
        )
        if payload.get("min_hot_score") is None:
            payload["min_hot_score"] = float("inf")
        return cls(**payload)


def tune_cascade(
    cascade: CascadeDetector,
    calibration: ClipDataset,
    max_sweep_points: int = 33,
) -> CascadeTuning:
    """Sweep prefilter cutoffs on labelled calibration windows.

    EPIC tunes its meta-classifier so the cheap stages absorb as much of
    the workload as possible without giving up a single hotspot.  This
    is that sweep for :class:`CascadeDetector`: score ``calibration``
    with the prefilter, find the largest cutoff that filters zero
    true-hot windows, and report the cold-skip rate achieved there.

    The chosen cutoff is additionally capped at ``0.5 * threshold``
    because :meth:`CascadeDetector.predict_proba` clamps there at
    runtime (a resolved-cold window must never be flaggable); a tuning
    that ignored the clamp would report skip rates the live cascade
    cannot deliver.

    Raises ``ValueError`` when the cascade has no prefilter stage or the
    calibration set is empty.
    """
    if cascade.prefilter is None:
        raise ValueError("cascade has no prefilter stage to tune")
    if len(calibration) == 0:
        raise ValueError("calibration set is empty")

    scores = np.asarray(
        cascade.prefilter.predict_proba(calibration.clips), dtype=np.float64
    )
    labels = np.asarray(calibration.labels, dtype=np.int64)
    hot = labels == 1
    n = len(scores)
    n_hot = int(hot.sum())

    # a window is resolved cold when score < cutoff (strict), so the
    # largest zero-missed cutoff is exactly the smallest hot score
    min_hot_score = float(scores[hot].min()) if n_hot else float("inf")
    clamp = 0.5 * cascade.threshold
    chosen = min(min_hot_score, clamp)
    clamped = clamp < min_hot_score
    # stay inside the CascadeDetector filter_cutoff domain [0, 1)
    chosen = float(min(max(chosen, 0.0), np.nextafter(1.0, 0.0)))

    candidates = np.unique(np.concatenate([scores, [chosen]]))
    if len(candidates) > max_sweep_points:
        idx = np.linspace(0, len(candidates) - 1, max_sweep_points)
        candidates = np.unique(
            np.concatenate(
                [candidates[idx.round().astype(int)], [chosen]]
            )
        )
    sweep = tuple(
        (
            float(c),
            float((scores < c).mean()),
            int((hot & (scores < c)).sum()),
        )
        for c in candidates
    )

    return CascadeTuning(
        filter_cutoff=chosen,
        skip_rate=float((scores < chosen).mean()) if n else 0.0,
        threshold=float(cascade.threshold),
        n_calibration=n,
        n_hot=n_hot,
        min_hot_score=min_hot_score,
        clamped=clamped,
        sweep=sweep,
    )

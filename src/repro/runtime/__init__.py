"""Production full-chip scan runtime.

The deployment path of the library: :class:`ScanEngine` streams tile
windows out of a layer, dedups repeated patterns through a content-hash
:class:`ScoreCache`, fans unique clips over a spawn-safe
:class:`WorkerPool`, optionally routes scoring through a staged
:class:`CascadeDetector` (pattern match -> shallow prefilter -> CNN ->
oracle verify), and reports throughput and per-stage resolution via
:class:`Telemetry` inside the returned :class:`ScanReport`.  When the
detector scores rasters, the engine switches to the raster-plane fast
path: each band of scan rows is rasterized once and windows are scored
as batched slices of the shared plane.

Scan execution is fault tolerant: the pool supervises chunks (timeout /
retry / rebuild / in-process degradation), the engine checkpoints
progress atomically and can ``resume=True`` an interrupted scan to a
byte-identical report, corrupt persisted caches are quarantined rather
than fatal, and :mod:`repro.runtime.faults` provides the deterministic
injection harness that proves all of it under test.

The legacy :func:`repro.core.scan.scan_layer` entry point delegates here.
"""

from .cache import CacheIntegrityError, ScoreCache
from .cascade import CascadeDetector, CascadeStats
from .checkpoint import (
    CHECKPOINT_NAME,
    Checkpointer,
    CheckpointMismatch,
    scan_config_hash,
)
from .engine import ScanEngine, ScanReport
from .faults import (
    INJECTION_POINTS,
    FaultInjector,
    FaultPolicy,
    FaultRule,
    InjectedFault,
)
from .pool import WorkerPool
from .telemetry import Histogram, Telemetry, Timer

__all__ = [
    "ScanEngine",
    "ScanReport",
    "ScoreCache",
    "CacheIntegrityError",
    "CascadeDetector",
    "CascadeStats",
    "WorkerPool",
    "Telemetry",
    "Timer",
    "Histogram",
    "Checkpointer",
    "CheckpointMismatch",
    "CHECKPOINT_NAME",
    "scan_config_hash",
    "FaultInjector",
    "FaultPolicy",
    "FaultRule",
    "InjectedFault",
    "INJECTION_POINTS",
]

"""Production full-chip scan runtime.

The deployment path of the library: :class:`ScanEngine` streams tile
windows out of a layer, dedups repeated patterns through a content-hash
:class:`ScoreCache`, fans unique clips over a spawn-safe
:class:`WorkerPool`, optionally routes scoring through a staged
:class:`CascadeDetector` (pattern match -> shallow prefilter -> CNN ->
oracle verify), and reports throughput and per-stage resolution via
:class:`Telemetry` inside the returned :class:`ScanReport`.  When the
detector scores rasters, the engine switches to the raster-plane fast
path: each band of scan rows is rasterized once and windows are scored
as batched slices of the shared plane.

Scan execution is fault tolerant: the pool supervises chunks (timeout /
retry / rebuild / in-process degradation), the engine checkpoints
progress atomically and can ``resume=True`` an interrupted scan to a
byte-identical report, corrupt persisted caches are quarantined rather
than fatal, and :mod:`repro.runtime.faults` provides the deterministic
injection harness that proves all of it under test.

Scans are observable end to end: configuration arrives as one grouped,
frozen :class:`EngineConfig` (``ScanEngine(detector, config=...)``; the
flat legacy kwargs survive behind a ``DeprecationWarning`` shim),
:meth:`ScanEngine.start` runs the sweep on a background thread behind a
:class:`ScanSession` handle, and :class:`ObservabilityConfig` turns on
the three sinks of :mod:`repro.runtime.trace` /
:mod:`repro.runtime.metrics`: a hierarchical JSONL span log (scan →
phase → chunk, with counter deltas and worker attribution), an
end-of-scan metrics snapshot (JSON + Prometheus text exposition), and
live progress heartbeats — all without perturbing a single score.

Above the single engine, :mod:`repro.runtime.shard` scales to full
chips: :func:`scan_chip` plans halo-overlapped shards
(:class:`ShardPlanner`), executes them on independent engines with
instance-level fingerprint dedup and incremental re-scan
(:class:`ShardRunner`), and merges the per-shard reports
(:func:`merge_reports`) into one report byte-identical to the
monolithic scan.

The legacy :func:`repro.core.scan.scan_layer` entry point delegates here.
"""

from .cache import CacheIntegrityError, ScoreCache
from .cascade import (
    TUNING_SCHEMA,
    CascadeDetector,
    CascadeStats,
    CascadeTuning,
    tune_cascade,
)
from .checkpoint import (
    CHECKPOINT_NAME,
    Checkpointer,
    CheckpointMismatch,
    quarantine_file,
    scan_config_hash,
)
from .config import (
    LEGACY_KWARGS,
    BatchConfig,
    CheckpointConfig,
    ChipScanConfig,
    EngineConfig,
    ObservabilityConfig,
    RasterConfig,
    SupervisionConfig,
)
from .engine import REPORT_SCHEMA, ScanEngine, ScanReport, ScanSession
from .faults import (
    INJECTION_POINTS,
    FaultInjector,
    FaultPolicy,
    FaultRule,
    InjectedFault,
)
from .metrics import (
    BASELINE_COUNTERS,
    INFER_COUNTERS,
    METRICS_SCHEMA,
    SERVICE_COUNTERS,
    SHARD_COUNTERS,
    export_metrics,
    format_snapshot,
    metrics_snapshot,
    to_prometheus,
)
from .pool import WorkerPool
from .shard import (
    MANIFEST_NAME,
    PLAN_SCHEMA,
    ChipManifest,
    ShardPlan,
    ShardPlanner,
    ShardRunner,
    ShardSpec,
    merge_reports,
    scan_chip,
)
from .telemetry import Histogram, Telemetry, Timer
from .trace import (
    NULL_TRACER,
    TRACE_NAME,
    TRACE_SCHEMA,
    ProgressEvent,
    ProgressReporter,
    Tracer,
    read_trace,
)

__all__ = [
    "ScanEngine",
    "ScanReport",
    "ScanSession",
    "REPORT_SCHEMA",
    "EngineConfig",
    "BatchConfig",
    "RasterConfig",
    "SupervisionConfig",
    "CheckpointConfig",
    "ObservabilityConfig",
    "ChipScanConfig",
    "LEGACY_KWARGS",
    "scan_chip",
    "ShardPlanner",
    "ShardPlan",
    "ShardSpec",
    "ShardRunner",
    "merge_reports",
    "ChipManifest",
    "MANIFEST_NAME",
    "PLAN_SCHEMA",
    "ScoreCache",
    "CacheIntegrityError",
    "CascadeDetector",
    "CascadeStats",
    "CascadeTuning",
    "tune_cascade",
    "TUNING_SCHEMA",
    "WorkerPool",
    "Telemetry",
    "Timer",
    "Histogram",
    "Checkpointer",
    "CheckpointMismatch",
    "CHECKPOINT_NAME",
    "quarantine_file",
    "scan_config_hash",
    "FaultInjector",
    "FaultPolicy",
    "FaultRule",
    "InjectedFault",
    "INJECTION_POINTS",
    "Tracer",
    "ProgressEvent",
    "ProgressReporter",
    "read_trace",
    "NULL_TRACER",
    "TRACE_NAME",
    "TRACE_SCHEMA",
    "metrics_snapshot",
    "format_snapshot",
    "to_prometheus",
    "export_metrics",
    "METRICS_SCHEMA",
    "BASELINE_COUNTERS",
    "SERVICE_COUNTERS",
    "INFER_COUNTERS",
    "SHARD_COUNTERS",
]

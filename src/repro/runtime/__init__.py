"""Production full-chip scan runtime.

The deployment path of the library: :class:`ScanEngine` streams tile
windows out of a layer, dedups repeated patterns through a content-hash
:class:`ScoreCache`, fans unique clips over a spawn-safe
:class:`WorkerPool`, optionally routes scoring through a staged
:class:`CascadeDetector` (pattern match -> shallow prefilter -> CNN ->
oracle verify), and reports throughput and per-stage resolution via
:class:`Telemetry` inside the returned :class:`ScanReport`.  When the
detector scores rasters, the engine switches to the raster-plane fast
path: each band of scan rows is rasterized once and windows are scored
as batched slices of the shared plane.

The legacy :func:`repro.core.scan.scan_layer` entry point delegates here.
"""

from .cache import ScoreCache
from .cascade import CascadeDetector, CascadeStats
from .engine import ScanEngine, ScanReport
from .pool import WorkerPool
from .telemetry import Histogram, Telemetry, Timer

__all__ = [
    "ScanEngine",
    "ScanReport",
    "ScoreCache",
    "CascadeDetector",
    "CascadeStats",
    "WorkerPool",
    "Telemetry",
    "Timer",
    "Histogram",
]

"""ScanEngine: the production full-chip scan path.

Where :func:`repro.core.scan.scan_layer` was a toy sweep (materialize
every clip, score once, re-score repeats), the engine is built for the
chip-scale workload the runtime figures motivate:

* **streaming tiles** — windows come from
  :func:`~repro.geometry.layout.iter_tile_centers` in bounded chunks; the
  full clip population is never materialized unless the caller asks to
  keep it for report compatibility,
* **dedup scoring** — a :class:`~repro.runtime.cache.ScoreCache` keyed on
  the canonical clip fingerprint scores each distinct pattern once per
  scan (and, with a cache directory, once *ever*); repeated cells make
  this the single biggest runtime win available,
* **worker pool** — unique clips fan out over a ``spawn``-safe
  :class:`~repro.runtime.pool.WorkerPool` with ordered reassembly, so
  ``workers>1`` returns byte-identical scores to ``workers=1``,
* **detector cascade** — any detector works, but a
  :class:`~repro.runtime.cascade.CascadeDetector` resolves most windows
  in its cheap stages and its per-stage counts land in the report,
* **raster-plane fast path** — when the detector scores rasters
  (:func:`~repro.core.detector.supports_raster_scan`), each band of scan
  rows is rasterized **once** into a shared plane and every window
  becomes a pixel-aligned numpy slice of it; whole slabs flow through
  the detector's batched ``predict_proba_rasters`` without constructing
  per-window :class:`Clip` objects.  Overlapping windows stop paying
  ``overlap x`` redundant rasterization, and feature extraction runs
  vectorized over the batch (one ``dctn`` for a whole chunk).  The clip
  path remains as the reference implementation and handles detectors
  that consume geometry directly,
* **telemetry** — windows/s, per-stage latency, cache and dedup ratios,
  embedded in the returned :class:`ScanReport` (a compatible superset of
  :class:`~repro.core.scan.ScanResult`),
* **fault tolerance** — chunk scoring runs under the
  :class:`~repro.runtime.pool.WorkerPool` supervision ladder (timeout /
  retry / pool rebuild / in-process degradation), periodic atomic
  **checkpoints** (:mod:`repro.runtime.checkpoint`) let an interrupted
  scan ``resume=True`` to a byte-identical report, corrupt persisted
  caches are quarantined instead of fatal, and the whole stack is
  exercisable via deterministic :mod:`~repro.runtime.faults` injection.
"""

from __future__ import annotations

import json
import threading
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .. import contracts
from ..core.detector import supports_raster_scan
from ..core.scan import ScanResult
from ..geometry.layout import (
    Clip,
    Layer,
    clip_fingerprint,
    count_tile_centers,
    extract_clip,
    iter_tile_centers,
)
from ..geometry.rasterize import raster_fingerprint, rasterize_region
from ..geometry.rect import Rect
from .cache import ScoreCache
from .cascade import CascadeDetector, CascadeStats
from .checkpoint import CHECKPOINT_NAME, Checkpointer, scan_config_hash
from .config import EngineConfig, LEGACY_KWARGS
from .faults import FaultInjector
from .pool import WorkerPool
from .telemetry import Telemetry
from .trace import NULL_TRACER, ProgressEvent, ScanObservability

#: bump when the ScanReport JSON layout changes incompatibly
#: (2 added shard provenance: ``shard_id`` / ``plan_digest``)
REPORT_SCHEMA = 2


@dataclass
class ScanReport(ScanResult):
    """ScanResult plus runtime telemetry — what the engine returns.

    ``clips`` is populated only when the engine ran with
    ``keep_clips=True`` (the default, for drop-in compatibility);
    flagged windows are *always* available via :meth:`flagged_clips`,
    which falls back to the separately retained ``flagged_windows``.
    """

    flagged_windows: List[Clip] = field(default_factory=list)
    telemetry: Optional[Telemetry] = None
    cascade_stats: Optional[CascadeStats] = None
    n_windows: int = 0
    n_scored: int = 0
    cache_hits: int = 0
    elapsed_s: float = 0.0
    #: which scan strategy produced the scores: "clip" or "raster"
    scan_path: str = "clip"
    #: shard provenance (schema 2): the shard's index within its plan,
    #: or None for a monolithic / merged chip report
    shard_id: Optional[int] = None
    #: digest of the ShardPlan this report was scanned (or merged) under;
    #: None for a plain monolithic engine scan
    plan_digest: Optional[str] = None

    @property
    def flag_ratio(self) -> float:
        """Fraction of windows sent to verification (simulation cost)."""
        return self.n_flagged / self.n_windows if self.n_windows else 0.0

    @property
    def dedup_ratio(self) -> float:
        """Fraction of windows resolved without invoking the detector."""
        if not self.n_windows:
            return 0.0
        return 1.0 - self.n_scored / self.n_windows

    @property
    def windows_per_s(self) -> float:
        return self.n_windows / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def flagged_clips(self) -> List[Clip]:
        if self.clips:
            return super().flagged_clips()
        return list(self.flagged_windows)

    def summary(self) -> str:
        lines = [
            f"{self.n_windows} windows, {self.n_flagged} flagged "
            f"({100 * self.flag_ratio:.1f}%), "
            f"{self.n_scored} scored ({100 * self.dedup_ratio:.1f}% dedup), "
            f"{self.windows_per_s:,.0f} windows/s in {self.elapsed_s:.2f}s "
            f"[{self.scan_path} path]"
        ]
        if self.cascade_stats is not None:
            lines.append(self.cascade_stats.summary())
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize the report as a versioned, canonical JSON document.

        Carries everything numeric — centers, scores, flags, confirmed
        verdicts, telemetry (losslessly, via
        :meth:`~repro.runtime.telemetry.Telemetry.to_state`), cascade
        stats, and the summary fields.  Geometry payloads (``clips``,
        ``flagged_windows``) are deliberately *not* serialized: they are
        derivable from the layer plus ``centers`` and would dominate the
        wire size.  Keys are sorted, so ``from_json`` → ``to_json``
        round-trips byte-identically.
        """
        payload = {
            "schema": REPORT_SCHEMA,
            "scan_path": self.scan_path,
            "shard_id": None if self.shard_id is None else int(self.shard_id),
            "plan_digest": (
                None if self.plan_digest is None else str(self.plan_digest)
            ),
            "n_windows": self.n_windows,
            "n_scored": self.n_scored,
            "cache_hits": self.cache_hits,
            "elapsed_s": self.elapsed_s,
            "centers": [[int(x), int(y)] for x, y in self.centers],
            "scores": [float(s) for s in self.scores],
            "flagged": [bool(f) for f in self.flagged],
            "confirmed": (
                None
                if self.confirmed is None
                else [bool(c) for c in self.confirmed]
            ),
            "telemetry": (
                None if self.telemetry is None else self.telemetry.to_state()
            ),
            "cascade_stats": (
                None
                if self.cascade_stats is None
                else self.cascade_stats.as_dict()
            ),
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, document: str) -> "ScanReport":
        """Rebuild a report serialized by :meth:`to_json`.

        Schema-1 documents (pre shard provenance) migrate forward: the
        ``shard_id`` / ``plan_digest`` fields default to None, so a
        migrated report re-serializes as a valid schema-2 document.
        Documents from a *newer* schema are refused; the rebuilt report
        has empty ``clips`` / ``flagged_windows`` (see :meth:`to_json`).
        """
        payload = json.loads(document)
        schema = payload.get("schema")
        if schema not in (1, REPORT_SCHEMA):
            raise ValueError(
                f"unsupported ScanReport schema {schema!r} "
                f"(this build reads {REPORT_SCHEMA})"
            )
        shard_id = payload.get("shard_id")
        plan_digest = payload.get("plan_digest")
        return cls(
            centers=[(int(x), int(y)) for x, y in payload["centers"]],
            clips=[],
            scores=np.asarray(payload["scores"], dtype=np.float64),
            flagged=np.asarray(payload["flagged"], dtype=bool),
            confirmed=(
                None
                if payload["confirmed"] is None
                else np.asarray(payload["confirmed"], dtype=bool)
            ),
            flagged_windows=[],
            telemetry=(
                None
                if payload["telemetry"] is None
                else Telemetry.from_state(payload["telemetry"])
            ),
            cascade_stats=(
                None
                if payload["cascade_stats"] is None
                else CascadeStats(**payload["cascade_stats"])
            ),
            n_windows=int(payload["n_windows"]),
            n_scored=int(payload["n_scored"]),
            cache_hits=int(payload["cache_hits"]),
            elapsed_s=float(payload["elapsed_s"]),
            scan_path=str(payload["scan_path"]),
            shard_id=None if shard_id is None else int(shard_id),
            plan_digest=None if plan_digest is None else str(plan_digest),
        )


def _iter_infer_detectors(detector) -> Iterator:
    """Yield ``detector`` and any cascade stages that expose infer stats."""
    seen = set()
    stack = [detector]
    while stack:
        det = stack.pop()
        if id(det) in seen or det is None:
            continue
        seen.add(id(det))
        if hasattr(det, "infer_stats"):
            yield det
        if isinstance(det, CascadeDetector):
            stack.extend((det.matcher, det.prefilter, det.primary))


def _apply_infer_backend(detector, backend: str) -> bool:
    """Set the inference backend on every backend-aware (sub-)detector.

    Returns True if at least one detector accepted the backend — a
    cascade counts when its primary (or any stage) is backend-aware.
    """
    applied = False
    for det in _iter_infer_detectors(detector):
        if hasattr(det, "set_backend"):
            det.set_backend(backend)
            applied = True
    return applied


def _sum_infer_stats(detector) -> dict:
    """Aggregate ``infer_*`` counters across the detector tree."""
    totals: dict = {}
    for det in _iter_infer_detectors(detector):
        for key, value in det.infer_stats().items():
            totals[key] = totals.get(key, 0) + int(value)
    return totals


def _chunked(items: Iterable, size: int) -> Iterator[list]:
    chunk: list = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _iter_raster_bands(
    region: Rect,
    window_nm: int,
    step: int,
    pixel_nm: int,
    band_rows: int,
    max_plane_pixels: int,
) -> Iterator[Tuple[List[Tuple[int, int]], Rect]]:
    """Group the scan grid into shared-raster bands.

    Yields ``(centers, band_rect)`` pairs where ``band_rect`` is the
    union bounding box of the member windows — each band is rasterized
    once and every member window is a slice of that plane.  Bands hold
    ``band_rows`` consecutive window-rows (so vertically overlapping
    windows share pixels; the re-rendered overlap between *bands* is the
    halo that keeps band-edge windows exact).  Centers come out in the
    same global row-major order as :func:`iter_tile_centers`: rows are
    grouped consecutively, and a band is split along x only when it has
    a single row, so concatenating the yielded center lists reproduces
    the clip-path ordering exactly.

    ``max_plane_pixels`` bounds plane memory: row count shrinks first,
    then single rows are segmented into column runs.
    """
    half = window_nm // 2
    xs = list(range(region.x1 + half, region.x2 - window_nm + half + 1, step))
    ys = list(range(region.y1 + half, region.y2 - window_nm + half + 1, step))
    if not xs or not ys:
        return

    def band_rect(x_centers, y_centers) -> Rect:
        lo = Rect.from_center(x_centers[0], y_centers[0], window_nm, window_nm)
        hi = Rect.from_center(x_centers[-1], y_centers[-1], window_nm, window_nm)
        return Rect(lo.x1, lo.y1, hi.x2, hi.y2)

    full_w_px = ((len(xs) - 1) * step + window_nm) // pixel_nm
    max_h_px = max_plane_pixels // max(1, full_w_px)
    rows_fit = (max_h_px * pixel_nm - window_nm) // step + 1
    if rows_fit >= 1:
        rows = min(max(1, band_rows), rows_fit, len(ys))
        for r0 in range(0, len(ys), rows):
            y_band = ys[r0 : r0 + rows]
            yield [(x, y) for y in y_band for x in xs], band_rect(xs, y_band)
        return

    # Even one full-width row busts the pixel budget: segment each row
    # along x (legal only for single-row bands — see ordering note above).
    max_w_px = max_plane_pixels // max(1, window_nm // pixel_nm)
    cols = max(1, (max_w_px * pixel_nm - window_nm) // step + 1)
    for y in ys:
        for c0 in range(0, len(xs), cols):
            x_seg = xs[c0 : c0 + cols]
            yield [(x, y) for x in x_seg], band_rect(x_seg, [y])


class ScanEngine:
    """Streaming, deduplicating, multi-process full-chip scanner.

    Parameters
    ----------
    detector:
        Any fitted :class:`~repro.core.detector.Detector` (a
        :class:`~repro.runtime.cascade.CascadeDetector` gets its stage
        stats surfaced in the report).
    config:
        An :class:`~repro.runtime.config.EngineConfig` grouping every
        policy knob — batching/dedup (``config.batch``), the
        raster-plane fast path (``config.raster``), worker supervision
        (``config.supervision``), checkpointing (``config.checkpoint``),
        and span tracing / metrics / progress
        (``config.observability``).  ``None`` means all defaults.  Use
        :meth:`EngineConfig.from_kwargs
        <repro.runtime.config.EngineConfig.from_kwargs>` to build one
        from the historical flat names.
    cache:
        An explicit :class:`ScoreCache` to dedup against (overrides
        ``config.batch.cache_dir``).  Without either, a scan-local cache
        still dedups within the scan; ``batch.dedup=False`` disables
        memoization entirely (every window is scored — the legacy
        ``scan_layer`` contract).
    faults:
        Optional deterministic fault injection: a
        :class:`~repro.runtime.faults.FaultInjector`, a
        :class:`~repro.runtime.faults.FaultPolicy`, or a spec string
        (see :mod:`repro.runtime.faults` for the grammar).
    **legacy_kwargs:
        The pre-``EngineConfig`` flat knobs (``workers=...``,
        ``chunk_timeout_s=...``, ...) keep working through a
        compatibility shim that emits :class:`DeprecationWarning`;
        mixing them with ``config=`` is a ``TypeError``.  See
        :data:`~repro.runtime.config.LEGACY_KWARGS` for the full
        old-name → new-field mapping.
    """

    def __init__(
        self,
        detector,
        config: Optional[EngineConfig] = None,
        *,
        cache: Optional[ScoreCache] = None,
        faults=None,
        **legacy_kwargs,
    ) -> None:
        if legacy_kwargs:
            unknown = sorted(set(legacy_kwargs) - set(LEGACY_KWARGS))
            if unknown:
                raise TypeError(
                    f"unknown ScanEngine option(s) {unknown}; "
                    f"valid flat names: {sorted(LEGACY_KWARGS)}"
                )
            if config is not None:
                raise TypeError(
                    "pass either config=EngineConfig(...) or flat legacy "
                    f"kwargs {sorted(legacy_kwargs)}, not both"
                )
            warnings.warn(
                "flat ScanEngine kwargs are deprecated; pass "
                "config=EngineConfig.from_kwargs("
                + ", ".join(f"{k}=..." for k in sorted(legacy_kwargs))
                + ") instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = EngineConfig.from_kwargs(**legacy_kwargs)
        elif config is None:
            config = EngineConfig()
        self.config = config
        self.detector = detector
        self.infer_backend = config.batch.infer_backend
        if self.infer_backend is not None:
            # applied before any worker pickling so spawned workers
            # inherit the backend choice (plans recompile per process)
            applied = _apply_infer_backend(detector, self.infer_backend)
            if not applied and self.infer_backend != "layers":
                raise TypeError(
                    f"infer_backend={self.infer_backend!r} requested but "
                    f"detector {getattr(detector, 'name', type(detector).__name__)!r} "
                    "(and none of its cascade stages) supports set_backend"
                )
        # flat attribute mirrors: the pre-config public surface, still
        # read by downstream code and kept as plain back-compat aliases
        self.workers = config.batch.workers
        self.chunk_clips = config.batch.chunk_clips
        self.dedup = config.batch.dedup
        self.mp_context = config.batch.mp_context
        self.raster_plane = config.raster.raster_plane
        self.band_rows = config.raster.band_rows
        self.max_plane_pixels = config.raster.max_plane_pixels
        self.chunk_timeout_s = config.supervision.chunk_timeout_s
        self.max_chunk_retries = config.supervision.max_chunk_retries
        self.retry_backoff_s = config.supervision.retry_backoff_s
        self.max_pool_rebuilds = config.supervision.max_pool_rebuilds
        self.degrade_after_failures = config.supervision.degrade_after_failures
        self.on_invalid_score = config.supervision.on_invalid_score
        self.checkpoint_dir = (
            Path(config.checkpoint.dir)
            if config.checkpoint.dir is not None
            else None
        )
        self.checkpoint_every_chunks = config.checkpoint.every_chunks
        if faults is not None and not isinstance(faults, FaultInjector):
            faults = FaultInjector(faults)
        self.faults: Optional[FaultInjector] = faults
        self._persist_path = None
        # persistent (H, W)-keyed window-batch buffers for the raster
        # direct path (in-process pool only — see _iter_plane_chunks)
        self._plane_batch_bufs: Dict[Tuple[int, ...], np.ndarray] = {}
        tag = getattr(detector, "name", type(detector).__name__)
        if cache is not None:
            self.cache: Optional[ScoreCache] = cache
        elif config.batch.cache_dir is not None:
            self.cache = ScoreCache.open_dir(
                config.batch.cache_dir,
                detector_tag=tag,
                max_entries=config.batch.max_cache_entries,
            )
            self._persist_path = ScoreCache.dir_path(config.batch.cache_dir)
        elif config.batch.dedup:
            self.cache = ScoreCache(
                max_entries=config.batch.max_cache_entries, detector_tag=tag
            )
        else:
            self.cache = None

    # ------------------------------------------------------------------
    # scanning
    # ------------------------------------------------------------------
    def scan(
        self,
        layer: Layer,
        region: Rect,
        window_nm: int = 768,
        core_nm: int = 256,
        step_nm: Optional[int] = None,
        oracle=None,
        keep_clips: bool = True,
        resume: bool = False,
    ) -> ScanReport:
        """Sweep the detector over all windows of ``region`` (blocking).

        Mirrors :func:`~repro.core.scan.scan_layer` (including the
        ``ValueError`` on a region smaller than one window) and adds the
        engine behaviors; ``keep_clips=False`` drops the per-window clip
        list for chip-scale runs where only flagged windows matter.
        With a checkpoint directory configured, ``resume=True`` restores
        a prior interrupted scan's progress (refusing a checkpoint from
        a different scan config) and continues to a report
        byte-identical to an uninterrupted run.  :meth:`start` is the
        non-blocking counterpart.
        """
        return self._scan(
            layer,
            region,
            window_nm=window_nm,
            core_nm=core_nm,
            step_nm=step_nm,
            oracle=oracle,
            keep_clips=keep_clips,
            resume=resume,
        )

    def start(
        self,
        layer: Layer,
        region: Rect,
        window_nm: int = 768,
        core_nm: int = 256,
        step_nm: Optional[int] = None,
        oracle=None,
        keep_clips: bool = True,
        resume: bool = False,
    ) -> "ScanSession":
        """Run :meth:`scan` on a background thread; return its session.

        The :class:`ScanSession` observes live progress (it is always a
        heartbeat sink, even with observability otherwise off) and
        delivers the final :class:`ScanReport` — or re-raises the scan's
        exception — from :meth:`ScanSession.result`.
        """
        return ScanSession(
            lambda hook: self._scan(
                layer,
                region,
                window_nm=window_nm,
                core_nm=core_nm,
                step_nm=step_nm,
                oracle=oracle,
                keep_clips=keep_clips,
                resume=resume,
                progress_hook=hook,
            )
        )

    def _scan(
        self,
        layer: Layer,
        region: Rect,
        window_nm: int = 768,
        core_nm: int = 256,
        step_nm: Optional[int] = None,
        oracle=None,
        keep_clips: bool = True,
        resume: bool = False,
        progress_hook=None,
    ) -> ScanReport:
        """The actual sweep, shared by :meth:`scan` and :meth:`start`."""
        step = core_nm if step_nm is None else step_nm
        n_windows = count_tile_centers(region, window_nm, step)
        if n_windows == 0:
            raise ValueError("region too small for the clip window")
        scan_path = self._resolve_scan_path(window_nm, step)
        telemetry = Telemetry()
        obs = ScanObservability.for_scan(
            self.config.observability,
            telemetry,
            n_windows,
            extra_progress=progress_hook,
        )
        tracer = obs.tracer
        if self.cache is not None and self.cache.quarantined_from is not None:
            telemetry.count("cache_quarantined")
            tracer.event(
                "cache_quarantine", path=str(self.cache.quarantined_from)
            )
            self.cache.quarantined_from = None
        t0 = perf_counter()
        # baselines for end-of-scan counter deltas: compiled-plan stats
        # and cascade skip tallies accumulate across scans on the
        # detector, so only this scan's contribution is merged below
        # (in-process scoring only: spawned workers keep their own)
        infer_before = _sum_infer_stats(self.detector)
        detector_stats = getattr(self.detector, "stats", None)
        if isinstance(detector_stats, CascadeStats):
            skip_before = (
                detector_stats.filtered_cold,
                detector_stats.matched_hot,
            )
        else:
            skip_before = None
        centers_iter = iter_tile_centers(region, window_nm, step)
        detach = self._attach_tracer(tracer)
        try:
            with tracer.span(
                "scan",
                kind="scan",
                scan_path=scan_path,
                windows=n_windows,
                workers=self.workers,
                dedup=self.cache is not None,
            ) as scan_span:
                ckpt = self._make_checkpointer(
                    layer, region, window_nm, core_nm, step, scan_path,
                    telemetry, resume, tracer,
                )
                with WorkerPool(
                    self.detector,
                    workers=self.workers,
                    mp_context=self.mp_context,
                    chunk_timeout_s=self.chunk_timeout_s,
                    max_chunk_retries=self.max_chunk_retries,
                    retry_backoff_s=self.retry_backoff_s,
                    max_pool_rebuilds=self.max_pool_rebuilds,
                    degrade_after_failures=self.degrade_after_failures,
                    on_invalid_score=self.on_invalid_score,
                    telemetry=telemetry,
                    faults=self.faults,
                    tracer=tracer,
                ) as pool:
                    if scan_path == "raster":
                        if self.cache is None:
                            centers, clips, scores = self._scan_raster_direct(
                                layer, region, window_nm, core_nm, step, pool,
                                telemetry, keep_clips, ckpt, obs,
                            )
                        else:
                            centers, clips, scores = self._scan_raster_dedup(
                                layer, region, window_nm, core_nm, step, pool,
                                telemetry, keep_clips, ckpt, obs,
                            )
                    elif self.cache is None:
                        centers, clips, scores = self._scan_direct(
                            layer, centers_iter, window_nm, core_nm, pool,
                            telemetry, keep_clips, ckpt, obs,
                        )
                    else:
                        centers, clips, scores = self._scan_dedup(
                            layer, centers_iter, window_nm, core_nm, pool,
                            telemetry, keep_clips, ckpt, obs,
                        )

                contracts.require(
                    "(n,):float64",
                    scores,
                    func="ScanEngine.scan",
                    n=len(centers),
                )
                contracts.require_scores(scores, func="ScanEngine.scan")
                flagged = scores >= self.detector.threshold
                contracts.require(
                    "(n,):bool", flagged, func="ScanEngine.scan", n=len(centers)
                )
                with tracer.span("verify", kind="phase") as verify_span:
                    flagged_windows = self._flagged_windows(
                        layer, centers, clips, flagged, window_nm, core_nm
                    )
                    confirmed = self._verify(flagged_windows, oracle, telemetry)
                    verify_span.set(flagged=len(flagged_windows))
                elapsed = perf_counter() - t0
                telemetry.add_time("total", elapsed)
                infer_after = _sum_infer_stats(self.detector)
                for key in set(infer_before) | set(infer_after):
                    delta = infer_after.get(key, 0) - infer_before.get(key, 0)
                    if delta:
                        telemetry.count(key, delta)
                if skip_before is not None and isinstance(
                    detector_stats, CascadeStats
                ):
                    telemetry.count(
                        "cascade_skip_cold",
                        detector_stats.filtered_cold - skip_before[0],
                    )
                    telemetry.count(
                        "cascade_skip_matched",
                        detector_stats.matched_hot - skip_before[1],
                    )
                if self._persist_path is not None:
                    with tracer.span("cache_save", kind="phase"):
                        with telemetry.timer("cache_save"):
                            self.cache.save(self._persist_path)
                        if self.faults is not None and self.faults.truncate_file(
                            self._persist_path, "cache_truncate"
                        ):
                            telemetry.count("fault_cache_truncate")
                            tracer.event(
                                "fault_fired", point="cache_truncate"
                            )
                if ckpt is not None:
                    ckpt.finalize()
                scan_span.set(
                    n_scored=telemetry.counter("scored"),
                    cache_hits=telemetry.counter("cache_hits")
                    + telemetry.counter("dedup_hits"),
                    flagged=len(flagged_windows),
                )
        except BaseException:  # lint: disable=broad-except  (close the trace file on ANY exit — incl. KeyboardInterrupt — then re-raise)
            tracer.close()
            raise
        finally:
            detach()

        stats = getattr(self.detector, "stats", None)
        report = ScanReport(
            centers=centers,
            clips=clips if keep_clips else [],
            scores=scores,
            flagged=flagged,
            confirmed=confirmed,
            flagged_windows=flagged_windows,
            telemetry=telemetry,
            cascade_stats=stats if isinstance(stats, CascadeStats) else None,
            n_windows=len(centers),
            n_scored=telemetry.counter("scored"),
            cache_hits=telemetry.counter("cache_hits")
            + telemetry.counter("dedup_hits"),
            elapsed_s=elapsed,
            scan_path=scan_path,
        )
        obs.finish(report)
        return report

    def _attach_tracer(self, tracer):
        """Point the cache and cascade at this scan's tracer.

        Returns the detach callable that restores the null tracer —
        collaborators outlive the scan (persistent caches, reused
        detectors), so they must never keep a handle to a closed trace
        stream.
        """
        targets = []
        if self.cache is not None:
            self.cache.tracer = tracer
            targets.append(self.cache)
        if isinstance(self.detector, CascadeDetector):
            self.detector._tracer = tracer
            targets.append(self.detector)

        def detach() -> None:
            for target in targets:
                if target is self.cache:
                    target.tracer = NULL_TRACER
                else:
                    target._tracer = NULL_TRACER

        return detach

    def _make_checkpointer(
        self, layer, region, window_nm, core_nm, step, scan_path, telemetry,
        resume, tracer=NULL_TRACER,
    ) -> Optional[Checkpointer]:
        """Build the per-scan checkpointer (None without a checkpoint dir).

        The config hash covers everything that changes the window
        enumeration or the meaning of a stored score; a resume against a
        checkpoint whose hash differs is refused rather than replayed.
        """
        if self.checkpoint_dir is None:
            if resume:
                raise ValueError(
                    "resume=True requires the engine to be constructed "
                    "with checkpoint_dir"
                )
            return None
        mode = "direct" if self.cache is None else "dedup"
        tag = getattr(self.detector, "name", type(self.detector).__name__)
        if layer.polygons:
            bbox = layer.bbox
            layer_sig = [
                layer.name, len(layer.polygons),
                [bbox.x1, bbox.y1, bbox.x2, bbox.y2],
            ]
        else:
            layer_sig = [layer.name, 0, None]
        config_hash = scan_config_hash(
            region=[region.x1, region.y1, region.x2, region.y2],
            window_nm=window_nm,
            core_nm=core_nm,
            step_nm=step,
            scan_path=scan_path,
            mode=mode,
            chunk_clips=self.chunk_clips,
            band_rows=self.band_rows,
            max_plane_pixels=self.max_plane_pixels,
            detector=tag,
            threshold=float(self.detector.threshold),
            layer=layer_sig,
        )
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        ckpt = Checkpointer(
            self.checkpoint_dir / CHECKPOINT_NAME,
            config_hash=config_hash,
            detector_tag=tag,
            mode=mode,
            every_chunks=self.checkpoint_every_chunks,
            telemetry=telemetry,
            faults=self.faults,
            tracer=tracer,
        )
        if resume:
            ckpt.load_for_resume()
        return ckpt

    def _resolve_scan_path(self, window_nm: int, step: int) -> str:
        """Pick "raster" or "clip" per the ``raster_plane`` policy."""
        if self.raster_plane is False:
            return "clip"
        reason = None
        if not supports_raster_scan(self.detector):
            reason = (
                f"detector {getattr(self.detector, 'name', '?')!r} does not "
                "support raster scoring"
            )
        else:
            pixel = self.detector.raster_pixel_nm
            if window_nm % pixel or step % pixel:
                reason = (
                    f"window {window_nm} / step {step} nm not divisible by "
                    f"the detector's {pixel} nm raster pixel"
                )
        if reason is None:
            return "raster"
        if self.raster_plane is True:
            raise ValueError(f"raster_plane=True but {reason}")
        return "clip"

    # ------------------------------------------------------------------
    # scan strategies
    # ------------------------------------------------------------------
    def _scan_direct(
        self, layer, centers_iter, window_nm, core_nm, pool, telemetry,
        keep_clips, ckpt, obs,
    ) -> Tuple[List[Tuple[int, int]], List[Clip], np.ndarray]:
        """No-dedup path: stream chunks straight through the pool.

        With a checkpoint loaded for resume, the stored score prefix is
        replayed chunk-for-chunk (skipping extraction unless clips are
        kept) and only the remainder is dispatched; every newly scored
        chunk is committed to the checkpointer in order.
        """
        centers: List[Tuple[int, int]] = []
        clips: List[Clip] = []
        prefix_parts: List[np.ndarray] = []

        def chunks() -> Iterator[List[Clip]]:
            for chunk_centers in _chunked(centers_iter, self.chunk_clips):
                if ckpt is not None:
                    part = ckpt.next_resumed_chunk(len(chunk_centers))
                    if part is not None:
                        prefix_parts.append(part)
                        centers.extend(chunk_centers)
                        if keep_clips:
                            with telemetry.timer("extract"):
                                clips.extend(
                                    extract_clip(layer, c, window_nm, core_nm)
                                    for c in chunk_centers
                                )
                        telemetry.count("windows", len(chunk_centers))
                        telemetry.count("resume_hits", len(chunk_centers))
                        obs.tick("resume")
                        continue
                with telemetry.timer("extract"):
                    chunk = [
                        extract_clip(layer, c, window_nm, core_nm)
                        for c in chunk_centers
                    ]
                centers.extend(chunk_centers)
                if keep_clips:
                    clips.extend(chunk)
                telemetry.count("windows", len(chunk))
                telemetry.count("chunks")
                telemetry.observe("chunk_clips", len(chunk))
                yield chunk

        parts: List[np.ndarray] = []
        with obs.tracer.span("score_stream", kind="phase"):
            with telemetry.timer("score"):
                for part in pool.map_scores(chunks()):
                    parts.append(part)
                    telemetry.count("scored", len(part))
                    if ckpt is not None:
                        ckpt.record_chunk(part)
                    obs.tick("score")
        parts = prefix_parts + parts
        scores = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.float64)
        )
        return centers, clips, scores

    def _apply_resumed_fp_scores(
        self, ckpt, pending, score_by_fp, telemetry
    ) -> None:
        """Resolve pending fingerprints from a resumed checkpoint.

        Runs between the fingerprint and scoring phases of the dedup
        strategies: any pattern the interrupted scan already scored is
        moved straight into the score map (and the cache), so only the
        genuinely unscored remainder reaches the pool.
        """
        if ckpt is None:
            return
        cache = self.cache
        for fp, score in ckpt.resumed_fp_scores().items():
            if fp in pending:
                del pending[fp]
                score_by_fp[fp] = score
                cache.put(fp, score)
                telemetry.count("resume_hits")

    def _scan_dedup(
        self, layer, centers_iter, window_nm, core_nm, pool, telemetry,
        keep_clips, ckpt, obs,
    ) -> Tuple[List[Tuple[int, int]], List[Clip], np.ndarray]:
        """Dedup path: fingerprint every window, score each pattern once.

        Phase 1 streams and fingerprints tiles, collecting one exemplar
        clip per unseen pattern; phase 2 scores the exemplars through the
        pool; phase 3 assembles the per-window score array.  Splitting
        the phases keeps cross-chunk dedup exact even when the pool
        pipelines chunks concurrently.
        """
        cache = self.cache
        assert cache is not None
        centers: List[Tuple[int, int]] = []
        clips: List[Clip] = []
        fingerprints: List[str] = []
        score_by_fp: Dict[str, float] = {}
        pending: Dict[str, Clip] = {}

        with obs.tracer.span("fingerprint", kind="phase") as fp_span:
            for chunk_centers in _chunked(centers_iter, self.chunk_clips):
                with telemetry.timer("extract"):
                    chunk = [
                        extract_clip(layer, c, window_nm, core_nm)
                        for c in chunk_centers
                    ]
                with telemetry.timer("dedup"):
                    for clip in chunk:
                        fp = clip_fingerprint(clip)
                        fingerprints.append(fp)
                        if fp in score_by_fp or fp in pending:
                            telemetry.count("dedup_hits")
                            continue
                        cached = cache.get(fp)
                        if cached is not None:
                            score_by_fp[fp] = cached
                            telemetry.count("cache_hits")
                        else:
                            pending[fp] = clip
                centers.extend(chunk_centers)
                if keep_clips:
                    clips.extend(chunk)
                telemetry.count("windows", len(chunk))
                telemetry.count("chunks")
                telemetry.observe("chunk_clips", len(chunk))
                obs.tick("fingerprint")
            self._apply_resumed_fp_scores(
                ckpt, pending, score_by_fp, telemetry
            )
            fp_span.set(unique=len(pending) + len(score_by_fp))

        unique_fps = list(pending)
        unique_clips = list(pending.values())
        with obs.tracer.span("score", kind="phase"):
            with telemetry.timer("score"):
                fp_chunks = [
                    unique_fps[i : i + self.chunk_clips]
                    for i in range(0, len(unique_fps), self.chunk_clips)
                ]
                clip_chunks = [
                    unique_clips[i : i + self.chunk_clips]
                    for i in range(0, len(unique_clips), self.chunk_clips)
                ]
                for fps, part in zip(fp_chunks, pool.map_scores(clip_chunks)):
                    for fp, score in zip(fps, part):
                        value = float(score)
                        score_by_fp[fp] = value
                        cache.put(fp, value)
                    telemetry.count("scored", len(part))
                    if ckpt is not None:
                        ckpt.record_fp_chunk(fps, part)
                    obs.tick("score")

        with obs.tracer.span("assemble", kind="phase"):
            with telemetry.timer("assemble"):
                scores = np.array(
                    [score_by_fp[fp] for fp in fingerprints], dtype=np.float64
                )
        return centers, clips, scores

    # ------------------------------------------------------------------
    # raster-plane scan strategies
    # ------------------------------------------------------------------
    def _plane_feature_block(
        self, window_nm: int, step: int
    ) -> Optional[int]:
        """Feature-grid block pitch (px) when the plane path can share it.

        The detector must expose the plane-feature trio
        (``plane_feature_block`` / ``plane_feature_tensor`` /
        ``predict_proba_features``) and both the window size and the
        scan step must land on feature-block boundaries — then every
        window's feature tensor is a slice of one per-band plane
        tensor.  Returns ``None`` (fall back to raster-window batches)
        otherwise.
        """
        if not all(
            callable(getattr(self.detector, name, None))
            for name in (
                "plane_feature_block",
                "plane_feature_tensor",
                "predict_proba_features",
            )
        ):
            return None
        block = self.detector.plane_feature_block()
        if not block:
            return None
        block_nm = int(block) * self.detector.raster_pixel_nm
        if window_nm % block_nm or step % block_nm:
            return None
        return int(block)

    def _iter_plane_chunks(
        self, layer, region, window_nm, core_nm, step, telemetry, keep_clips,
        centers, clips, obs, ckpt=None, prefix_parts=None,
        reuse_batches=False, feature_block=None,
    ) -> Iterator[np.ndarray]:
        """Rasterize band planes and yield per-chunk window batches.

        Shared front half of both raster strategies: each band is painted
        once, each member window is sliced out of the plane, and slices
        are stacked (copied — the plane is recycled per band) into
        chunk-sized batches.  Appends centers/clips as a side effect so
        callers see them in the exact order batches are yielded.

        With ``feature_block`` set (see :meth:`_plane_feature_block`)
        the band plane is feature-transformed *once* and the yielded
        batches are ``(n, C, h, w)`` feature slices instead of
        ``(n, H, W)`` raster windows — at the survey geometry windows
        overlap ~9x, so the per-window transform cost drops by the
        overlap factor and the per-window copy shrinks from raster
        pixels to kept coefficients.

        When ``prefix_parts`` is given (raster *direct* resume — the
        dedup path resumes at the fingerprint level instead), chunks
        covered by the checkpoint prefix skip slicing entirely and their
        stored scores are appended to ``prefix_parts``.

        ``reuse_batches=True`` fills a persistent engine-owned buffer
        instead of allocating a fresh stack per chunk (a chunk of 96x96
        float64 windows is ~10MB, and faulting fresh pages in every
        chunk costs real per-window time).  Yielded batches are then
        invalidated by the next iteration, so it is only safe when the
        consumer fully drains each batch before advancing — true for
        the in-process (``workers == 1``) score loop, NOT for a
        multiprocess pool that pickles batches ahead, and not for the
        dedup path, which retains window exemplars across chunks.
        """
        pixel = self.detector.raster_pixel_nm
        half = window_nm // 2
        bands = _iter_raster_bands(
            region, window_nm, step, pixel, self.band_rows,
            self.max_plane_pixels,
        )
        for band_centers, band_box in bands:
            with telemetry.timer("rasterize"):
                plane = rasterize_region(layer, band_box, pixel)
            telemetry.count("raster_bands")
            feats = None
            if feature_block is not None:
                with telemetry.timer("features"):
                    feats = self.detector.plane_feature_tensor(plane.grid)
                telemetry.count("feature_planes")
                fwin = window_nm // (feature_block * pixel)
            for chunk_centers in _chunked(iter(band_centers), self.chunk_clips):
                if ckpt is not None and prefix_parts is not None:
                    part = ckpt.next_resumed_chunk(len(chunk_centers))
                    if part is not None:
                        prefix_parts.append(part)
                        centers.extend(chunk_centers)
                        if keep_clips:
                            with telemetry.timer("extract"):
                                clips.extend(
                                    extract_clip(layer, c, window_nm, core_nm)
                                    for c in chunk_centers
                                )
                        telemetry.count("windows", len(chunk_centers))
                        telemetry.count("resume_hits", len(chunk_centers))
                        obs.tick("resume")
                        continue
                with telemetry.timer("slice"):
                    if feats is not None:
                        fpitch = pixel * feature_block
                        views = []
                        for cx, cy in chunk_centers:
                            gy = (cy - half - band_box.y1) // fpitch
                            gx = (cx - half - band_box.x1) // fpitch
                            views.append(
                                feats[:, gy:gy + fwin, gx:gx + fwin]
                            )
                    else:
                        views = [
                            plane.window(
                                Rect.from_center(cx, cy, window_nm, window_nm)
                            )
                            for cx, cy in chunk_centers
                        ]
                    if reuse_batches:
                        item = views[0].shape
                        buf = self._plane_batch_bufs.get(item)
                        if buf is None or len(buf) < len(views):
                            buf = np.empty(
                                (max(len(views), self.chunk_clips), *item),
                                dtype=views[0].dtype,
                            )
                            self._plane_batch_bufs[item] = buf
                        batch = buf[: len(views)]
                        for j, view in enumerate(views):
                            np.copyto(batch[j], view)
                    else:
                        batch = np.stack(views)
                centers.extend(chunk_centers)
                if keep_clips:
                    with telemetry.timer("extract"):
                        clips.extend(
                            extract_clip(layer, c, window_nm, core_nm)
                            for c in chunk_centers
                        )
                telemetry.count("windows", len(chunk_centers))
                telemetry.count("chunks")
                telemetry.observe("chunk_clips", len(chunk_centers))
                yield batch

    def _scan_raster_direct(
        self, layer, region, window_nm, core_nm, step, pool, telemetry,
        keep_clips, ckpt, obs,
    ) -> Tuple[List[Tuple[int, int]], List[Clip], np.ndarray]:
        """No-dedup raster path: band batches straight through the pool."""
        centers: List[Tuple[int, int]] = []
        clips: List[Clip] = []
        prefix_parts: List[np.ndarray] = []
        feature_block = self._plane_feature_block(window_nm, step)
        batches = self._iter_plane_chunks(
            layer, region, window_nm, core_nm, step, telemetry, keep_clips,
            centers, clips, obs, ckpt=ckpt, prefix_parts=prefix_parts,
            # the in-process pool scores each batch before pulling the
            # next, so batches may share one persistent buffer; a
            # process pool pickles batches ahead and must not
            reuse_batches=pool.workers == 1,
            feature_block=feature_block,
        )
        score_stream = (
            pool.map_scores_features(batches)
            if feature_block is not None
            else pool.map_scores_rasters(batches)
        )
        parts: List[np.ndarray] = []
        with obs.tracer.span("score_stream", kind="phase"):
            with telemetry.timer("score"):
                for part in score_stream:
                    parts.append(part)
                    telemetry.count("scored", len(part))
                    if ckpt is not None:
                        ckpt.record_chunk(part)
                    obs.tick("score")
        parts = prefix_parts + parts
        scores = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.float64)
        )
        return centers, clips, scores

    def _scan_raster_dedup(
        self, layer, region, window_nm, core_nm, step, pool, telemetry,
        keep_clips, ckpt, obs,
    ) -> Tuple[List[Tuple[int, int]], List[Clip], np.ndarray]:
        """Dedup raster path: fingerprint window slices, score once each.

        Same three phases as :meth:`_scan_dedup`, but patterns are keyed
        on :func:`raster_fingerprint` of the quantized window raster
        (prefixed so the keys can never collide with clip-geometry
        fingerprints in a shared :class:`ScoreCache`).  Pending exemplars
        are copied out of the plane — the plane buffer is recycled per
        band.
        """
        cache = self.cache
        assert cache is not None
        centers: List[Tuple[int, int]] = []
        clips: List[Clip] = []
        fingerprints: List[str] = []
        score_by_fp: Dict[str, float] = {}
        pending: Dict[str, np.ndarray] = {}

        batches = self._iter_plane_chunks(
            layer, region, window_nm, core_nm, step, telemetry, keep_clips,
            centers, clips, obs,
        )
        with obs.tracer.span("fingerprint", kind="phase") as fp_span:
            for batch in batches:
                with telemetry.timer("dedup"):
                    for raster in batch:
                        fp = raster_fingerprint(raster)
                        fingerprints.append(fp)
                        if fp in score_by_fp or fp in pending:
                            telemetry.count("dedup_hits")
                            continue
                        cached = cache.get(fp)
                        if cached is not None:
                            score_by_fp[fp] = cached
                            telemetry.count("cache_hits")
                        else:
                            pending[fp] = raster
                obs.tick("fingerprint")
            self._apply_resumed_fp_scores(
                ckpt, pending, score_by_fp, telemetry
            )
            fp_span.set(unique=len(pending) + len(score_by_fp))

        unique_fps = list(pending)
        unique_rasters = list(pending.values())
        with obs.tracer.span("score", kind="phase"):
            with telemetry.timer("score"):
                fp_chunks = [
                    unique_fps[i : i + self.chunk_clips]
                    for i in range(0, len(unique_fps), self.chunk_clips)
                ]
                raster_chunks = (
                    np.stack(unique_rasters[i : i + self.chunk_clips])
                    for i in range(0, len(unique_rasters), self.chunk_clips)
                )
                for fps, part in zip(
                    fp_chunks, pool.map_scores_rasters(raster_chunks)
                ):
                    for fp, score in zip(fps, part):
                        value = float(score)
                        score_by_fp[fp] = value
                        cache.put(fp, value)
                    telemetry.count("scored", len(part))
                    if ckpt is not None:
                        ckpt.record_fp_chunk(fps, part)
                    obs.tick("score")

        with obs.tracer.span("assemble", kind="phase"):
            with telemetry.timer("assemble"):
                scores = np.array(
                    [score_by_fp[fp] for fp in fingerprints], dtype=np.float64
                )
        return centers, clips, scores

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def _flagged_windows(
        self, layer, centers, clips, flagged, window_nm, core_nm
    ) -> List[Clip]:
        """Clips of flagged windows, re-extracting when not retained."""
        idx = np.flatnonzero(flagged)
        if clips:
            return [clips[i] for i in idx]
        return [
            extract_clip(layer, centers[i], window_nm, core_nm) for i in idx
        ]

    def _verify(
        self, flagged_windows: List[Clip], oracle, telemetry
    ) -> Optional[np.ndarray]:
        """Oracle-confirm flagged windows (deduped by pattern)."""
        verifier = oracle
        if verifier is None and isinstance(self.detector, CascadeDetector):
            verifier = self.detector.verifier
        if verifier is None:
            return None
        use_cascade = (
            oracle is None
            and isinstance(self.detector, CascadeDetector)
            and self.detector.verifier is not None
        )
        confirmed = np.empty(len(flagged_windows), dtype=bool)
        verdict_by_fp: Dict[str, bool] = {}
        with telemetry.timer("verify"):
            for i, clip in enumerate(flagged_windows):
                fp = clip_fingerprint(clip)
                if fp not in verdict_by_fp:
                    if use_cascade:
                        verdict = bool(
                            self.detector.verify_flagged([clip])[0]
                        )
                    else:
                        verdict = bool(verifier.label(clip))
                    verdict_by_fp[fp] = verdict
                    telemetry.count("verified_unique")
                confirmed[i] = verdict_by_fp[fp]
        telemetry.count("verified", len(flagged_windows))
        return confirmed


class ScanSession:
    """Handle to a scan running on a background thread.

    Returned by :meth:`ScanEngine.start`.  The session is wired into the
    scan's progress reporter as an extra sink, so heartbeats arrive here
    regardless of the engine's :class:`ObservabilityConfig
    <repro.runtime.config.ObservabilityConfig>`; :meth:`result` joins
    the thread and either returns the final :class:`ScanReport` or
    re-raises the exception the scan died with.
    """

    def __init__(self, run) -> None:
        self._progress_events: List[ProgressEvent] = []
        self._result: Optional[ScanReport] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, args=(run,), name="repro-scan", daemon=True
        )
        self._thread.start()

    def _run(self, run) -> None:
        try:
            self._result = run(self._on_progress)  # lint: disable=unlocked-shared-mutation  (single writer: only this thread assigns, and readers go through result(), which joins the thread first)
        except BaseException as exc:  # lint: disable=broad-except  (held for re-raise in result(); a session must never swallow nor leak the scan's failure into its own thread)
            self._error = exc  # lint: disable=unlocked-shared-mutation  (same single-writer-then-join protocol as _result above)

    def _on_progress(self, event: ProgressEvent) -> None:
        self._progress_events.append(event)

    @property
    def progress(self) -> Optional[ProgressEvent]:
        """Most recent heartbeat, or None before the first one."""
        events = self._progress_events
        return events[-1] if events else None

    @property
    def progress_events(self) -> List[ProgressEvent]:
        """All heartbeats received so far (oldest first)."""
        return list(self._progress_events)

    def done(self) -> bool:
        """True once the scan finished — successfully or not."""
        return not self._thread.is_alive()

    def result(self, timeout: Optional[float] = None) -> ScanReport:
        """Block for the report; re-raise the scan's failure if it died.

        Raises :class:`TimeoutError` when ``timeout`` (seconds) elapses
        first — the scan keeps running and ``result()`` may be called
        again.
        """
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError(
                f"scan still running after {timeout}s; call result() again"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

"""Full-chip scale-out: shard planning, execution, and deterministic merge.

One :class:`~repro.runtime.engine.ScanEngine` scans one region.  This
module tiles an arbitrarily large chip into **halo-overlapped shards**,
runs each shard on an independent engine instance, and reassembles the
per-shard reports into a single chip report **byte-identical** to the
monolithic scan — then layers hierarchy-aware reuse on top:

* :class:`ShardPlanner` splits the *center grid* (not raw nm) into
  balanced contiguous owned ranges and expands each by a halo.  With the
  default halo of one window extent, every window a shard owns sees the
  exact context a monolithic scan would, so its score is identical by
  construction.  Plans are pure data (:class:`ShardPlan`) with a stable
  content digest and a JSON wire form.
* :class:`ShardRunner` executes the shards (``shard_workers``-way
  thread fan-out; each shard engine may itself spread scoring over a
  process :class:`~repro.runtime.pool.WorkerPool`).  Each shard
  checkpoints under its own subdirectory and its finished report is
  persisted next to the checkpoints, so a killed shard resumes and
  completed shards are never re-scanned.
* **Instance-level dedup** generalizes the window fingerprint cache:
  shards whose halo-expanded regions are exact translated copies
  (:func:`~repro.geometry.region_fingerprint`) are scored once and
  *replayed* per placement — on ``replicate_block``-style arrays this
  collapses an n×n array to a handful of unique shards.
* **Incremental re-scan**: the runner persists a fingerprint→score
  manifest next to the checkpoint; a later run pointed at it via
  ``rescan_from`` re-scores only shards whose fingerprint cone changed
  and replays the rest from the manifest.
* :func:`merge_reports` places every shard's *owned* scores into the
  global row-major grid (halo duplicates are dropped by the canonical
  owner-shard rule: the owner of a window is the unique shard whose
  owned center range contains it) and merges telemetry.

:func:`scan_chip` is the single front door routing monolithic, sharded,
and incremental scans through this one code path, driven by the
:class:`~repro.runtime.config.ChipScanConfig` group of ``EngineConfig``.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import sys
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..geometry import Layer, Layout, Rect, extract_clip, region_fingerprint
from .config import EngineConfig
from .engine import ScanEngine, ScanReport
from .metrics import export_metrics
from .telemetry import Telemetry

PathLike = Union[str, Path]

#: bump when the ShardPlan JSON layout changes incompatibly
PLAN_SCHEMA = 1

#: bump when the chip manifest layout changes incompatibly
MANIFEST_SCHEMA = 1

#: the fingerprint→score manifest written next to the checkpoint
MANIFEST_NAME = "chip-manifest.npz"


# --------------------------------------------------------------------------
# plan data model
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class ShardSpec:
    """One shard of a :class:`ShardPlan`, in center-index space.

    ``own_x`` / ``own_y`` are the half-open index ranges of the centers
    this shard *owns* (the owner-shard rule: owned ranges partition the
    global grid, so every window has exactly one owner).  ``scan_x`` /
    ``scan_y`` extend them by the halo (clamped to the grid); ``region``
    is the nm rectangle whose tile enumeration yields exactly the
    scanned centers.
    """

    shard_id: int
    ix: int
    iy: int
    own_x: Tuple[int, int]
    own_y: Tuple[int, int]
    scan_x: Tuple[int, int]
    scan_y: Tuple[int, int]
    region: Rect

    @property
    def scan_w(self) -> int:
        return self.scan_x[1] - self.scan_x[0]

    @property
    def scan_h(self) -> int:
        return self.scan_y[1] - self.scan_y[0]

    @property
    def n_windows(self) -> int:
        """Windows this shard scans (owned + halo)."""
        return self.scan_w * self.scan_h

    @property
    def n_owned(self) -> int:
        return (self.own_x[1] - self.own_x[0]) * (self.own_y[1] - self.own_y[0])


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic tiling of one scan into halo-overlapped shards.

    Pure data: two planner invocations over the same region and scan
    parameters produce equal plans with equal ``digest``.  ``nx`` /
    ``ny`` are the global center-grid dimensions; shard owned ranges
    partition ``[0, nx) × [0, ny)``.
    """

    region: Rect
    window_nm: int
    core_nm: int
    step_nm: int
    halo_nm: int
    nx: int
    ny: int
    shards: Tuple[ShardSpec, ...]
    digest: str = ""

    def __post_init__(self) -> None:
        if not self.digest:
            payload = self._payload()
            raw = json.dumps(payload, sort_keys=True).encode("ascii")
            object.__setattr__(
                self,
                "digest",
                hashlib.blake2b(raw, digest_size=16).hexdigest(),
            )

    @property
    def n_windows(self) -> int:
        return self.nx * self.ny

    @property
    def grid(self) -> Tuple[int, int]:
        """(shard columns, shard rows) of the plan."""
        if not self.shards:
            return (0, 0)
        return (
            max(s.ix for s in self.shards) + 1,
            max(s.iy for s in self.shards) + 1,
        )

    def centers(self) -> List[Tuple[int, int]]:
        """Global window centers in monolithic scan order (row-major)."""
        half = self.window_nm // 2
        x0 = self.region.x1 + half
        y0 = self.region.y1 + half
        return [
            (x0 + i * self.step_nm, y0 + j * self.step_nm)
            for j in range(self.ny)
            for i in range(self.nx)
        ]

    def shard_centers(self, spec: ShardSpec) -> List[Tuple[int, int]]:
        """The centers ``spec`` scans, in that shard's row-major order."""
        half = self.window_nm // 2
        x0 = self.region.x1 + half
        y0 = self.region.y1 + half
        return [
            (x0 + i * self.step_nm, y0 + j * self.step_nm)
            for j in range(*spec.scan_y)
            for i in range(*spec.scan_x)
        ]

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------
    def _payload(self) -> Dict[str, object]:
        return {
            "schema": PLAN_SCHEMA,
            "region": [
                self.region.x1,
                self.region.y1,
                self.region.x2,
                self.region.y2,
            ],
            "window_nm": self.window_nm,
            "core_nm": self.core_nm,
            "step_nm": self.step_nm,
            "halo_nm": self.halo_nm,
            "nx": self.nx,
            "ny": self.ny,
            "shards": [
                [
                    s.shard_id,
                    s.ix,
                    s.iy,
                    *s.own_x,
                    *s.own_y,
                    *s.scan_x,
                    *s.scan_y,
                ]
                for s in self.shards
            ],
        }

    def to_json(self) -> str:
        """Versioned canonical JSON (sorted keys, digest-stable)."""
        return json.dumps(self._payload(), sort_keys=True)

    @classmethod
    def from_json(cls, document: str) -> "ShardPlan":
        payload = json.loads(document)
        schema = payload.get("schema")
        if schema != PLAN_SCHEMA:
            raise ValueError(
                f"unsupported ShardPlan schema {schema!r} "
                f"(this build reads {PLAN_SCHEMA})"
            )
        region = Rect(*(int(v) for v in payload["region"]))
        window = int(payload["window_nm"])
        step = int(payload["step_nm"])
        specs = []
        for row in payload["shards"]:
            sid, ix, iy, ox0, ox1, oy0, oy1, sx0, sx1, sy0, sy1 = (
                int(v) for v in row
            )
            specs.append(
                ShardSpec(
                    shard_id=sid,
                    ix=ix,
                    iy=iy,
                    own_x=(ox0, ox1),
                    own_y=(oy0, oy1),
                    scan_x=(sx0, sx1),
                    scan_y=(sy0, sy1),
                    region=_shard_region(region, window, step, (sx0, sx1), (sy0, sy1)),
                )
            )
        return cls(
            region=region,
            window_nm=window,
            core_nm=int(payload["core_nm"]),
            step_nm=step,
            halo_nm=int(payload["halo_nm"]),
            nx=int(payload["nx"]),
            ny=int(payload["ny"]),
            shards=tuple(specs),
        )


def _shard_region(
    region: Rect,
    window_nm: int,
    step_nm: int,
    scan_x: Tuple[int, int],
    scan_y: Tuple[int, int],
) -> Rect:
    """The nm rectangle whose tile grid is exactly the scanned centers.

    Center ``i`` of the global grid sits at ``region.x1 + window//2 +
    i*step``, so its window's left edge is ``region.x1 + i*step``; the
    rectangle spanning window edges of the scan range therefore
    re-enumerates precisely centers ``[scan_lo, scan_hi)`` when handed
    to ``iter_tile_centers`` — the shard engine needs no special casing.
    """
    return Rect(
        region.x1 + scan_x[0] * step_nm,
        region.y1 + scan_y[0] * step_nm,
        region.x1 + (scan_x[1] - 1) * step_nm + window_nm,
        region.y1 + (scan_y[1] - 1) * step_nm + window_nm,
    )


# --------------------------------------------------------------------------
# planner
# --------------------------------------------------------------------------
class ShardPlanner:
    """Deterministically tile a scan region into halo-overlapped shards.

    Parameters
    ----------
    shards:
        Target shard count.  The planner factors it into a grid whose
        aspect tracks the center grid's; small grids (or aggressive
        snapping) may yield fewer shards than requested, never more.
    grid:
        Explicit ``(columns, rows)`` shard grid, overriding ``shards``.
    halo_nm:
        Overlap margin beyond each shard's owned windows.  ``None``
        (default) uses the full window extent — the margin under which a
        boundary window's context, and therefore its score, is identical
        to the monolithic scan's.
    snap_nm:
        Snap shard boundaries to multiples of this pitch so repeated
        placements (``InstanceArray``) land in congruent shards; must be
        a multiple of the scan step.
    """

    def __init__(
        self,
        shards: int = 1,
        *,
        grid: Optional[Tuple[int, int]] = None,
        halo_nm: Optional[int] = None,
        snap_nm: Optional[int] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if grid is not None and (grid[0] < 1 or grid[1] < 1):
            raise ValueError("grid dimensions must be >= 1")
        if halo_nm is not None and halo_nm < 0:
            raise ValueError("halo_nm must be >= 0 or None")
        if snap_nm is not None and snap_nm < 1:
            raise ValueError("snap_nm must be >= 1 or None")
        self.shards = shards
        self.grid = grid
        self.halo_nm = halo_nm
        self.snap_nm = snap_nm

    def plan(
        self,
        region: Rect,
        window_nm: int = 768,
        core_nm: int = 256,
        step_nm: Optional[int] = None,
    ) -> ShardPlan:
        """The shard plan for one scan's parameters."""
        step = core_nm if step_nm is None else step_nm
        if step < 1 or window_nm < 1:
            raise ValueError("window_nm and step must be positive")
        if region.width < window_nm or region.height < window_nm:
            raise ValueError("region too small for the clip window")
        nx = (region.width - window_nm) // step + 1
        ny = (region.height - window_nm) // step + 1
        if self.grid is not None:
            gx, gy = self.grid
        else:
            gx, gy = _choose_grid(self.shards, nx, ny)
        gx, gy = min(gx, nx), min(gy, ny)
        snap_ix: Optional[int] = None
        if self.snap_nm is not None:
            if self.snap_nm % step:
                raise ValueError(
                    f"snap_nm ({self.snap_nm}) must be a multiple of the "
                    f"scan step ({step})"
                )
            snap_ix = self.snap_nm // step
        x_bounds = _axis_bounds(nx, gx, snap_ix)
        y_bounds = _axis_bounds(ny, gy, snap_ix)
        halo = window_nm if self.halo_nm is None else self.halo_nm
        halo_c = -(-halo // step)  # ceil
        specs: List[ShardSpec] = []
        for iy in range(len(y_bounds) - 1):
            oy = (y_bounds[iy], y_bounds[iy + 1])
            sy = (max(0, oy[0] - halo_c), min(ny, oy[1] + halo_c))
            for ix in range(len(x_bounds) - 1):
                ox = (x_bounds[ix], x_bounds[ix + 1])
                sx = (max(0, ox[0] - halo_c), min(nx, ox[1] + halo_c))
                specs.append(
                    ShardSpec(
                        shard_id=len(specs),
                        ix=ix,
                        iy=iy,
                        own_x=ox,
                        own_y=oy,
                        scan_x=sx,
                        scan_y=sy,
                        region=_shard_region(region, window_nm, step, sx, sy),
                    )
                )
        return ShardPlan(
            region=region,
            window_nm=window_nm,
            core_nm=core_nm,
            step_nm=step,
            halo_nm=halo,
            nx=nx,
            ny=ny,
            shards=tuple(specs),
        )


def _choose_grid(shards: int, nx: int, ny: int) -> Tuple[int, int]:
    """The factor pair of ``shards`` whose aspect best matches the grid."""
    best: Optional[Tuple[int, int, int]] = None
    for gx in range(1, shards + 1):
        if shards % gx:
            continue
        gy = shards // gx
        score = abs(gx * ny - gy * nx)
        if best is None or score < best[0]:
            best = (score, gx, gy)
    assert best is not None
    return best[1], best[2]


def _axis_bounds(n: int, parts: int, snap: Optional[int]) -> List[int]:
    """Balanced (optionally pitch-snapped) split of ``[0, n)`` indices.

    Snapping may collapse adjacent boundaries; duplicates are dropped,
    shrinking the shard count rather than emitting empty shards.
    """
    bounds = [0]
    for k in range(1, parts):
        b = (k * n) // parts
        if snap:
            b = snap * round(b / snap)
        if bounds[-1] < b < n:
            bounds.append(b)
    bounds.append(n)
    return bounds


# --------------------------------------------------------------------------
# merge
# --------------------------------------------------------------------------
def merge_reports(
    plan: ShardPlan,
    reports: Sequence[ScanReport],
    *,
    layer: Optional[Layer] = None,
    elapsed_s: Optional[float] = None,
) -> ScanReport:
    """Reassemble per-shard reports into one chip report.

    Deterministic by construction: each shard contributes exactly its
    *owned* windows (the canonical owner-shard dedup rule — halo
    duplicates are dropped because owned ranges partition the grid), and
    owned scores land at their monolithic row-major position.  The
    result's canonical fields (centers, scores, flags, confirmed) are
    byte-identical to an unsharded scan of the same region.

    ``reports`` must align with ``plan.shards`` (same order and window
    counts; shard provenance fields, when present, must match).  Passing
    ``layer`` re-extracts the flagged windows' clips so the merged
    report carries geometry even when shard reports were round-tripped
    through JSON (which drops clips).
    """
    if len(reports) != len(plan.shards):
        raise ValueError(
            f"plan has {len(plan.shards)} shards but {len(reports)} "
            f"reports were supplied"
        )
    scan_paths = {r.scan_path for r in reports}
    if len(scan_paths) > 1:
        raise ValueError(f"shard reports mix scan paths {sorted(scan_paths)}")
    conf_present = {r.confirmed is not None for r in reports}
    if len(conf_present) > 1:
        raise ValueError(
            "shard reports mix verified and unverified results; "
            "re-scan with a consistent oracle"
        )
    scores2d = np.zeros((plan.ny, plan.nx), dtype=np.float64)
    flagged2d = np.zeros((plan.ny, plan.nx), dtype=bool)
    conf2d = np.full((plan.ny, plan.nx), -1, dtype=np.int8)
    telemetry = Telemetry()
    for spec, rep in zip(plan.shards, reports):
        if rep.n_windows != spec.n_windows:
            raise ValueError(
                f"shard {spec.shard_id} report has {rep.n_windows} windows, "
                f"plan expects {spec.n_windows}"
            )
        if rep.shard_id is not None and rep.shard_id != spec.shard_id:
            raise ValueError(
                f"report for shard {spec.shard_id} carries shard_id "
                f"{rep.shard_id}"
            )
        if rep.plan_digest is not None and rep.plan_digest != plan.digest:
            raise ValueError(
                f"shard {spec.shard_id} was scanned under plan "
                f"{rep.plan_digest}, not {plan.digest}"
            )
        h, w = spec.scan_h, spec.scan_w
        local_scores = np.asarray(rep.scores, dtype=np.float64).reshape(h, w)
        local_flags = np.asarray(rep.flagged, dtype=bool).reshape(h, w)
        r0 = spec.own_y[0] - spec.scan_y[0]
        r1 = spec.own_y[1] - spec.scan_y[0]
        c0 = spec.own_x[0] - spec.scan_x[0]
        c1 = spec.own_x[1] - spec.scan_x[0]
        own_rows = slice(spec.own_y[0], spec.own_y[1])
        own_cols = slice(spec.own_x[0], spec.own_x[1])
        scores2d[own_rows, own_cols] = local_scores[r0:r1, c0:c1]
        flagged2d[own_rows, own_cols] = local_flags[r0:r1, c0:c1]
        if rep.confirmed is not None:
            local_conf = np.full(h * w, -1, dtype=np.int8)
            local_conf[np.flatnonzero(local_flags.ravel())] = np.asarray(
                rep.confirmed, dtype=bool
            ).astype(np.int8)
            conf2d[own_rows, own_cols] = local_conf.reshape(h, w)[
                r0:r1, c0:c1
            ]
        if rep.telemetry is not None:
            telemetry.merge(rep.telemetry)
    scores = scores2d.ravel()
    flagged = flagged2d.ravel()
    if conf_present == {True}:
        flat_conf = conf2d.ravel()[flagged]
        if np.any(flat_conf < 0):
            raise ValueError(
                "merged report is missing confirmed verdicts for some "
                "flagged windows"
            )
        confirmed: Optional[np.ndarray] = flat_conf.astype(bool)
    else:
        confirmed = None
    flagged_windows = []
    if layer is not None and flagged.any():
        centers = plan.centers()
        flagged_windows = [
            extract_clip(layer, centers[i], plan.window_nm, plan.core_nm)
            for i in np.flatnonzero(flagged)
        ]
    else:
        centers = plan.centers()
    return ScanReport(
        centers=centers,
        clips=[],
        scores=scores,
        flagged=flagged,
        confirmed=confirmed,
        flagged_windows=flagged_windows,
        telemetry=telemetry,
        cascade_stats=None,
        n_windows=plan.n_windows,
        n_scored=sum(r.n_scored for r in reports),
        cache_hits=sum(r.cache_hits for r in reports),
        elapsed_s=(
            sum(r.elapsed_s for r in reports)
            if elapsed_s is None
            else elapsed_s
        ),
        scan_path=reports[0].scan_path if reports else "clip",
        shard_id=None,
        plan_digest=plan.digest,
    )


# --------------------------------------------------------------------------
# the fingerprint→score manifest (incremental re-scan)
# --------------------------------------------------------------------------
@dataclass
class ChipManifest:
    """Persisted fingerprint→score state of one completed chip scan.

    One compressed npz next to the checkpoint: the plan digest and
    detector identity pin what the stored scores mean; per shard it
    keeps the halo-region fingerprint plus the scanned score/flag
    arrays (and confirmed verdicts, folded per window as ``-1`` /
    ``0`` / ``1``).  A re-scan replays every shard whose current
    fingerprint still matches — only shards inside a layout edit's
    fingerprint cone (the halo-expanded regions the edit touches) are
    re-scored.
    """

    plan_digest: str
    detector: str
    threshold: float
    scan_path: str
    has_confirmed: bool
    fingerprints: List[str]
    scores: List[np.ndarray]
    flags: List[np.ndarray]
    conf: List[np.ndarray]

    def save(self, path: PathLike) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = json.dumps(
            {
                "schema": MANIFEST_SCHEMA,
                "plan_digest": self.plan_digest,
                "detector": self.detector,
                "threshold": self.threshold,
                "scan_path": self.scan_path,
                "has_confirmed": self.has_confirmed,
            },
            sort_keys=True,
        )
        offsets = np.cumsum([0] + [len(s) for s in self.scores])
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh,
                meta=np.array(meta),
                fingerprints=np.array(self.fingerprints),
                offsets=offsets.astype(np.int64),
                scores=np.concatenate(self.scores)
                if self.scores
                else np.zeros(0),
                flags=np.concatenate(self.flags)
                if self.flags
                else np.zeros(0, dtype=bool),
                conf=np.concatenate(self.conf)
                if self.conf
                else np.zeros(0, dtype=np.int8),
            )
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: PathLike) -> "ChipManifest":
        path = Path(path)
        if path.is_dir():
            path = path / MANIFEST_NAME
        if not path.exists():
            raise FileNotFoundError(f"no chip manifest at {path}")
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            if meta.get("schema") != MANIFEST_SCHEMA:
                raise ValueError(
                    f"unsupported chip manifest schema "
                    f"{meta.get('schema')!r} (this build reads "
                    f"{MANIFEST_SCHEMA})"
                )
            offsets = data["offsets"]
            scores = data["scores"]
            flags = data["flags"]
            conf = data["conf"]
            per_scores, per_flags, per_conf = [], [], []
            for i in range(len(offsets) - 1):
                lo, hi = int(offsets[i]), int(offsets[i + 1])
                per_scores.append(scores[lo:hi].astype(np.float64))
                per_flags.append(flags[lo:hi].astype(bool))
                per_conf.append(conf[lo:hi].astype(np.int8))
            return cls(
                plan_digest=str(meta["plan_digest"]),
                detector=str(meta["detector"]),
                threshold=float(meta["threshold"]),
                scan_path=str(meta["scan_path"]),
                has_confirmed=bool(meta["has_confirmed"]),
                fingerprints=[str(f) for f in data["fingerprints"]],
                scores=per_scores,
                flags=per_flags,
                conf=per_conf,
            )

    def validate_for(
        self, plan: ShardPlan, detector: str, threshold: float
    ) -> None:
        """Refuse reuse across a different plan or detector."""
        if self.plan_digest != plan.digest:
            raise ValueError(
                f"manifest was written under plan {self.plan_digest}, "
                f"this scan plans {plan.digest} — re-plan with the same "
                f"shard grid to re-scan incrementally"
            )
        if len(self.fingerprints) != len(plan.shards):
            raise ValueError(
                f"manifest covers {len(self.fingerprints)} shards, plan "
                f"has {len(plan.shards)}"
            )
        if self.detector != detector or self.threshold != float(threshold):
            raise ValueError(
                f"manifest was scored by {self.detector!r} "
                f"(threshold {self.threshold}), this scan uses "
                f"{detector!r} (threshold {float(threshold)})"
            )


def _detector_tag(detector) -> str:
    return getattr(detector, "name", type(detector).__name__)


# --------------------------------------------------------------------------
# runner
# --------------------------------------------------------------------------
class ShardRunner:
    """Execute a :class:`ShardPlan` and merge the result.

    Each shard scans on its own :class:`ScanEngine` (own detector copy,
    own checkpoint subdirectory ``shard-NNNN/`` under the configured
    checkpoint dir, own trace subdirectory).  ``shard_workers`` shards
    run concurrently on threads; every shard engine may additionally fan
    scoring out over its process pool (``workers``), so in-process and
    multiprocess execution compose.

    Fault tolerance: a shard's finished report is persisted next to the
    checkpoints the moment it completes.  If any shard dies, the
    partial state stays on disk and a ``run(..., resume=True)`` reloads
    completed shards verbatim, resumes the killed shard from its own
    engine checkpoint, and merges to a report byte-identical to an
    uninterrupted scan.
    """

    def __init__(
        self,
        detector,
        config: Optional[EngineConfig] = None,
        *,
        faults=None,
    ) -> None:
        self.detector = detector
        self.config = config if config is not None else EngineConfig()
        self.faults = faults

    # ------------------------------------------------------------------
    def run(
        self,
        layer: Layer,
        plan: ShardPlan,
        *,
        oracle=None,
        resume: bool = False,
    ) -> ScanReport:
        """Scan every shard of ``plan`` over ``layer`` and merge."""
        chip = self.config.chip
        t0 = time.perf_counter()
        n_shards = len(plan.shards)
        single = n_shards == 1
        root = (
            None
            if self.config.checkpoint.dir is None
            else Path(self.config.checkpoint.dir)
        )
        manifest_out = self._manifest_path(root)
        tele = Telemetry()

        manifest: Optional[ChipManifest] = None
        if chip.rescan_from is not None:
            manifest = ChipManifest.load(chip.rescan_from)
            manifest.validate_for(
                plan,
                _detector_tag(self.detector),
                float(self.detector.threshold),
            )
        need_fp = (
            chip.instance_dedup
            or manifest is not None
            or manifest_out is not None
        )
        fps: Optional[List[str]] = None
        if need_fp:
            fps = [region_fingerprint(layer, s.region) for s in plan.shards]

        reports: List[Optional[ScanReport]] = [None] * n_shards

        # 1) resume: reload reports of shards that already completed
        if resume and root is not None and not single:
            for i, spec in enumerate(plan.shards):
                path = self._report_path(root, spec)
                if not path.exists():
                    continue
                try:
                    rep = ScanReport.from_json(
                        path.read_text(encoding="utf-8")
                    )
                except (ValueError, OSError):
                    continue  # corrupt partial write: re-scan this shard
                if rep.plan_digest == plan.digest and rep.shard_id == i:
                    reports[i] = rep
                    tele.count("shard_resumed")

        # 2) incremental re-scan: replay shards with unchanged fingerprints
        if manifest is not None:
            assert fps is not None
            for i, spec in enumerate(plan.shards):
                if reports[i] is not None:
                    continue
                if fps[i] != manifest.fingerprints[i]:
                    tele.count("rescan_shards_rescored")
                    continue
                rep = self._from_manifest(plan, spec, manifest, oracle)
                if rep is None:
                    tele.count("rescan_shards_rescored")
                    continue
                reports[i] = rep
                tele.count("rescan_shards_reused")
                tele.count("rescan_windows_reused", spec.n_windows)

        # 3) instance dedup: congruent unresolved shards replay a canonical
        replay_of: Dict[int, int] = {}
        to_scan: List[int] = []
        if chip.instance_dedup and fps is not None:
            canon: Dict[Tuple[str, int, int], int] = {}
            for i, spec in enumerate(plan.shards):
                key = (fps[i], spec.scan_w, spec.scan_h)
                if reports[i] is not None:
                    canon.setdefault(key, i)
            for i, spec in enumerate(plan.shards):
                if reports[i] is not None:
                    continue
                key = (fps[i], spec.scan_w, spec.scan_h)
                if key in canon:
                    replay_of[i] = canon[key]
                else:
                    canon[key] = i
                    to_scan.append(i)
        else:
            to_scan = [i for i in range(n_shards) if reports[i] is None]

        # 4) scan the remaining shards, shard_workers at a time
        if to_scan:
            self._scan_shards(
                layer, plan, to_scan, reports, root, single, oracle,
                resume, tele,
            )

        # 5) replay the congruent copies from their canonical shard
        for i in sorted(replay_of):
            src = reports[replay_of[i]]
            assert src is not None
            spec = plan.shards[i]
            reports[i] = self.replay_report(plan, spec, src)
            tele.count("shard_replays")
            tele.count("shard_windows_replayed", spec.n_windows)
            self._progress(spec.shard_id, "replayed", reports, n_shards)

        done = [r for r in reports if r is not None]
        assert len(done) == n_shards
        merged = merge_reports(
            plan, done, layer=layer, elapsed_s=time.perf_counter() - t0
        )
        assert merged.telemetry is not None
        merged.telemetry.merge(tele)

        if manifest_out is not None:
            assert fps is not None
            self._write_manifest(manifest_out, plan, fps, done)
        if root is not None and not single:
            for spec in plan.shards:  # finalize: the merge succeeded
                path = self._report_path(root, spec)
                if path.exists():
                    path.unlink()
        return merged

    # ------------------------------------------------------------------
    @staticmethod
    def replay_report(
        plan: ShardPlan, spec: ShardSpec, src: ScanReport
    ) -> ScanReport:
        """A shard report replayed from a congruent (translated) shard.

        ``src`` must come from a shard with the same region fingerprint
        and scan grid shape; the scores/flags/verdicts are copied and
        only the centers are re-derived for ``spec``'s placement.  Used
        by the in-process runner and the service fleet's chip fan-out.
        """
        return ScanReport(
            centers=plan.shard_centers(spec),
            clips=[],
            scores=np.array(src.scores, dtype=np.float64, copy=True),
            flagged=np.array(src.flagged, dtype=bool, copy=True),
            confirmed=(
                None
                if src.confirmed is None
                else np.array(src.confirmed, dtype=bool, copy=True)
            ),
            flagged_windows=[],
            telemetry=None,
            cascade_stats=None,
            n_windows=spec.n_windows,
            n_scored=0,
            cache_hits=0,
            elapsed_s=0.0,
            scan_path=src.scan_path,
            shard_id=spec.shard_id,
            plan_digest=plan.digest,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _manifest_path(self, root: Optional[Path]) -> Optional[Path]:
        if self.config.chip.manifest is not None:
            return Path(self.config.chip.manifest)
        if root is not None:
            return root / MANIFEST_NAME
        return None

    @staticmethod
    def _report_path(root: Path, spec: ShardSpec) -> Path:
        return root / f"shard-{spec.shard_id:04d}.report.json"

    def _from_manifest(
        self, plan: ShardPlan, spec: ShardSpec, manifest: ChipManifest,
        oracle,
    ) -> Optional[ScanReport]:
        """Synthesize a shard report from stored scores, or None to rescan."""
        i = spec.shard_id
        scores = manifest.scores[i]
        flags = manifest.flags[i]
        if len(scores) != spec.n_windows:
            return None
        # verified-ness must match what live shard scans will produce,
        # or the merge would mix verified and unverified shards
        want_confirmed = oracle is not None or manifest.has_confirmed
        if (oracle is not None) != manifest.has_confirmed:
            return None
        confirmed: Optional[np.ndarray] = None
        if want_confirmed:
            verdicts = manifest.conf[i][flags]
            if np.any(verdicts < 0):
                return None
            confirmed = verdicts.astype(bool)
        return ScanReport(
            centers=plan.shard_centers(spec),
            clips=[],
            scores=scores.copy(),
            flagged=flags.copy(),
            confirmed=confirmed,
            flagged_windows=[],
            telemetry=None,
            cascade_stats=None,
            n_windows=spec.n_windows,
            n_scored=0,
            cache_hits=0,
            elapsed_s=0.0,
            scan_path=manifest.scan_path,
            shard_id=spec.shard_id,
            plan_digest=plan.digest,
        )

    def _scan_shards(
        self,
        layer: Layer,
        plan: ShardPlan,
        to_scan: List[int],
        reports: List[Optional[ScanReport]],
        root: Optional[Path],
        single: bool,
        oracle,
        resume: bool,
        tele: Telemetry,
    ) -> None:
        n_shards = len(plan.shards)

        def scan_one(i: int) -> None:
            spec = plan.shards[i]
            detector = (
                self.detector if single else copy.deepcopy(self.detector)
            )
            cfg = self._shard_config(root, spec, single)
            engine = ScanEngine(detector, config=cfg, faults=self.faults)
            rep = engine.scan(
                layer,
                spec.region,
                window_nm=plan.window_nm,
                core_nm=plan.core_nm,
                step_nm=plan.step_nm,
                oracle=oracle,
                keep_clips=False,
                resume=resume and cfg.checkpoint.dir is not None,
            )
            rep.shard_id = spec.shard_id
            rep.plan_digest = plan.digest
            reports[i] = rep
            if root is not None and not single:
                path = self._report_path(root, spec)
                tmp = path.with_name(path.name + ".tmp")
                tmp.write_text(rep.to_json() + "\n", encoding="utf-8")
                os.replace(tmp, path)
            self._progress(spec.shard_id, "scanned", reports, n_shards)

        workers = min(self.config.chip.shard_workers, len(to_scan))
        errors: List[BaseException] = []
        if workers <= 1:
            for i in to_scan:
                try:
                    scan_one(i)
                except BaseException as exc:  # lint: disable=broad-except  (held for post-count re-raise so telemetry stays exact even on crash)
                    errors.append(exc)
                    break
        else:
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-shard"
            ) as pool:
                futures = [pool.submit(scan_one, i) for i in to_scan]
                for fut in futures:
                    exc = fut.exception()
                    if exc is not None:
                        errors.append(exc)
        # count in the plan's thread so tallies are exact, not racy
        for i in to_scan:
            if reports[i] is not None:
                tele.count("shard_scans")
                tele.count(
                    "shard_windows_scanned", plan.shards[i].n_windows
                )
        if errors:
            raise errors[0]

    def _shard_config(
        self, root: Optional[Path], spec: ShardSpec, single: bool
    ) -> EngineConfig:
        """Per-shard engine config: private checkpoint/trace subpaths.

        A single-shard plan keeps the config untouched so checkpoints,
        metrics, and progress behave exactly as a direct engine scan —
        the monolithic route through :func:`scan_chip` is the engine.
        """
        if single:
            return self.config
        obs = self.config.observability
        sub = f"shard-{spec.shard_id:04d}"
        return replace(
            self.config,
            checkpoint=replace(
                self.config.checkpoint,
                dir=None if root is None else root / sub,
            ),
            observability=replace(
                obs,
                trace_dir=(
                    None
                    if obs.trace_dir is None
                    else Path(obs.trace_dir) / sub
                ),
                metrics=None,  # exported once, for the merged report
                progress=obs.progress if callable(obs.progress) else None,
            ),
        )

    def _progress(
        self,
        shard_id: int,
        state: str,
        reports: List[Optional[ScanReport]],
        n_shards: int,
    ) -> None:
        if self.config.observability.progress != "stderr" or n_shards == 1:
            return
        done = sum(1 for r in reports if r is not None)
        print(
            f"[chip] shard {shard_id:04d} {state} ({done}/{n_shards})",
            file=sys.stderr,
            flush=True,
        )

    def _write_manifest(
        self,
        path: Path,
        plan: ShardPlan,
        fps: List[str],
        reports: List[ScanReport],
    ) -> None:
        has_confirmed = all(r.confirmed is not None for r in reports)
        scores, flags, conf = [], [], []
        for spec, rep in zip(plan.shards, reports):
            local_flags = np.asarray(rep.flagged, dtype=bool)
            scores.append(np.asarray(rep.scores, dtype=np.float64))
            flags.append(local_flags)
            local_conf = np.full(spec.n_windows, -1, dtype=np.int8)
            if rep.confirmed is not None:
                local_conf[np.flatnonzero(local_flags)] = np.asarray(
                    rep.confirmed, dtype=bool
                ).astype(np.int8)
            conf.append(local_conf)
        ChipManifest(
            plan_digest=plan.digest,
            detector=_detector_tag(self.detector),
            threshold=float(self.detector.threshold),
            scan_path=reports[0].scan_path if reports else "clip",
            has_confirmed=has_confirmed,
            fingerprints=list(fps),
            scores=scores,
            flags=flags,
            conf=conf,
        ).save(path)


# --------------------------------------------------------------------------
# the unified front door
# --------------------------------------------------------------------------
def scan_chip(
    layout: Union[Layer, Layout],
    detector,
    config: Optional[EngineConfig] = None,
    *,
    layer: Optional[str] = None,
    region: Optional[Rect] = None,
    window_nm: int = 768,
    core_nm: int = 256,
    step_nm: Optional[int] = None,
    oracle=None,
    resume: bool = False,
    faults=None,
    planner: Optional[ShardPlanner] = None,
    **legacy_kwargs,
) -> ScanReport:
    """Scan a full chip: monolithic, sharded, or incremental — one path.

    The :class:`~repro.runtime.config.ChipScanConfig` group of
    ``config`` selects the mode: ``shards=1`` (default) plans a single
    shard whose engine behaves exactly like a direct
    :meth:`ScanEngine.scan <repro.runtime.engine.ScanEngine.scan>`;
    ``shards>1`` fans out over ``shard_workers`` engines and merges;
    ``rescan_from=`` replays unchanged shards from a prior scan's
    manifest.  All three return the same byte-identical report for the
    same geometry.

    ``layout`` may be a bare :class:`~repro.geometry.Layer` or a
    :class:`~repro.geometry.Layout` (pass ``layer=`` to pick one of
    several).  ``region`` defaults to the layer's bounding box.  Flat
    legacy engine kwargs (``workers=4, shards=8, ...``) keep working
    through the same :class:`DeprecationWarning` shim as ``ScanEngine``;
    mixing them with ``config=`` is a ``TypeError``.
    """
    if legacy_kwargs:
        if config is not None:
            raise TypeError(
                "pass either config=EngineConfig(...) or flat legacy "
                f"kwargs, not both (got {sorted(legacy_kwargs)})"
            )
        warnings.warn(
            "flat scan_chip kwargs are deprecated; pass "
            "config=EngineConfig.from_kwargs("
            + ", ".join(f"{k}=..." for k in sorted(legacy_kwargs))
            + ") instead",
            DeprecationWarning,
            stacklevel=2,
        )
        config = EngineConfig.from_kwargs(**legacy_kwargs)
    elif config is None:
        config = EngineConfig()

    if isinstance(layout, Layer):
        if layer is not None:
            raise TypeError(
                "layer= selects a layer from a Layout; a bare Layer was "
                "passed"
            )
        scan_layer = layout
    elif isinstance(layout, Layout):
        if layer is not None:
            if layer not in layout.layers:
                raise ValueError(
                    f"layout {layout.name!r} has no layer {layer!r} "
                    f"(has {sorted(layout.layers)})"
                )
            scan_layer = layout.layers[layer]
        elif len(layout.layers) == 1:
            scan_layer = next(iter(layout.layers.values()))
        else:
            raise ValueError(
                f"layout {layout.name!r} has {len(layout.layers)} layers; "
                f"pass layer=<name> to pick one"
            )
    else:
        raise TypeError(
            f"layout must be a Layer or Layout, got {type(layout).__name__}"
        )

    if region is None:
        region = scan_layer.bbox
    chip = config.chip
    if planner is None:
        planner = ShardPlanner(
            chip.shards,
            halo_nm=chip.halo_nm,
            snap_nm=chip.snap_nm,
        )
    plan = planner.plan(
        region, window_nm=window_nm, core_nm=core_nm, step_nm=step_nm
    )
    runner = ShardRunner(detector, config, faults=faults)
    report = runner.run(scan_layer, plan, oracle=oracle, resume=resume)
    metrics = config.observability.metrics
    if metrics is not None and len(plan.shards) > 1:
        export_metrics(report, metrics)
    return report

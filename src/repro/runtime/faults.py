"""Deterministic fault injection for the scan runtime.

Fault tolerance that is only exercised by real outages is fault
tolerance that silently rots.  This module gives the runtime a seeded,
policy-driven way to *make* failures happen — in tests, in CI chaos
jobs, and from the CLI (``repro scan-chip --inject-faults SPEC``) — so
every recovery path in :class:`~repro.runtime.pool.WorkerPool`,
:class:`~repro.runtime.engine.ScanEngine`, and
:class:`~repro.runtime.cache.ScoreCache` is provably reachable.

Injection points
----------------
``worker_crash``
    the worker process hard-exits (``os._exit``) while scoring a chunk;
    in-process scoring raises :class:`InjectedFault` instead,
``chunk_error``
    chunk scoring raises :class:`InjectedFault`,
``chunk_stall``
    the worker sleeps ``stall_s`` seconds before scoring (drives the
    per-chunk timeout path),
``nan_score``
    the chunk's score array comes back with a NaN (drives the score
    validation barrier),
``range_score``
    the chunk's score array comes back with an out-of-[0, 1] value,
``cache_truncate``
    the persisted score-cache file is truncated after a save (drives
    quarantine-and-start-empty recovery),
``checkpoint_truncate``
    the scan checkpoint file is truncated after a save (drives the
    resume-from-corrupt-checkpoint path),
``job_interrupt``
    a claimed service job is preempted mid-scan (the
    :class:`~repro.service.fleet.WorkerFleet` consumes one opportunity
    per claim and kills the firing job after a few heartbeats — drives
    the requeue-and-checkpoint-resume retry path),
``lease_lost``
    a claimed service job's lease is voided mid-scan, as if the reaper
    had already requeued and re-claimed it (drives the fencing-token
    no-double-settle path: the running worker's next heartbeat observes
    ``LEASE_LOST`` and aborts without settling),
``deadline_exceeded``
    a claimed service job's per-attempt deadline is spent mid-scan
    (drives the cooperative deadline enforcement at the heartbeat
    boundary: requeue while attempts remain, quarantine after).

``worker_crash`` is consumed at **two** sites with independent
opportunity counters per injector instance: the
:class:`~repro.runtime.pool.WorkerPool` fires it per chunk submission
(process hard-exit), and the service fleet fires it per claim (the
worker thread abandons the job unsettled so the lease reaper must
reclaim it).

Determinism
-----------
Every injection point keeps its own **opportunity counter** (one
opportunity per chunk submission, per cache save, ...).  Whether
opportunity ``i`` fires is a pure function of ``(seed, point, i)`` — a
BLAKE2 hash compared against the configured rate, or membership in an
explicit index set — so a given spec replays the exact same fault
schedule on every run, across processes and platforms.  Chunk faults
fire on the *first* submission of a chunk only: retries are dispatched
fault-free, which models transient failures and lets the supervision
layer prove byte-identical recovery.

Spec grammar
------------
Comma-separated clauses::

    SPEC   := clause ("," clause)*
    clause := "seed=" INT            (decision seed, default 0)
            | "stall_s=" FLOAT       (stall duration, default 0.05)
            | POINT "=" RATE         (fire each opportunity with prob RATE)
            | POINT "@" I("|" I)*    (fire exactly at opportunity indices)

e.g. ``"seed=7,worker_crash@1,nan_score=0.1,cache_truncate@0"`` crashes
the worker scoring chunk 1, NaNs ~10% of chunk score arrays, and
truncates the first cache save.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

#: every injection point the runtime honours, in documentation order
INJECTION_POINTS: Tuple[str, ...] = (
    "worker_crash",
    "chunk_error",
    "chunk_stall",
    "nan_score",
    "range_score",
    "cache_truncate",
    "checkpoint_truncate",
    "job_interrupt",
    "lease_lost",
    "deadline_exceeded",
)

#: process exit code used by an injected worker crash (recognizable in logs)
CRASH_EXIT_CODE = 17


class InjectedFault(RuntimeError):
    """Raised (or shipped) by an injected failure — never by real code."""


@dataclass(frozen=True)
class FaultRule:
    """Firing policy for one injection point: a rate, explicit indices, or both."""

    point: str
    rate: float = 0.0
    indices: Tuple[int, ...] = ()


@dataclass(frozen=True)
class FaultPolicy:
    """Parsed, immutable fault-injection configuration."""

    seed: int = 0
    stall_s: float = 0.05
    rules: Tuple[FaultRule, ...] = ()

    def rule(self, point: str) -> Optional[FaultRule]:
        for rule in self.rules:
            if rule.point == point:
                return rule
        return None

    @classmethod
    def parse(cls, spec: str) -> "FaultPolicy":
        """Parse the spec grammar (see module docstring); ValueError on junk."""
        seed = 0
        stall_s = 0.05
        rates: Dict[str, float] = {}
        indices: Dict[str, Tuple[int, ...]] = {}
        for raw in spec.split(","):
            clause = raw.strip()
            if not clause:
                continue
            if "@" in clause:
                point, _, idx_text = clause.partition("@")
                point = point.strip()
                if point not in INJECTION_POINTS:
                    raise ValueError(
                        f"unknown injection point {point!r} in {clause!r} "
                        f"(known: {', '.join(INJECTION_POINTS)})"
                    )
                try:
                    new = tuple(int(tok) for tok in idx_text.split("|"))
                except ValueError:
                    raise ValueError(
                        f"bad opportunity indices in {clause!r}; expected "
                        "POINT@i or POINT@i|j|k with integer i"
                    ) from None
                if any(i < 0 for i in new):
                    raise ValueError(f"negative index in {clause!r}")
                indices[point] = tuple(sorted(set(indices.get(point, ()) + new)))
            elif "=" in clause:
                key, _, value = clause.partition("=")
                key = key.strip()
                value = value.strip()
                if key == "seed":
                    try:
                        seed = int(value)
                    except ValueError:
                        raise ValueError(f"seed must be an int: {clause!r}") from None
                elif key == "stall_s":
                    try:
                        stall_s = float(value)
                    except ValueError:
                        raise ValueError(
                            f"stall_s must be a float: {clause!r}"
                        ) from None
                    if not 0.0 <= stall_s:
                        raise ValueError(f"stall_s must be >= 0: {clause!r}")
                elif key in INJECTION_POINTS:
                    try:
                        rate = float(value)
                    except ValueError:
                        raise ValueError(
                            f"rate must be a float in [0, 1]: {clause!r}"
                        ) from None
                    if not 0.0 <= rate <= 1.0:
                        raise ValueError(f"rate outside [0, 1]: {clause!r}")
                    rates[key] = rate
                else:
                    raise ValueError(
                        f"unknown spec key {key!r} in {clause!r} "
                        f"(known: seed, stall_s, {', '.join(INJECTION_POINTS)})"
                    )
            else:
                raise ValueError(
                    f"bad clause {clause!r}; expected key=value or point@i|j"
                )
        points = sorted(set(rates) | set(indices))
        rules = tuple(
            FaultRule(
                point=p, rate=rates.get(p, 0.0), indices=indices.get(p, ())
            )
            for p in points
        )
        return cls(seed=seed, stall_s=stall_s, rules=rules)


def _fires(seed: int, rule: FaultRule, opportunity: int) -> bool:
    """Pure, platform-independent firing decision for one opportunity."""
    if opportunity in rule.indices:
        return True
    if rule.rate <= 0.0:
        return False
    digest = hashlib.blake2b(
        f"{seed}:{rule.point}:{opportunity}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2.0**64 < rule.rate


class FaultInjector:
    """Stateful dispenser of firing decisions for one engine/pool run.

    Each call to :meth:`fires` consumes one opportunity at that point and
    returns the deterministic decision.  ``fired`` tallies what actually
    fired (the chaos tests and the CI inverted gate assert on it).
    """

    def __init__(self, policy: Union[FaultPolicy, str]) -> None:
        if isinstance(policy, str):
            policy = FaultPolicy.parse(policy)
        self.policy = policy
        self._opportunities: Dict[str, int] = {}
        self.fired: Dict[str, int] = {}

    def fires(self, point: str) -> bool:
        """Consume one opportunity at ``point``; True when the fault fires."""
        if point not in INJECTION_POINTS:
            raise ValueError(f"unknown injection point {point!r}")
        i = self._opportunities.get(point, 0)
        self._opportunities[point] = i + 1
        rule = self.policy.rule(point)
        if rule is None or not _fires(self.policy.seed, rule, i):
            return False
        self.fired[point] = self.fired.get(point, 0) + 1
        return True

    # ------------------------------------------------------------------
    # runtime-facing helpers (one per injection site)
    # ------------------------------------------------------------------
    def chunk_fault(self) -> Optional[Tuple]:
        """Fault command for the next chunk submission (one opportunity each).

        Returns ``None``, ``("worker_crash",)``, ``("chunk_error",)`` or
        ``("chunk_stall", seconds)``; at most one command per chunk, with
        crash taking precedence over error over stall.
        """
        command = None
        if self.fires("worker_crash"):
            command = ("worker_crash",)
        if self.fires("chunk_error") and command is None:
            command = ("chunk_error",)
        if self.fires("chunk_stall") and command is None:
            command = ("chunk_stall", self.policy.stall_s)
        return command

    def score_fault(self) -> Optional[str]:
        """Score-corruption kind for the next chunk result, if any."""
        kind = None
        if self.fires("nan_score"):
            kind = "nan_score"
        if self.fires("range_score") and kind is None:
            kind = "range_score"
        return kind

    def truncate_file(self, path, point: str) -> bool:
        """Truncate ``path`` to half its bytes when ``point`` fires."""
        if not self.fires(point):
            return False
        path = Path(path)
        data = path.read_bytes()
        path.write_bytes(data[: max(1, len(data) // 2)])
        return True


def corrupt_scores(scores: np.ndarray, kind: str) -> np.ndarray:
    """Return a corrupted copy of a chunk score array (injection payload)."""
    out = np.array(scores, dtype=np.float64, copy=True)
    if out.size:
        out[0] = np.nan if kind == "nan_score" else 1.5
    return out


def execute_chunk_fault(fault: Optional[Tuple], in_process: bool = False) -> None:
    """Run a chunk fault command at the scoring site.

    In a worker process ``worker_crash`` hard-exits (no cleanup, no
    result — exactly what a segfault or OOM kill looks like to the
    parent).  In-process scoring has no process to kill, so both crash
    and error raise :class:`InjectedFault`; a stall just sleeps.
    """
    if fault is None:
        return
    point = fault[0]
    if point == "worker_crash":
        if in_process:
            raise InjectedFault("injected worker crash (in-process)")
        os._exit(CRASH_EXIT_CODE)
    if point == "chunk_error":
        raise InjectedFault("injected chunk error")
    if point == "chunk_stall":
        time.sleep(fault[1])

"""Lightweight scan-engine telemetry: counters, timers, histograms.

Zero-dependency instrumentation for the production scan path.  A
:class:`Telemetry` object is threaded through the engine and its stages;
each primitive is cheap enough to leave on unconditionally:

* **counters** — monotonically increasing event counts (windows seen,
  cache hits, clips scored per cascade stage),
* **timers** — accumulated wall time + call count per named section,
* **histograms** — streaming value distributions (chunk sizes, per-chunk
  latency) with a bounded, deterministic sample for percentile queries.

Everything renders to an aligned text report (``report()``) and to plain
dicts (``as_dict()``) so a :class:`~repro.runtime.engine.ScanReport` can
embed the numbers without dragging the objects along.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class Timer:
    """Accumulated wall time over repeated enters of one named section."""

    seconds: float = 0.0
    calls: int = 0

    def add(self, elapsed: float) -> None:
        self.seconds += elapsed
        self.calls += 1

    @property
    def mean_ms(self) -> float:
        return 1000.0 * self.seconds / self.calls if self.calls else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "seconds": self.seconds,
            "calls": self.calls,
            "mean_ms": self.mean_ms,
        }


@dataclass
class Histogram:
    """Streaming distribution with a bounded deterministic sample.

    All observations update ``count``/``total``/``min``/``max`` exactly;
    percentiles are estimated from a sample that keeps every ``_stride``-th
    observation, halving itself (and doubling the stride) whenever it
    outgrows ``max_sample``.  The subsampling is deterministic, so repeated
    runs report identical numbers.
    """

    max_sample: int = 512
    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    _sample: List[float] = field(default_factory=list, repr=False)
    _stride: int = field(default=1, repr=False)

    def observe(self, value: float) -> None:
        value = float(value)
        if self.count % self._stride == 0:
            self._sample.append(value)
            if len(self._sample) > self.max_sample:
                self._sample = self._sample[::2]
                self._stride *= 2
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Sample-based percentile estimate, ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile q must be in [0, 100]")
        if not self._sample:
            return 0.0
        ordered = sorted(self._sample)
        pos = (q / 100.0) * (len(ordered) - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class Telemetry:
    """Named counters, timers, and histograms for one scan (mergeable)."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, Timer] = {}
        self.histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(n)

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.timers.setdefault(name, Timer()).add(
                time.perf_counter() - t0
            )

    def add_time(self, name: str, seconds: float) -> None:
        """Record an externally measured duration under ``name``."""
        self.timers.setdefault(name, Timer()).add(seconds)

    def observe(self, name: str, value: float) -> None:
        self.histograms.setdefault(name, Histogram()).observe(value)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        """All counters whose name starts with ``prefix`` (e.g. "fault_")."""
        return {
            name: n
            for name, n in self.counters.items()
            if name.startswith(prefix)
        }

    def seconds(self, name: str) -> float:
        timer = self.timers.get(name)
        return timer.seconds if timer else 0.0

    def ratio(self, numerator: str, denominator: str) -> float:
        """counter(numerator) / counter(denominator), 0 when undefined."""
        den = self.counter(denominator)
        return self.counter(numerator) / den if den else 0.0

    def rate(self, name: str, timer_name: str) -> float:
        """counter(name) per second of timer(timer_name), 0 when undefined."""
        seconds = self.seconds(timer_name)
        return self.counter(name) / seconds if seconds > 0 else 0.0

    def merge(self, other: "Telemetry") -> None:
        """Fold another telemetry object into this one (for shard merges)."""
        for name, n in other.counters.items():
            self.count(name, n)
        for name, timer in other.timers.items():
            mine = self.timers.setdefault(name, Timer())
            mine.seconds += timer.seconds
            mine.calls += timer.calls
        for name, hist in other.histograms.items():
            mine_h = self.histograms.setdefault(
                name, Histogram(max_sample=hist.max_sample)
            )
            # exact moments merge exactly; the percentile sample re-observes
            for value in hist._sample:
                mine_h.observe(value)
            mine_h.count += hist.count - len(hist._sample)
            mine_h.total += hist.total - sum(hist._sample)
            mine_h.minimum = min(mine_h.minimum, hist.minimum)
            mine_h.maximum = max(mine_h.maximum, hist.maximum)

    # ------------------------------------------------------------------
    # serialization (exact, unlike the lossy as_dict renderings)
    # ------------------------------------------------------------------
    def to_state(self) -> Dict[str, Dict]:
        """Lossless plain-dict state for ``ScanReport.to_json``.

        Unlike :meth:`as_dict` (a rendering: derived means, estimated
        percentiles) this carries the raw histogram sample and stride,
        so ``from_state(to_state())`` reproduces every query — including
        percentiles — exactly.
        """
        return {
            "counters": dict(self.counters),
            "timers": {
                k: {"seconds": t.seconds, "calls": t.calls}
                for k, t in self.timers.items()
            },
            "histograms": {
                k: {
                    "max_sample": h.max_sample,
                    "count": h.count,
                    "total": h.total,
                    "min": h.minimum if h.count else None,
                    "max": h.maximum if h.count else None,
                    "sample": list(h._sample),
                    "stride": h._stride,
                }
                for k, h in self.histograms.items()
            },
        }

    @classmethod
    def from_state(cls, state: Dict[str, Dict]) -> "Telemetry":
        """Rebuild a telemetry object saved by :meth:`to_state`."""
        tele = cls()
        tele.counters = {k: int(n) for k, n in state["counters"].items()}
        for name, t in state["timers"].items():
            timer = Timer(seconds=float(t["seconds"]), calls=int(t["calls"]))
            tele.timers[name] = timer
        for name, h in state["histograms"].items():
            hist = Histogram(max_sample=int(h["max_sample"]))
            hist.count = int(h["count"])
            hist.total = float(h["total"])
            hist.minimum = math.inf if h["min"] is None else float(h["min"])
            hist.maximum = -math.inf if h["max"] is None else float(h["max"])
            hist._sample = [float(v) for v in h["sample"]]
            hist._stride = int(h["stride"])
            tele.histograms[name] = hist
        return tele

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Dict]:
        return {
            "counters": dict(self.counters),
            "timers": {k: t.as_dict() for k, t in self.timers.items()},
            "histograms": {
                k: h.as_dict() for k, h in self.histograms.items()
            },
        }

    def report(self, title: str = "scan telemetry") -> str:
        """Aligned, human-readable text report."""
        lines = [title, "-" * len(title)]
        if self.counters:
            width = max(len(k) for k in self.counters)
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append(f"  {name:<{width}}  {self.counters[name]:>12,}")
        if self.timers:
            width = max(len(k) for k in self.timers)
            lines.append("timers:")
            for name in sorted(self.timers):
                t = self.timers[name]
                lines.append(
                    f"  {name:<{width}}  {t.seconds:>9.3f}s"
                    f"  x{t.calls:<6} {t.mean_ms:>9.2f} ms/call"
                )
        if self.histograms:
            width = max(len(k) for k in self.histograms)
            lines.append("histograms:")
            for name in sorted(self.histograms):
                h = self.histograms[name]
                lines.append(
                    f"  {name:<{width}}  n={h.count:<8} mean={h.mean:<10.3f}"
                    f" p50={h.percentile(50):<10.3f} p95={h.percentile(95):<10.3f}"
                    f" max={h.maximum if h.count else 0.0:.3f}"
                )
        return "\n".join(lines)

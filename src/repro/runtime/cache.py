"""Content-hash score memoization for full-chip scans.

Real layouts are dominated by repeated patterns — standard cells, memory
arrays, via farms — so most windows a full-chip sweep extracts are
geometrically identical to windows already scored.  Every detector in the
library scores a clip purely from its window-local geometry, which makes
the canonical fingerprint of :func:`repro.geometry.clip_fingerprint` a
sound memoization key: **same fingerprint, same score**, regardless of
where on the chip the window sits.

:class:`ScoreCache` is a bounded LRU map ``fingerprint -> score`` with
hit/miss/eviction counters and optional on-disk persistence (json or npz)
so repeated scans of the same block are near-free.  A ``detector_tag``
guards persisted caches against being replayed under a different detector
(scores are detector-specific even though fingerprints are not).

Persistence is hardened against the failure modes an hours-long scan
actually meets:

* **atomic saves** — both formats write to ``path.with_suffix(".tmp")``
  and ``os.replace`` into place, so a crash mid-save can never leave a
  truncated canonical cache file,
* **schema version + checksum** — persisted files carry a layout version
  and a BLAKE2 checksum of the payload; load verifies both,
* **quarantine, don't crash** — :meth:`open_dir` moves a corrupt or
  unreadable cache aside (``*.quarantined``) and starts empty instead of
  killing the scan; the explicit :meth:`load` raises
  :class:`CacheIntegrityError` so callers can distinguish corruption
  from a legitimate detector-tag mismatch (still a ``ValueError``).
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..counters import assert_counters_consistent
from .trace import NULL_TRACER

PathLike = Union[str, Path]

#: bump when the persisted layout changes incompatibly
CACHE_SCHEMA = 2


class CacheIntegrityError(ValueError):
    """A persisted cache file is corrupt, truncated, or unreadable."""


def _scores_checksum(detector_tag: str, scores: Dict[str, float]) -> str:
    h = hashlib.blake2b(digest_size=16)
    h.update(detector_tag.encode())
    for fp, score in scores.items():
        h.update(fp.encode())
        h.update(np.float64(score).tobytes())
    return h.hexdigest()


class ScoreCache:
    """Bounded LRU ``fingerprint -> score`` map with persistence."""

    #: per-scan span tracer; the engine swaps in a live one around a
    #: scan (class default stays the zero-overhead null tracer)
    tracer = NULL_TRACER

    def __init__(
        self, max_entries: int = 200_000, detector_tag: str = ""
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.detector_tag = detector_tag
        self._scores: "OrderedDict[str, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        # ledger counters: inserts - evictions - removed == len(self)
        # (see repro.counters.assert_counters_consistent)
        self.inserts = 0
        self.evictions = 0
        self.removed = 0
        #: set by :meth:`open_dir` when a corrupt file was moved aside
        self.quarantined_from: Optional[Path] = None

    # ------------------------------------------------------------------
    # core map operations
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[float]:
        """Cached score, refreshing recency; None on miss."""
        try:
            score = self._scores[fingerprint]
        except KeyError:
            self.misses += 1
            return None
        self._scores.move_to_end(fingerprint)
        self.hits += 1
        return score

    def put(self, fingerprint: str, score: float) -> None:
        if fingerprint in self._scores:
            self._scores.move_to_end(fingerprint)
        else:
            self.inserts += 1
        self._scores[fingerprint] = float(score)
        while len(self._scores) > self.max_entries:
            self._scores.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry, keeping the ledger balanced."""
        self.removed += len(self._scores)
        self._scores.clear()
        assert_counters_consistent(self, label="ScoreCache")

    def __len__(self) -> int:
        return len(self._scores)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._scores

    @property
    def hit_ratio(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def reset_counters(self) -> None:
        """Zero the activity counters without touching the contents.

        ``inserts`` re-bases to the current size (not zero) so the
        ledger invariant keeps holding over entries loaded in bulk —
        zeroing it while the map is populated is exactly the stale-
        counter drift this ledger exists to catch.
        """
        self.hits = self.misses = self.evictions = self.removed = 0
        self.inserts = len(self._scores)
        assert_counters_consistent(self, label="ScoreCache")

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> Path:
        """Persist to ``path`` (.json, or .npz for anything else).

        The write is atomic: the payload lands in a sibling ``.tmp``
        file first and is renamed over the target, so readers never see
        a partially written cache.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        checksum = _scores_checksum(self.detector_tag, self._scores)
        if path.suffix == ".json":
            payload = {
                "schema": CACHE_SCHEMA,
                "detector": self.detector_tag,
                "scores": dict(self._scores),
                "checksum": checksum,
            }
            tmp.write_text(json.dumps(payload))
        else:
            with open(tmp, "wb") as fh:
                np.savez_compressed(
                    fh,
                    schema=np.array(CACHE_SCHEMA),
                    detector=np.array(self.detector_tag),
                    fingerprints=np.array(list(self._scores), dtype=np.str_),
                    scores=np.array(
                        list(self._scores.values()), dtype=np.float64
                    ),
                    checksum=np.array(checksum),
                )
        os.replace(tmp, path)
        self.tracer.event(
            "cache_save", entries=len(self._scores), path=str(path)
        )
        return path

    @classmethod
    def _read_payload(cls, path: Path):
        """Parse a persisted cache; (tag, scores, schema, checksum)."""
        if path.suffix == ".json":
            payload = json.loads(path.read_text())
            if not isinstance(payload, dict):
                raise ValueError("cache payload is not an object")
            tag = str(payload.get("detector", ""))
            scores = payload.get("scores", {})
            if not isinstance(scores, dict):
                raise ValueError("cache scores are not a map")
            scores = {str(fp): float(s) for fp, s in scores.items()}
            schema = payload.get("schema", 1)
            checksum = payload.get("checksum")
        else:
            with np.load(path, allow_pickle=False) as data:
                tag = str(data["detector"])
                scores = {
                    str(fp): float(s)
                    for fp, s in zip(data["fingerprints"], data["scores"])
                }
                schema = int(data["schema"]) if "schema" in data else 1
                checksum = (
                    str(data["checksum"]) if "checksum" in data else None
                )
        return tag, scores, schema, checksum

    @classmethod
    def load(
        cls,
        path: PathLike,
        max_entries: int = 200_000,
        detector_tag: str = "",
    ) -> "ScoreCache":
        """Rebuild a cache saved by :meth:`save`.

        Raises :class:`CacheIntegrityError` when the file is corrupt,
        truncated, carries an unknown schema, or fails its checksum.
        A persisted cache recorded under a different ``detector_tag`` is
        rejected with a plain ``ValueError``: fingerprints are
        detector-agnostic but scores are not, and silently replaying
        them would corrupt a scan.

        Entries load in least-to-most-recently-used order; when the file
        holds more than ``max_entries`` only the most-recent tail is
        kept, and counters start clean either way (bulk-loading is not
        cache activity, so it must not inflate ``evictions``).
        """
        path = Path(path)
        try:
            tag, scores, schema, checksum = cls._read_payload(path)
        except FileNotFoundError:
            raise
        except (
            json.JSONDecodeError,
            UnicodeDecodeError,
            zipfile.BadZipFile,
            EOFError,
            OSError,
            ValueError,
            KeyError,
            TypeError,
        ) as exc:
            raise CacheIntegrityError(
                f"cache at {path} is corrupt or unreadable: {exc}"
            ) from exc
        if not isinstance(schema, int) or not 1 <= schema <= CACHE_SCHEMA:
            raise CacheIntegrityError(
                f"cache at {path} has unsupported schema {schema!r} "
                f"(this build reads 1..{CACHE_SCHEMA})"
            )
        if schema >= 2:
            if checksum != _scores_checksum(tag, scores):
                raise CacheIntegrityError(
                    f"cache at {path} failed its checksum "
                    "(partial write or bit rot)"
                )
        if detector_tag and tag and tag != detector_tag:
            raise ValueError(
                f"cache at {path} was built by detector {tag!r}, "
                f"refusing to reuse it for {detector_tag!r}"
            )
        cache = cls(max_entries=max_entries, detector_tag=detector_tag or tag)
        items = list(scores.items())
        if len(items) > max_entries:
            items = items[-max_entries:]
        for fp, score in items:
            cache.put(fp, score)
        cache.reset_counters()
        return cache

    @classmethod
    def open_dir(
        cls,
        directory: PathLike,
        detector_tag: str = "",
        max_entries: int = 200_000,
    ) -> "ScoreCache":
        """Load the canonical cache file from a directory, or start empty.

        A corrupt canonical file is quarantined (renamed aside, never
        deleted) and an empty cache returned with ``quarantined_from``
        set, so a damaged cache costs a cold scan instead of an outage.
        A detector-tag mismatch still raises — that is an operator
        error, not corruption.
        """
        path = cls.dir_path(directory)
        if path.exists():
            try:
                return cls.load(
                    path, max_entries=max_entries, detector_tag=detector_tag
                )
            except CacheIntegrityError:
                quarantined = path.with_name(path.name + ".quarantined")
                os.replace(path, quarantined)
                cache = cls(max_entries=max_entries, detector_tag=detector_tag)
                cache.quarantined_from = quarantined
                return cache
        return cls(max_entries=max_entries, detector_tag=detector_tag)

    @staticmethod
    def dir_path(directory: PathLike) -> Path:
        return Path(directory) / "scan-scores.json"

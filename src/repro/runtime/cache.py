"""Content-hash score memoization for full-chip scans.

Real layouts are dominated by repeated patterns — standard cells, memory
arrays, via farms — so most windows a full-chip sweep extracts are
geometrically identical to windows already scored.  Every detector in the
library scores a clip purely from its window-local geometry, which makes
the canonical fingerprint of :func:`repro.geometry.clip_fingerprint` a
sound memoization key: **same fingerprint, same score**, regardless of
where on the chip the window sits.

:class:`ScoreCache` is a bounded LRU map ``fingerprint -> score`` with
hit/miss/eviction counters and optional on-disk persistence (json or npz)
so repeated scans of the same block are near-free.  A ``detector_tag``
guards persisted caches against being replayed under a different detector
(scores are detector-specific even though fingerprints are not).
"""

from __future__ import annotations

import json
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

PathLike = Union[str, Path]


class ScoreCache:
    """Bounded LRU ``fingerprint -> score`` map with persistence."""

    def __init__(
        self, max_entries: int = 200_000, detector_tag: str = ""
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.detector_tag = detector_tag
        self._scores: "OrderedDict[str, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # core map operations
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[float]:
        """Cached score, refreshing recency; None on miss."""
        try:
            score = self._scores[fingerprint]
        except KeyError:
            self.misses += 1
            return None
        self._scores.move_to_end(fingerprint)
        self.hits += 1
        return score

    def put(self, fingerprint: str, score: float) -> None:
        if fingerprint in self._scores:
            self._scores.move_to_end(fingerprint)
        self._scores[fingerprint] = float(score)
        while len(self._scores) > self.max_entries:
            self._scores.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._scores)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._scores

    @property
    def hit_ratio(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def reset_counters(self) -> None:
        self.hits = self.misses = self.evictions = 0

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> Path:
        """Persist to ``path`` (.json, or .npz for anything else)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.suffix == ".json":
            payload = {
                "detector": self.detector_tag,
                "scores": dict(self._scores),
            }
            path.write_text(json.dumps(payload))
        else:
            np.savez_compressed(
                path,
                detector=np.array(self.detector_tag),
                fingerprints=np.array(list(self._scores), dtype=np.str_),
                scores=np.array(list(self._scores.values()), dtype=np.float64),
            )
        return path

    @classmethod
    def load(
        cls,
        path: PathLike,
        max_entries: int = 200_000,
        detector_tag: str = "",
    ) -> "ScoreCache":
        """Rebuild a cache saved by :meth:`save`.

        A persisted cache recorded under a different ``detector_tag`` is
        rejected: fingerprints are detector-agnostic but scores are not,
        and silently replaying them would corrupt a scan.
        """
        path = Path(path)
        if path.suffix == ".json":
            payload = json.loads(path.read_text())
            tag = str(payload.get("detector", ""))
            scores: Dict[str, float] = payload.get("scores", {})
        else:
            with np.load(path) as data:
                tag = str(data["detector"])
                scores = {
                    str(fp): float(s)
                    for fp, s in zip(data["fingerprints"], data["scores"])
                }
        if detector_tag and tag and tag != detector_tag:
            raise ValueError(
                f"cache at {path} was built by detector {tag!r}, "
                f"refusing to reuse it for {detector_tag!r}"
            )
        cache = cls(max_entries=max_entries, detector_tag=detector_tag or tag)
        for fp, score in scores.items():
            cache.put(fp, score)
        return cache

    @classmethod
    def open_dir(
        cls,
        directory: PathLike,
        detector_tag: str = "",
        max_entries: int = 200_000,
    ) -> "ScoreCache":
        """Load the canonical cache file from a directory, or start empty."""
        path = cls.dir_path(directory)
        if path.exists():
            return cls.load(
                path, max_entries=max_entries, detector_tag=detector_tag
            )
        return cls(max_entries=max_entries, detector_tag=detector_tag)

    @staticmethod
    def dir_path(directory: PathLike) -> Path:
        return Path(directory) / "scan-scores.json"

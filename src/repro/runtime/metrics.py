"""Machine-readable metrics snapshots for completed scans.

The third observability sink: turn a finished
:class:`~repro.runtime.engine.ScanReport` into

* a **JSON snapshot** — one sorted, stable object (schema-versioned)
  that scripts can diff across runs, and
* **Prometheus text exposition** — ``repro_scan_*`` metric families
  suitable for a textfile collector / pushgateway.

Counters that *can* fire but happened not to — every ``fault_<point>``
from :data:`~repro.runtime.faults.INJECTION_POINTS` and the supervision
``pool_*`` family — are seeded at zero (:data:`BASELINE_COUNTERS`), so a
clean run and a faulted run expose the same key set and dashboards never
query a metric that does not exist yet.  ``scan-chip --stats`` prints
the JSON snapshot, and ``--metrics-out BASE`` writes ``BASE.json`` +
``BASE.prom`` via :func:`export_metrics`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Tuple, Union

from .faults import INJECTION_POINTS

PathLike = Union[str, Path]

#: bump when the snapshot layout changes incompatibly
METRICS_SCHEMA = 1

#: the scan-as-a-service job/HTTP counter family (repro.service); seeded
#: here so service dashboards see the full key set from the first scrape
SERVICE_COUNTERS: Tuple[str, ...] = (
    "job_submitted",
    "job_started",
    "job_succeeded",
    "job_failed",
    "job_cancelled",
    "job_retries",
    "job_requeued",
    "job_recovered",
    "job_quarantined",
    "job_shed",
    "job_drained",
    "job_deadline_exceeded",
    "job_deadline_attempt_exceeded",
    "lease_renewed",
    "lease_reaped",
    "lease_lost",
    "service_entry_quarantined",
    "service_rate_limited",
    "service_http_requests",
    "service_http_errors",
)

#: fused-inference-backend and cascade-tuning counter family (PR 7);
#: zero-seeded so a layers-backend or untuned run exposes the same
#: metric key set as a fused/tuned one
INFER_COUNTERS: Tuple[str, ...] = (
    "infer_batches",
    "infer_windows",
    "infer_int8_windows",
    "feature_planes",
    "cascade_skip_cold",
    "cascade_skip_matched",
)

#: full-chip shard fan-out / incremental re-scan counter family
#: (repro.runtime.shard); zero-seeded so monolithic scans expose the
#: same key set as sharded ones
SHARD_COUNTERS: Tuple[str, ...] = (
    "shard_scans",
    "shard_replays",
    "shard_resumed",
    "shard_windows_scanned",
    "shard_windows_replayed",
    "rescan_shards_reused",
    "rescan_shards_rescored",
    "rescan_windows_reused",
    "job_shards_spawned",
    "job_chip_merged",
)

#: counters always present in a snapshot, zero-seeded when they never fired
BASELINE_COUNTERS: Tuple[str, ...] = tuple(
    [f"fault_{point}" for point in INJECTION_POINTS]
    + [
        "pool_degradations",
        "pool_degraded_chunks",
        "pool_rebuilds",
        "pool_retries",
        "pool_timeouts",
        "score_repairs",
        "worker_errors",
        "cache_hits",
        "cache_quarantined",
        "checkpoint_saves",
        "checkpoint_resumed",
        "checkpoint_quarantined",
        "chunks",
        "dedup_hits",
        "raster_bands",
        "resume_hits",
        "verified",
        "verified_unique",
        "windows",
        "scored",
    ]
    + list(SERVICE_COUNTERS)
    + list(INFER_COUNTERS)
    + list(SHARD_COUNTERS)
)


def metrics_snapshot(report) -> Dict[str, object]:
    """One stable dict summarizing a finished scan.

    Keys are sorted at serialization time; the counter block always
    contains :data:`BASELINE_COUNTERS` so consumers can rely on the
    shape regardless of which code paths a particular run exercised.
    """
    tele = report.telemetry
    counters = {name: 0 for name in BASELINE_COUNTERS}
    counters.update(tele.counters)
    return {
        "schema": METRICS_SCHEMA,
        "scan": {
            "scan_path": report.scan_path,
            "n_windows": report.n_windows,
            "n_scored": report.n_scored,
            "n_flagged": len(report.flagged_windows),
            "cache_hits": report.cache_hits,
            "dedup_ratio": (
                1.0 - report.n_scored / report.n_windows
                if report.n_windows
                else 0.0
            ),
            "elapsed_s": report.elapsed_s,
            "windows_per_s": (
                report.n_windows / report.elapsed_s
                if report.elapsed_s > 0
                else 0.0
            ),
        },
        "counters": counters,
        "timers": {k: t.as_dict() for k, t in sorted(tele.timers.items())},
        "histograms": {
            k: h.as_dict() for k, h in sorted(tele.histograms.items())
        },
        "cascade": (
            {}
            if report.cascade_stats is None
            else report.cascade_stats.as_dict()
        ),
    }


def format_snapshot(snapshot: Dict[str, object]) -> str:
    """Canonical JSON rendering: sorted keys, 2-space indent, newline."""
    return json.dumps(snapshot, sort_keys=True, indent=2) + "\n"


# --------------------------------------------------------------------------
# Prometheus text exposition
# --------------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _sanitize(name: str) -> str:
    """Fold an arbitrary counter/timer name into a metric-name token."""
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _fmt(value: float) -> str:
    """Render a sample value the way Prometheus parsers expect."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def to_prometheus(snapshot: Dict[str, object]) -> str:
    """Render a :func:`metrics_snapshot` in Prometheus text exposition.

    Families, all prefixed ``repro_scan_``:

    * scan summary gauges (``windows_total``, ``scored_total``,
      ``flagged_total``, ``dedup_ratio``, ``elapsed_seconds``, ...),
    * one ``repro_scan_events_total{event="..."}`` counter family for
      every telemetry counter (baseline-seeded, sorted by label),
    * ``repro_scan_stage_seconds{stage=...}`` / ``_calls`` for timers,
    * one summary per histogram (``_count``/``_sum`` + p50/p95
      quantiles).
    """
    scan = snapshot["scan"]
    lines = [
        "# HELP repro_scan_info Scan identity (value is always 1).",
        "# TYPE repro_scan_info gauge",
        'repro_scan_info{{scan_path="{}",schema="{}"}} 1'.format(
            _escape_label(str(scan["scan_path"])), snapshot["schema"]
        ),
    ]

    gauges = [
        ("windows_total", scan["n_windows"], "Windows enumerated."),
        ("scored_total", scan["n_scored"], "Windows actually scored."),
        ("flagged_total", scan["n_flagged"], "Windows flagged as hotspots."),
        ("cache_hits_total", scan["cache_hits"], "Dedup cache hits."),
        ("dedup_ratio", scan["dedup_ratio"], "1 - scored/windows."),
        ("elapsed_seconds", scan["elapsed_s"], "Scan wall time."),
        ("windows_per_second", scan["windows_per_s"], "Scan throughput."),
    ]
    for name, value, help_text in gauges:
        metric = f"repro_scan_{name}"
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")

    counters = snapshot["counters"]
    lines.append(
        "# HELP repro_scan_events_total Telemetry event counters by name."
    )
    lines.append("# TYPE repro_scan_events_total counter")
    for name in sorted(counters):
        lines.append(
            'repro_scan_events_total{{event="{}"}} {}'.format(
                _escape_label(name), _fmt(int(counters[name]))
            )
        )

    timers = snapshot["timers"]
    if timers:
        lines.append(
            "# HELP repro_scan_stage_seconds Accumulated stage wall time."
        )
        lines.append("# TYPE repro_scan_stage_seconds gauge")
        for name in sorted(timers):
            lines.append(
                'repro_scan_stage_seconds{{stage="{}"}} {}'.format(
                    _escape_label(name), _fmt(timers[name]["seconds"])
                )
            )
        lines.append("# HELP repro_scan_stage_calls Stage enter count.")
        lines.append("# TYPE repro_scan_stage_calls gauge")
        for name in sorted(timers):
            lines.append(
                'repro_scan_stage_calls{{stage="{}"}} {}'.format(
                    _escape_label(name), _fmt(int(timers[name]["calls"]))
                )
            )

    for name in sorted(snapshot["histograms"]):
        hist = snapshot["histograms"][name]
        metric = f"repro_scan_{_sanitize(name)}"
        lines.append(f"# HELP {metric} Distribution of {name}.")
        lines.append(f"# TYPE {metric} summary")
        for q, key in (("0.5", "p50"), ("0.95", "p95")):
            lines.append(
                '{}{{quantile="{}"}} {}'.format(metric, q, _fmt(hist[key]))
            )
        lines.append(f"{metric}_sum {_fmt(hist['mean'] * hist['count'])}")
        lines.append(f"{metric}_count {_fmt(int(hist['count']))}")

    return "\n".join(lines) + "\n"


def export_metrics(report, out_base: PathLike) -> Tuple[Path, Path]:
    """Write ``<out_base>.json`` and ``<out_base>.prom`` for a report."""
    out_base = Path(out_base)
    out_base.parent.mkdir(parents=True, exist_ok=True)
    snapshot = metrics_snapshot(report)
    json_path = out_base.with_name(out_base.name + ".json")
    prom_path = out_base.with_name(out_base.name + ".prom")
    json_path.write_text(format_snapshot(snapshot), encoding="utf-8")
    prom_path.write_text(to_prometheus(snapshot), encoding="utf-8")
    return json_path, prom_path

"""Orientation transforms on rects and clips.

Layout patterns are physically equivalent under the dihedral group D4
(mirrors and 90-degree rotations), which is why the survey's data
augmentation mirrors/rotates minority hotspot clips.  Transforms here act on
clip-local geometry about the clip window so the result is again a valid
clip with the same window.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

from .layout import Clip
from .rect import Rect

# The eight elements of D4, keyed by conventional names.
D4_NAMES: Tuple[str, ...] = (
    "identity",
    "rot90",
    "rot180",
    "rot270",
    "mirror_x",
    "mirror_y",
    "transpose",
    "anti_transpose",
)


def _map_rect(
    rect: Rect, window: Rect, fn: Callable[[int, int], Tuple[int, int]]
) -> Rect:
    """Apply a point map (in window-local coords) to a rect's corners."""
    x1l, y1l = rect.x1 - window.x1, rect.y1 - window.y1
    x2l, y2l = rect.x2 - window.x1, rect.y2 - window.y1
    pa = fn(x1l, y1l)
    pb = fn(x2l, y2l)
    local = Rect.from_points(pa, pb)
    return local.translate(window.x1, window.y1)


def _point_map(name: str, size: int) -> Callable[[int, int], Tuple[int, int]]:
    """Point transform for a D4 element acting on a size x size square."""
    s = size
    maps: Dict[str, Callable[[int, int], Tuple[int, int]]] = {
        "identity": lambda x, y: (x, y),
        "rot90": lambda x, y: (s - y, x),
        "rot180": lambda x, y: (s - x, s - y),
        "rot270": lambda x, y: (y, s - x),
        "mirror_x": lambda x, y: (x, s - y),
        "mirror_y": lambda x, y: (s - x, y),
        "transpose": lambda x, y: (y, x),
        "anti_transpose": lambda x, y: (s - y, s - x),
    }
    if name not in maps:
        raise ValueError(f"unknown D4 element {name!r}; choose from {D4_NAMES}")
    return maps[name]


def transform_clip(clip: Clip, name: str) -> Clip:
    """Apply a D4 transform to a square clip about its window.

    The core region must be concentric with the window (it is, for all clips
    produced by :func:`repro.geometry.layout.extract_clip`), so it maps to
    itself and only shape rects move.
    """
    if clip.window.width != clip.window.height:
        raise ValueError("D4 transforms need a square clip window")
    fn = _point_map(name, clip.window.width)
    rects = tuple(_map_rect(r, clip.window, fn) for r in clip.rects)
    tag = clip.tag if name == "identity" else f"{clip.tag}/{name}"
    return Clip(
        window=clip.window,
        core=clip.core,
        rects=rects,
        layer_name=clip.layer_name,
        tag=tag,
    )


def clip_orientations(clip: Clip, names: Sequence[str] = D4_NAMES) -> list[Clip]:
    """All requested orientations of a clip (including identity by default)."""
    return [transform_clip(clip, name) for name in names]
